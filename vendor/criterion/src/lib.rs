//! A minimal, dependency-free, API-compatible subset of `criterion`,
//! vendored because this build environment has no network access.
//!
//! Each benchmark is warmed up once, then iterated until ~200 ms of wall
//! time (or 1000 iterations) has accumulated; the mean per-iteration time
//! is printed as `bench <group>/<id> ... <time>` and appended as a JSON
//! line to `$SILC_BENCH_SUMMARY` when that env var names a file, so other
//! tooling can track perf over time. No statistics, plots, or baselines.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Measurement state handed to the bench closure.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if (iters >= 10 && elapsed >= budget) || iters >= 1000 || elapsed >= budget * 25 {
                self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
                self.iters = iters;
                break;
            }
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one("", &id.into().id, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.id, |b| f(b, input));
        self
    }

    /// Runs a benchmark without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().id, |b| f(b));
        self
    }

    /// Accepted for API compatibility; sampling is adaptive here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, f: impl FnOnce(&mut Bencher)) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    println!(
        "bench {label:<48} time: {:>12}  ({} iters)",
        format_ns(bencher.mean_ns),
        bencher.iters
    );
    if let Some(path) = std::env::var_os("SILC_BENCH_SUMMARY") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{label}\",\"mean_ns\":{:.1},\"iters\":{}}}",
                bencher.mean_ns, bencher.iters
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        b.iter(|| std::hint::black_box(41u64) + 1);
        assert!(b.iters > 0);
        assert!(b.mean_ns >= 0.0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("merged", 16).id, "merged/16");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
