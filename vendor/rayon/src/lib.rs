//! A minimal, dependency-free, API-compatible subset of `rayon`,
//! vendored because this build environment has no network access.
//!
//! Supports the patterns the workspace uses:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — ordered parallel
//!   map over a slice (also available on `Vec`);
//! * `slice.par_iter().for_each(f)`;
//! * [`join`] — run two closures concurrently.
//!
//! Parallelism uses `std::thread::scope` with one chunk per available
//! core rather than a work-stealing pool; results are always collected
//! in input order, so output is deterministic and identical to the
//! serial path. `RAYON_NUM_THREADS=1` forces serial execution.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `a` and `b` potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Ordered parallel map over a slice: applies `f` to every element and
/// returns results in input order.
pub fn par_map_slice<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

/// Entry point mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: 'a;

    /// A parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map; chain with [`ParMap::collect`].
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let _ = par_map_slice(self.items, f);
    }
}

/// A mapped parallel iterator; terminal op is [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluates the map in parallel, preserving input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(par_map_slice(self.items, self.f))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<i64> = (0..1000).collect();
        let doubled: Vec<i64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_on_empty_and_single() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [41];
        let out: Vec<i32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let xs: Vec<u8> = vec![1; 257];
        xs.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }
}
