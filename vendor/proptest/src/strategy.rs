//! The [`Strategy`] trait, the deterministic test RNG, and the primitive
//! strategy implementations (integer ranges, tuples, `prop_map`, string
//! regexes).

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator used for all value generation.
///
/// Seeded from the test name so every run of a given test sees the same
/// inputs — failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty strategy range");
        loop {
            let v = lo + rng.below(u64::from(hi - lo)) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// String strategies: a `&str` is interpreted as a regex-like pattern
/// (subset: literals, escapes, classes, groups, alternation, `{m,n}`,
/// `?`, `*`, `+`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
