//! A minimal, dependency-free, API-compatible subset of the `proptest`
//! property-testing crate, vendored because this build environment has no
//! network access to crates.io.
//!
//! Supported surface (exactly what this workspace uses):
//!
//! * the [`proptest!`] macro with an optional leading
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * integer range strategies (`0i64..30`), tuple strategies, string
//!   regex strategies (a practical subset of regex syntax),
//!   `prop::collection::vec`, `prop::collection::btree_set`, and
//!   `Strategy::prop_map`.
//!
//! Differences from the real crate: no shrinking on failure (the failing
//! input is reported verbatim), and generation is deterministic — the RNG
//! is seeded from the test function's name, so failures always reproduce.

pub mod strategy;

pub mod test_runner {
    /// Per-test configuration. Only `cases` is supported.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case failed. The `proptest!` body closure
    /// returns `Result<(), TestCaseError>`; the `prop_assert*` macros and
    /// explicit `return Err(TestCaseError::fail(..))` both produce it.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed case with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: reason.into(),
            }
        }

        /// A rejected case (treated as a failure here: the shim does not
        /// resample).
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: format!("rejected: {}", reason.into()),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl From<String> for TestCaseError {
        fn from(message: String) -> TestCaseError {
            TestCaseError { message }
        }
    }

    impl From<&str> for TestCaseError {
        fn from(message: &str) -> TestCaseError {
            TestCaseError {
                message: message.to_string(),
            }
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeSet`. Best-effort on size: duplicate
    /// draws are retried a bounded number of times.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut tries = 0usize;
            while set.len() < target && tries < 32 * target + 32 {
                set.insert(self.element.generate(rng));
                tries += 1;
            }
            set
        }
    }
}

pub mod string;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs each contained `#[test] fn name(pat in strategy, ...) { body }`
/// over `cases` generated inputs (default 64, override with a leading
/// `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::strategy::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                #[allow(unused_parens)]
                let ($($arg),+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut rng)),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!("proptest {} failed at case {case}: {msg}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?} != {:?}`", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::strategy::TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let u = (0usize..3).generate(&mut rng);
            assert!(u < 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((0i64..100, 0i64..100), 1..20);
        let mut a = crate::strategy::TestRng::from_name("det");
        let mut b = crate::strategy::TestRng::from_name("det");
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0u8..3, 0..10), y in -4i32..4) {
            prop_assert!(xs.iter().all(|&x| x < 3));
            prop_assert!((-4..4).contains(&y));
            prop_assert_eq!(xs.len(), xs.len());
        }
    }

    proptest! {
        #[test]
        fn string_strategy_matches_class(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.chars().count()), "bad len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "bad char in {s:?}");
        }
    }
}
