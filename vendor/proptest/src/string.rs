//! Random string generation from a practical regex subset.
//!
//! Supported syntax: literal characters, `\x` escapes (`\n`, `\\`, and
//! escaped metacharacters), character classes `[a-z0-9\n -]` (ranges and
//! literals, no negation), groups `( ... | ... )` with alternation, and
//! the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones are
//! capped at 8 repetitions). This covers every pattern used by the
//! workspace's fuzz tests.

use crate::strategy::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    /// Inclusive char ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Vec<Seq>),
}

type Seq = Vec<(Atom, (u32, u32))>;

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alternation(&mut self) -> Vec<Seq> {
        let mut alts = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_seq());
        }
        alts
    }

    fn parse_seq(&mut self) -> Seq {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            let reps = self.parse_quantifier();
            seq.push((atom, reps));
        }
        seq
    }

    fn parse_atom(&mut self) -> Atom {
        match self.bump().expect("caller checked peek") {
            '(' => {
                let alts = self.parse_alternation();
                self.bump(); // ')'
                Atom::Group(alts)
            }
            '[' => Atom::Class(self.parse_class()),
            '\\' => Atom::Lit(unescape(self.bump().unwrap_or('\\'))),
            '.' => Atom::Class(vec![(' ', '~')]),
            c => Atom::Lit(c),
        }
    }

    fn parse_class(&mut self) -> Vec<(char, char)> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == ']' {
                self.bump();
                break;
            }
            let lo = match self.bump().expect("peeked") {
                '\\' => unescape(self.bump().unwrap_or('\\')),
                other => other,
            };
            // A range `a-z` (a trailing `-` is a literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi = match self.bump().unwrap_or(lo) {
                    '\\' => unescape(self.bump().unwrap_or('\\')),
                    other => other,
                };
                items.push((lo, hi.max(lo)));
            } else {
                items.push((lo, lo));
            }
        }
        if items.is_empty() {
            items.push(('?', '?'));
        }
        items
    }

    fn parse_quantifier(&mut self) -> (u32, u32) {
        match self.peek() {
            Some('{') => {
                self.bump();
                let mut lo = 0u32;
                let mut hi: Option<u32> = None;
                let mut cur = 0u32;
                let mut saw_comma = false;
                while let Some(c) = self.bump() {
                    match c {
                        '}' => break,
                        ',' => {
                            lo = cur;
                            cur = 0;
                            saw_comma = true;
                        }
                        d if d.is_ascii_digit() => {
                            cur = cur * 10 + (d as u32 - '0' as u32);
                        }
                        _ => {}
                    }
                }
                if saw_comma {
                    hi = Some(cur);
                } else {
                    lo = cur;
                }
                (lo, hi.unwrap_or(lo))
            }
            Some('?') => {
                self.bump();
                (0, 1)
            }
            Some('*') => {
                self.bump();
                (0, 8)
            }
            Some('+') => {
                self.bump();
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn emit_seq(seq: &Seq, rng: &mut TestRng, out: &mut String) {
    for (atom, (lo, hi)) in seq {
        let count = lo + rng.below(u64::from(hi - lo + 1)) as u32;
        for _ in 0..count {
            match atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(items) => {
                    let (a, b) = items[rng.below(items.len() as u64) as usize];
                    let span = b as u32 - a as u32 + 1;
                    let v = a as u32 + rng.below(u64::from(span)) as u32;
                    out.push(char::from_u32(v).unwrap_or(a));
                }
                Atom::Group(alts) => {
                    let alt = &alts[rng.below(alts.len() as u64) as usize];
                    emit_seq(alt, rng, out);
                }
            }
        }
    }
}

/// Generates one random string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let alts = parser.parse_alternation();
    let mut out = String::new();
    let alt = &alts[rng.below(alts.len() as u64) as usize];
    emit_seq(alt, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("string-tests")
    }

    #[test]
    fn literal_passthrough() {
        assert_eq!(generate("abc", &mut rng()), "abc");
    }

    #[test]
    fn class_with_range_and_escape() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[ -~\n]{0,20}", &mut r);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn alternation_of_words() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("(DS|DF|[0-9]{1,3}|\n){1,4}", &mut r);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn escaped_metachars() {
        let mut r = rng();
        let s = generate("\\(\\)\\{\\}", &mut r);
        assert_eq!(s, "(){}");
    }

    #[test]
    fn exact_count() {
        let mut r = rng();
        for _ in 0..20 {
            assert_eq!(generate("[a-z]{4}", &mut r).chars().count(), 4);
        }
    }
}
