//! A minimal, dependency-free, API-compatible subset of `rand` 0.8,
//! vendored because this build environment has no network access.
//!
//! Provides [`rngs::StdRng`] (splitmix64 under the hood — *not* the real
//! StdRng stream, but deterministic and well distributed), the
//! [`SeedableRng`], [`Rng`] and [`RngCore`] traits with integer
//! `gen_range`, and [`seq::SliceRandom::shuffle`].

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty)*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator (vendored: splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (subset: `shuffle` and `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = rng.gen_range(-3i64..9);
            assert!((-3..9).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
