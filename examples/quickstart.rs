//! Quickstart: compile a SIL program to layout, check the design rules,
//! and emit manufacturing data (CIF).
//!
//! Run with: `cargo run --example quickstart`

use silc::cif::CifWriter;
use silc::drc::{check, RuleSet};
use silc::lang::Compiler;
use silc::layout::CellStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A structured program describing a structured design: a
    // parameterised two-transistor cell arrayed into a register bank.
    let source = r#"
        // One storage bit: a diffusion strip with two poly gates and a
        // metal rail alongside.
        cell bit(rail = 3) {
            box diff (0, 0) (2, 12);
            box poly (-2, 3) (4, 5);
            box poly (-2, 7) (4, 9);
            box metal (4, 0) (4 + rail, 12);
        }

        // A word is a row of bits; a bank is a column of words.
        cell word(n) { array bit() at (0, 0) step (12, 0) count n; }
        cell bank(words, n) {
            array word(n) at (0, 0) step (0, 0) (0, 16) count 1 words;
        }

        place bank(4, 8) at (0, 0);
    "#;

    let design = Compiler::new().compile(source)?;
    let stats = CellStats::compute(&design.library, design.top)?;
    println!(
        "compiled: {} library cells, {} flattened elements, die {}x{} lambda",
        design.library.len(),
        stats.flat_elements,
        stats.bbox.map_or(0, |b| b.width()),
        stats.bbox.map_or(0, |b| b.height()),
    );

    let report = check(&design.library, design.top, &RuleSet::mead_conway_nmos())?;
    println!("{report}");

    let cif = CifWriter::new().write_to_string(&design.library, design.top)?;
    println!(
        "CIF output ({} bytes for {} elements — hierarchy pays):\n",
        cif.len(),
        stats.flat_elements
    );
    println!("{cif}");
    Ok(())
}
