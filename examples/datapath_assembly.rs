//! Parameterised chip assembly: one SIL description of a datapath,
//! elaborated at several bit widths, assembled and routed automatically —
//! the benefit the paper reports for "the task of chip assembly".
//!
//! Run with: `cargo run --example datapath_assembly`

use silc::lang::Compiler;
use silc::layout::Layer;
use silc::route::{stack_assemble, Slice};

fn datapath_source(bits: usize) -> String {
    format!(
        r#"
        cell reg_slice() {{
            box diff (2, 0) (4, 14);
            box poly (0, 4) (6, 6);
            box poly (0, 9) (6, 11);
            box metal (6, 0) (9, 14);
        }}
        cell alu_slice() {{
            box diff (2, 0) (4, 16);
            box diff (8, 0) (10, 16);
            box poly (0, 5) (12, 7);
            box poly (0, 11) (12, 13);
            box metal (12, 0) (15, 16);
        }}
        cell regs(n) {{
            for i in 0..n {{
                place reg_slice() at (i * 18, 0);
                port ("b" + str(i)) metal (i * 18 + 7, 14);
            }}
        }}
        cell alus(n) {{
            for i in 0..n {{
                place alu_slice() at (i * 18, 0);
                port ("b" + str(i)) metal (i * 18 + 13, 0);
            }}
        }}
        place regs({bits}) at (0, 0);
        place alus({bits}) at (0, 100);
        "#
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("bits  width  height  area      wire   tracks");
    for bits in [4usize, 8, 16, 32] {
        let design = Compiler::new().compile(&datapath_source(bits))?;
        let mut lib = design.library;
        let regs = lib
            .cell_by_name(&format!("regs$i{bits}"))
            .expect("regs row elaborated");
        let alus = lib
            .cell_by_name(&format!("alus$i{bits}"))
            .expect("alus row elaborated");
        let (_, stats) = stack_assemble(
            &mut lib,
            &[Slice::new(regs), Slice::new(alus)],
            Layer::Metal,
            3,
            6,
            "datapath",
        )?;
        println!(
            "{bits:<4}  {:<5}  {:<6}  {:<8}  {:<5}  {:?}",
            stats.width,
            stats.height,
            stats.width * stats.height,
            stats.wire_length,
            stats.channel_tracks
        );
    }
    println!("\none description, four chips: that is parameterised assembly.");
    Ok(())
}
