//! Prints every experiment table from EXPERIMENTS.md in one run — the
//! reproduction driver. Timing curves come from `cargo bench`; this
//! binary reports the structural results.
//!
//! Run with: `cargo run --release --example experiments_report`

use silc_bench::{e1, e2, e3, e4, e5, e6, e7, e8, render_table};

fn main() {
    let (rows, result) = e1::table();
    println!(
        "{}",
        render_table(
            "E1: PDP-8 chip count",
            &["module", "count", "packages"],
            &rows
        )
    );
    println!(
        "claim: {} / {} = {:.2} <= 1.50 -> {}\n",
        result.synthesized_packages,
        result.baseline_packages,
        result.ratio,
        if result.ratio <= 1.5 {
            "HOLDS"
        } else {
            "FAILS"
        }
    );

    let rows = e2::run(&[2, 4, 8, 16]);
    println!(
        "{}",
        render_table(
            "E2: structured description leverage",
            &["design", "n", "src lines", "flat elems", "leverage"],
            &e2::table(&rows),
        )
    );

    let rows = e3::run(&[4, 8, 16, 32]);
    println!(
        "{}",
        render_table(
            "E3: parameterised chip assembly",
            &["bits", "width", "height", "area", "wire", "tracks"],
            &e3::table(&rows),
        )
    );

    let rows = e4::run();
    println!(
        "{}",
        render_table(
            "E4: PLA programming",
            &[
                "function",
                "i/o",
                "raw",
                "exact",
                "heur",
                "area",
                "area ratio",
                "fold"
            ],
            &e4::table(&rows),
        )
    );

    let rows = e5::run();
    println!(
        "{}",
        render_table(
            "E5: behavioral vs structural cost",
            &["design", "auto A2", "hand A2", "space", "auto ns", "hand ns", "speed"],
            &e5::table(&rows),
        )
    );

    let rows = e6::run(&[2, 4, 8, 16, 32]);
    println!(
        "{}",
        render_table(
            "E6: compilation scaling",
            &["n", "flat elems", "cif bytes", "drc violations"],
            &e6::table(&rows),
        )
    );

    let rows = e7::run();
    println!(
        "{}",
        render_table(
            "E7: verification battery",
            &["check", "result", "detail"],
            &e7::table(&rows),
        )
    );

    let rows = e8::river_sweep(&[1, 2, 4, 8, 16]);
    println!(
        "{}",
        render_table(
            "E8a: river channel height vs interlock depth",
            &["chain", "tracks", "height", "wire"],
            &e8::river_table(&rows),
        )
    );
    let (rows, skipped) = e8::channel_sweep(&[2, 4, 8, 12, 16], 2024);
    println!(
        "{}",
        render_table(
            "E8b: channel tracks vs density (seeded random pins)",
            &["nets", "density", "tracks"],
            &e8::channel_table(&rows),
        )
    );
    println!("(cyclic instances re-rolled: {skipped})\n");
    println!("== E8c: placement quality (wire length, lambda) ==");
    println!("nets  aligned  scrambled");
    for nets in [4usize, 8, 16] {
        let p = e8::placement_comparison(nets, 7);
        println!("{:<4}  {:<7}  {}", p.nets, p.aligned_wire, p.scrambled_wire);
    }
}
