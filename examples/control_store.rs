//! The bridge between the paper's two definitions of silicon compilation:
//! take a behavioral (ISP) machine, derive its control unit's exact
//! personality matrix, and compile that personality into PLA silicon —
//! "regular blocks programmed for specific functions" programmed *by the
//! behavioral compiler itself*.
//!
//! Run with: `cargo run -p silc --example control_store`

use silc::cif::CifWriter;
use silc::drc::{check, RuleSet};
use silc::layout::Library;
use silc::pla::{fold_plan, generate_layout, Minimize, PlaSpec};
use silc::rtl::parse;
use silc::synth::control_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bus arbiter: three states, grant rotates between two requesters.
    let machine = parse(
        "machine arbiter {
            port input r0[1];
            port input r1[1];
            reg g0[1];
            reg g1[1];
            state idle {
                g0 := 0; g1 := 0;
                if r0 == 1 { goto grant0; }
                else if r1 == 1 { goto grant1; }
            }
            state grant0 {
                g0 := 1;
                if r0 == 0 { goto idle; }
            }
            state grant1 {
                g1 := 1;
                if r1 == 0 { goto idle; }
            }
        }",
    )?;

    // 1. The exact control store.
    let cs = control_table(&machine);
    println!("{cs}");
    println!("controlled signals: {:?}\n", cs.control_legend);
    println!(
        "personality (PLA text format):\n{}",
        cs.table.to_pla_string()
    );

    // 2. Program it into silicon.
    let spec = PlaSpec::from_truth_table(&cs.table, Minimize::Heuristic)?;
    let (w, h) = spec.area_estimate();
    println!(
        "PLA: {} terms, {} AND + {} OR devices, {w}x{h} lambda",
        spec.num_terms(),
        spec.and_plane_devices(),
        spec.or_plane_devices()
    );
    println!("{}", fold_plan(&spec));

    let mut lib = Library::new();
    let id = generate_layout(&spec, &mut lib, "arbiter_control")?;
    let report = check(&lib, id, &RuleSet::mead_conway_nmos())?;
    println!("{report}");

    // 3. Manufacturing data.
    let cif = CifWriter::new().write_to_string(&lib, id)?;
    println!("CIF: {} bytes (first lines below)\n", cif.len());
    for line in cif.lines().take(8) {
        println!("{line}");
    }

    // 4. For scale: the PDP-8's own control store.
    let pdp8 = silc::pdp8::isp_machine()?;
    let pdp8_cs = control_table(&pdp8);
    let pdp8_spec = PlaSpec::from_truth_table(&pdp8_cs.table, Minimize::Heuristic)?;
    let (pw, ph) = pdp8_spec.area_estimate();
    println!(
        "\nPDP-8 control store: {} conditions, {} terms, {pw}x{ph} lambda of PLA",
        pdp8_cs.condition_legend.len(),
        pdp8_spec.num_terms()
    );
    Ok(())
}
