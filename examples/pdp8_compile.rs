//! The PDP-8 experiment end-to-end: assemble a program, run it on the
//! ISA reference and on the ISP behavioral description, then compile the
//! ISP description onto standard modules and compare the chip count with
//! the hand-designed baseline — the paper's "within 50%" claim.
//!
//! Run with: `cargo run --example pdp8_compile`

use silc::pdp8::{assemble, baseline_packages, isp_machine, IspCrossCheck, BASELINE_NOTES};
use silc::synth::{synthesize, Sharing, SynthOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A test program: sum the integers 1..=5 by repeated TAD.
    let program = assemble(
        "*200
                 cla cll
         loop,   tad total
                 tad count
                 dca total
                 isz count
                 jmp loop
                 hlt
         count,  7773          / -5 in two's complement
         total,  0000",
    )?;
    println!("assembled {} words at {:o}", program.len(), program.start);

    // 2. Verification by simulation: the behavioral description against
    // the instruction-set reference.
    let check = IspCrossCheck::run(&program, 2000)?;
    println!(
        "cross-check: {} (isa ac={:o}, isl ac={:o}, {} ISL cycles)",
        if check.matches { "MATCH" } else { "MISMATCH" },
        check.ac.0,
        check.ac.1,
        check.isl_cycles
    );

    // 3. Behavioral compilation onto standard modules.
    let machine = isp_machine()?;
    let alloc = synthesize(
        &machine,
        &SynthOptions {
            sharing: Sharing::Shared,
        },
    );
    println!("\n{alloc}");

    // 4. The chip-count comparison.
    let baseline = baseline_packages();
    let ratio = alloc.estimate.package_ratio(baseline);
    println!("hand-designed baseline: {baseline} packages");
    println!("({BASELINE_NOTES})\n");
    println!(
        "automatic / hand = {} / {baseline} = {ratio:.2} -> within 50%: {}",
        alloc.estimate.packages,
        if ratio <= 1.5 { "YES" } else { "NO" }
    );
    Ok(())
}
