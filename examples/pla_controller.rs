//! Regular-block programming: the Mead–Conway traffic-light controller
//! compiled into a PLA — truth table, minimization, layout, DRC, and
//! device accounting via extraction.
//!
//! Run with: `cargo run --example pla_controller`

use silc::drc::{check, RuleSet};
use silc::extract::extract;
use silc::layout::{CellStats, Library};
use silc::logic::functions::traffic_light;
use silc::pla::{generate_layout, Minimize, PlaSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = traffic_light();
    println!(
        "traffic-light controller: {} inputs, {} outputs, {} specified rows",
        table.num_inputs(),
        table.num_outputs(),
        table.rows().len()
    );

    for (label, mode) in [
        ("unminimized", Minimize::None),
        ("exact", Minimize::Exact),
        ("heuristic", Minimize::Heuristic),
    ] {
        let spec = PlaSpec::from_truth_table(&table, mode)?;
        let (w, h) = spec.area_estimate();
        println!(
            "  {label:<12} {} terms, {} AND + {} OR devices, {}x{} lambda",
            spec.num_terms(),
            spec.and_plane_devices(),
            spec.or_plane_devices(),
            w,
            h
        );
    }

    // Generate the exact-minimized layout and verify it.
    let spec = PlaSpec::from_truth_table(&table, Minimize::Exact)?;
    let mut lib = Library::new();
    let id = generate_layout(&spec, &mut lib, "traffic")?;
    let stats = CellStats::compute(&lib, id)?;
    println!(
        "\nlayout: {} cells in library, {} flattened elements",
        lib.len(),
        stats.flat_elements
    );

    let report = check(&lib, id, &RuleSet::mead_conway_nmos())?;
    println!("{report}");

    let extracted = extract(&lib, id)?;
    println!(
        "extraction: {} transistors on {} nets (programmed: {} AND + {} OR + {} pullups)",
        extracted.transistor_count(),
        extracted.nets,
        spec.and_plane_devices(),
        spec.or_plane_devices(),
        spec.num_terms(),
    );

    // The personality still computes the controller's function.
    let m = 0b11000u64; // HG state, car waiting, long timer expired
    let outs = spec.eval(m);
    println!(
        "\nHG + car + long timer -> next state {}{}, start-timer {}",
        u8::from(outs[0]),
        u8::from(outs[1]),
        u8::from(outs[2])
    );
    Ok(())
}
