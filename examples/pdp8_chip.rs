//! The compiled computer as silicon: compose the PDP-8's derived control
//! store (PLA), a scratchpad memory array, and a SIL-generated register
//! datapath into one chip plan — every block produced by a different
//! compiler path, all meeting in one library, one DRC run, one CIF file.
//!
//! Run with: `cargo run --release -p silc --example pdp8_chip`

use silc::cif::CifWriter;
use silc::drc::{check, RuleSet};
use silc::geom::{Point, Transform};
use silc::lang::Compiler;
use silc::layout::{Cell, CellStats, Instance};
use silc::mem::RamArray;
use silc::pla::{generate_layout, Minimize, PlaSpec};
use silc::synth::control_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Datapath: six 12-bit register rows from a parameterised SIL
    // description (AC, PC, MA, MB, IR and the link).
    let datapath = Compiler::new().compile(
        "cell reg_bit() {
            box diff (0, 0) (2, 12);
            box poly (-2, 3) (4, 5);
            box poly (-2, 7) (4, 9);
            box metal (4, 0) (7, 12);
         }
         cell reg_row(bits) {
            array reg_bit() at (0, 0) step (12, 0) count bits;
         }
         cell datapath(regs, bits) {
            array reg_row(bits) at (0, 0) step (0, 0) (0, 18) count 1 regs;
         }
         place datapath(6, 12) at (0, 0);",
    )?;
    let mut lib = datapath.library;
    let datapath_id = lib.cell_by_name("datapath$i6_i12").expect("elaborated");

    // 2. Control store: the exact personality of the ISP description,
    // programmed into a PLA.
    let machine = silc::pdp8::isp_machine()?;
    let cs = control_table(&machine);
    let spec = PlaSpec::from_truth_table(&cs.table, Minimize::Heuristic)?;
    let mut control_lib = silc::layout::Library::new();
    let control_id = generate_layout(&spec, &mut control_lib, "control")?;
    let control_map = lib.import(&control_lib);
    let control_id = control_map[control_id.raw() as usize];

    // 3. Scratchpad memory: a 32x12 register-file sample of the 4K store
    // (the full 4K x 12 array is 48 discrete RAM packages in the E1
    // costing; on-chip we plan a page of it).
    let ram = RamArray::new(32, 12)?;
    let mut ram_lib = silc::layout::Library::new();
    let ram_id = ram.generate(&mut ram_lib, "scratchpad")?;
    let ram_map = lib.import(&ram_lib);
    let ram_id = ram_map[ram_id.raw() as usize];

    // 4. Floorplan: datapath lower-left, control store above it, memory
    // to the right, with generous routing margins.
    let dp_stats = CellStats::compute(&lib, datapath_id)?;
    let ctl_stats = CellStats::compute(&lib, control_id)?;
    let dp_bbox = dp_stats.bbox.expect("datapath has geometry");
    let ctl_bbox = ctl_stats.bbox.expect("control has geometry");

    let mut chip = Cell::new("pdp8_chip");
    chip.push_instance(Instance::place(datapath_id, Transform::IDENTITY));
    chip.push_instance(Instance::place(
        control_id,
        Transform::translate(Point::new(
            -ctl_bbox.left(),
            dp_bbox.top() + 12 - ctl_bbox.bottom(),
        )),
    ));
    chip.push_instance(Instance::place(
        ram_id,
        Transform::translate(Point::new(dp_bbox.right().max(ctl_bbox.width()) + 16, 0)),
    ));
    let chip_id = lib.add_cell(chip)?;

    // 5. One DRC run over the whole plan, one CIF file out.
    let stats = CellStats::compute(&lib, chip_id)?;
    let bbox = stats.bbox.expect("chip has geometry");
    println!(
        "chip plan: {} library cells, {} flattened elements, die {}x{} lambda",
        lib.len(),
        stats.flat_elements,
        bbox.width(),
        bbox.height()
    );
    println!(
        "  control store: {} terms over {} conditions, {}x{} lambda",
        spec.num_terms(),
        cs.condition_legend.len(),
        ctl_bbox.width(),
        ctl_bbox.height()
    );
    println!("  scratchpad: {} bits", ram.bits());

    let report = check(&lib, chip_id, &RuleSet::mead_conway_nmos())?;
    println!("{report}");

    let cif = CifWriter::new().write_to_string(&lib, chip_id)?;
    println!(
        "CIF: {} bytes for {} elements ({}x compression via hierarchy)",
        cif.len(),
        stats.flat_elements,
        stats.flat_elements * 24 / cif.len().max(1)
    );
    Ok(())
}
