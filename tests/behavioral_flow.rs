//! Integration: the behavioral silicon-compilation flow — ISL parsed,
//! simulated, synthesized onto standard modules, with its control table
//! realisable as a PLA; and the PDP-8 cross-checked end to end.

use silc::pdp8::{assemble, isp_machine, IspCrossCheck, Pdp8};
use silc::rtl::{parse, Simulator};
use silc::synth::{synthesize, Sharing, SynthOptions};

#[test]
fn isl_machine_simulates_and_synthesizes() {
    let src = "
        machine gcd {
            reg a[8] init 48;
            reg b[8] init 18;
            state step {
                // halt's own cycle still commits its transfers (RT
                // semantics), so guard the subtract behind the else.
                if a == b { halt; }
                else if a > b { a := a - b; }
                else { b := b - a; }
            }
        }";
    let machine = parse(src).expect("parses");
    let mut sim = Simulator::new(&machine);
    let report = sim.run(1000).expect("simulates");
    assert!(report.halted);
    assert_eq!(sim.reg("a"), Some(6));
    assert_eq!(sim.reg("b"), Some(6));

    let alloc = synthesize(
        &machine,
        &SynthOptions {
            sharing: Sharing::Shared,
        },
    );
    // Two registers, an adder/subtractor, a comparator, control.
    assert!(alloc.estimate.count_by_kind["register"] == 2);
    assert!(alloc.estimate.count_by_kind.contains_key("adder"));
    assert!(alloc.estimate.packages > 0);
    // The netlist names every storage element.
    assert!(alloc.netlist.instance_by_name("reg_a").is_some());
    assert!(alloc.netlist.instance_by_name("reg_b").is_some());
}

#[test]
fn pdp8_program_runs_identically_on_both_models() {
    // Multiply 6 x 7 by repeated addition.
    let program = assemble(
        "*200
                 cla cll
         loop,   tad product
                 tad six
                 dca product
                 isz count
                 jmp loop
                 cla
                 tad product
                 hlt
         six,    0006
         count,  7771          / -7
         product,0000",
    )
    .expect("assembles");

    let mut isa = Pdp8::new();
    isa.load(&program);
    assert!(isa.run(10_000));
    assert_eq!(isa.ac, 42);

    let check = IspCrossCheck::run(&program, 10_000).expect("simulates");
    assert!(check.matches, "{check:?}");
    assert_eq!(check.ac.1, 42);
}

#[test]
fn isp_machine_synthesizes_with_bounded_control() {
    let machine = isp_machine().expect("parses");
    let alloc = synthesize(
        &machine,
        &SynthOptions {
            sharing: Sharing::Shared,
        },
    );
    let (state_bits, inputs, outputs, terms) = alloc.control;
    assert_eq!(state_bits, 4); // 9 states
    assert!(inputs >= state_bits);
    assert!(outputs > 0);
    assert!(terms >= 9, "at least one term per state, got {terms}");
    // The controller is realisable as one of our PLA personalities:
    // its geometry model accepts the shape.
    let pla = silc::synth::ModuleClass::ControlPla {
        inputs,
        outputs,
        terms,
    };
    assert!(pla.packages() >= 1);
    assert!(pla.area_lambda2() > 0);
}

#[test]
fn behavioral_and_structural_descriptions_of_one_function_agree() {
    // The traffic-light controller: its ISL behavioral description and
    // its PLA personality must transition identically.
    let table = silc::logic::functions::traffic_light();
    let spec =
        silc::pla::PlaSpec::from_truth_table(&table, silc::pla::Minimize::Exact).expect("spec");

    let machine = parse(
        "machine traffic {
            reg s[2];
            port input c[1]; port input tl[1]; port input ts[1];
            state run {
                if s == 0 {
                    if (c == 1) && (tl == 1) { s := 1; }
                } else if s == 1 {
                    if ts == 1 { s := 3; }
                } else if s == 3 {
                    if (c == 0) || (tl == 1) { s := 2; }
                } else {
                    if ts == 1 { s := 0; }
                }
            }
        }",
    )
    .expect("parses");

    // Drive both through every (state, input) combination for one step.
    for state in [0u64, 1, 2, 3] {
        for inputs in 0..8u64 {
            let (c, tl, ts) = (inputs >> 2 & 1, inputs >> 1 & 1, inputs & 1);
            // PLA: minterm is c tl ts s1 s0.
            let minterm = (c << 4) | (tl << 3) | (ts << 2) | state;
            let outs = spec.eval(minterm);
            let pla_next = (u64::from(outs[0]) << 1) | u64::from(outs[1]);

            let mut sim = Simulator::new(&machine);
            sim.set_reg("s", state).unwrap();
            sim.set_input("c", c).unwrap();
            sim.set_input("tl", tl).unwrap();
            sim.set_input("ts", ts).unwrap();
            sim.step().expect("steps");
            let isl_next = sim.reg("s").expect("s exists");
            assert_eq!(
                pla_next, isl_next,
                "state {state} inputs c={c} tl={tl} ts={ts}"
            );
        }
    }
}
