//! End-to-end tests of the `silc serve` protocol: concurrency, the
//! failure envelope (timeout / overloaded / bad request), graceful
//! SIGINT shutdown of the real binary, and byte-identical equivalence
//! with the `silc compile` CLI.

use proptest::prelude::*;
use silc::serve::json::{parse as parse_json, Json};
use silc::serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn silc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_silc"))
}

fn start(config: ServerConfig) -> (SocketAddr, silc::serve::ShutdownHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();
    std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

/// A persistent client connection issuing one request per call.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("client read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        let mut payload = line.to_string();
        payload.push('\n');
        self.writer.write_all(payload.as_bytes()).expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("reply");
        parse_json(response.trim()).expect("well-formed reply")
    }
}

/// JSON-escapes `source` for embedding in a request line.
fn quoted(source: &str) -> String {
    Json::Str(source.to_string()).to_string()
}

fn sil_program(width: i64) -> String {
    format!(
        "cell unit() {{
            box metal (0, 0) ({width}, 12);
            box poly (-2, 3) ({p}, 5);
         }}
         place unit() at (0, 0);",
        p = width + 2,
    )
}

/// Runs `silc compile <file> --no-drc` and returns its exact stdout.
fn cli_compile_stdout(source: &str, tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("silc-serve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}.sil"));
    std::fs::write(&path, source).expect("write design");
    let out = silc()
        .arg("compile")
        .arg(&path)
        .arg("--no-drc")
        .output()
        .expect("CLI runs");
    assert!(out.status.success(), "CLI compile failed: {out:?}");
    out.stdout
}

#[test]
fn eight_concurrent_clients_match_the_cli_byte_for_byte() {
    let (addr, handle) = start(ServerConfig {
        jobs: 4,
        queue_capacity: 16,
        ..ServerConfig::default()
    });
    let isl = "machine m { reg n[8]; state s { n := n + 1; if n == 5 { halt; } } }";
    std::thread::scope(|scope| {
        for client_id in 0..8i64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                if client_id % 2 == 0 {
                    // Compile clients: each a distinct design, each
                    // checked against the real CLI's stdout bytes.
                    let source = sil_program(6 + client_id);
                    let reply = client.request(&format!(
                        r#"{{"op":"compile","id":{client_id},"no_drc":true,"source":{}}}"#,
                        quoted(&source)
                    ));
                    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
                    assert_eq!(reply.get("id"), Some(&Json::Int(client_id as i128)));
                    let served = reply.get("cif").and_then(Json::as_str).expect("cif");
                    let cli = cli_compile_stdout(&source, &format!("client{client_id}"));
                    assert_eq!(
                        served.as_bytes(),
                        &cli[..],
                        "served CIF diverged from the CLI for client {client_id}"
                    );
                } else {
                    let reply = client.request(&format!(
                        r#"{{"op":"sim","id":{client_id},"source":{}}}"#,
                        quoted(isl)
                    ));
                    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
                    assert_eq!(reply.get("halted"), Some(&Json::Bool(true)));
                    assert_eq!(
                        reply.get("regs").and_then(|r| r.get("n")),
                        Some(&Json::Int(6))
                    );
                }
            });
        }
    });
    // All 8 clients shared one engine: the stats op sees their traffic
    // (the counter includes the stats request itself: 8 + 1).
    let stats = Client::connect(addr).request(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("requests"), Some(&Json::Int(9)));
    assert_eq!(stats.get("timeouts"), Some(&Json::Int(0)));
    assert_eq!(stats.get("rejected"), Some(&Json::Int(0)));
    handle.shutdown();
}

#[test]
fn verify_op_answers_verdicts_and_reuses_the_cache() {
    let (addr, handle) = start(ServerConfig::default());
    let mut client = Client::connect(addr);
    let table = ".i 2\n.o 1\n.ilb a b\n.ob y\n10 1\n01 1\n";

    // A table verifies against its own minimized realization.
    let reply = client.request(&format!(
        r#"{{"op":"verify","lang":"pla","source":{}}}"#,
        quoted(table)
    ));
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
    assert_eq!(reply.get("equivalent"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("check").and_then(Json::as_str), Some("pla"));

    // A mutated implementation against the golden table is refuted —
    // still an ok response; the verdict is data, not an error.
    let mutated = table.replace("01 1", "01 0");
    let reply = client.request(&format!(
        r#"{{"op":"verify","lang":"pla","source":{},"against":{}}}"#,
        quoted(&mutated),
        quoted(table)
    ));
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
    assert_eq!(reply.get("equivalent"), Some(&Json::Bool(false)));
    let mismatches = reply.get("mismatches").expect("mismatches");
    assert!(
        mismatches.to_string().contains('y'),
        "counterexample names the output: {mismatches}"
    );

    // Repeating the first request is a pure Stage::VERIFY cache hit.
    let reply = client.request(&format!(
        r#"{{"op":"verify","lang":"pla","source":{}}}"#,
        quoted(table)
    ));
    assert_eq!(reply.get("equivalent"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("cache_misses"), Some(&Json::Int(0)));
    assert_eq!(reply.get("cache_hits"), Some(&Json::Int(1)));
    handle.shutdown();
}

#[test]
fn slow_request_times_out_without_stalling_other_clients() {
    let (addr, handle) = start(ServerConfig {
        jobs: 2,
        queue_capacity: 4,
        enable_test_ops: true,
        ..ServerConfig::default()
    });
    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        let begin = Instant::now();
        let reply = client.request(r#"{"op":"sleep","ms":5000,"deadline_ms":150,"id":"slow"}"#);
        let waited = begin.elapsed();
        assert_eq!(
            reply.get("error").and_then(Json::as_str),
            Some("timeout"),
            "{reply:?}"
        );
        assert_eq!(reply.get("id").and_then(Json::as_str), Some("slow"));
        assert!(
            waited < Duration::from_secs(3),
            "timeout reply took {waited:?}, deadline was 150ms"
        );
        // The connection survives its own timeout.
        let again = client.request(r#"{"op":"stats"}"#);
        assert_eq!(again.get("ok"), Some(&Json::Bool(true)));
    });
    // While the slow job occupies one worker, a fast client on the
    // other worker is answered normally.
    let mut fast = Client::connect(addr);
    let reply = fast.request(&format!(
        r#"{{"op":"compile","no_drc":true,"source":{}}}"#,
        quoted(&sil_program(9))
    ));
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
    slow.join().expect("slow client");
    let stats = Client::connect(addr).request(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("timeouts"), Some(&Json::Int(1)));
    handle.shutdown();
}

#[test]
fn full_queue_answers_overloaded_immediately() {
    let (addr, handle) = start(ServerConfig {
        jobs: 1,
        queue_capacity: 1,
        enable_test_ops: true,
        ..ServerConfig::default()
    });
    let mut stats_client = Client::connect(addr);
    // Occupy the only worker, then fill the one queue slot. Stats are
    // answered inline (never queued), so polling them cannot deadlock.
    let mut busy = Client::connect(addr);
    busy.writer
        .write_all(b"{\"op\":\"sleep\",\"ms\":4000,\"id\":\"busy\"}\n")
        .expect("send");
    wait_for(&mut stats_client, "busy_workers", 1);
    let mut queued = Client::connect(addr);
    queued
        .writer
        .write_all(b"{\"op\":\"sleep\",\"ms\":4000,\"id\":\"queued\"}\n")
        .expect("send");
    wait_for(&mut stats_client, "queue_depth", 1);

    // Worker busy + queue full: the next compute op must be rejected
    // with `overloaded`, and fast (no deadline wait).
    let begin = Instant::now();
    let reply = Client::connect(addr).request(r#"{"op":"sleep","ms":1,"id":"rejected"}"#);
    assert_eq!(
        reply.get("error").and_then(Json::as_str),
        Some("overloaded"),
        "{reply:?}"
    );
    assert!(
        begin.elapsed() < Duration::from_secs(2),
        "overloaded reply should not wait for the queue"
    );
    let stats = stats_client.request(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("rejected"), Some(&Json::Int(1)));
    // Shutdown drains: the in-flight and queued sleeps finish early
    // (they poll the stop flag) rather than holding the server hostage.
    handle.shutdown();
}

#[test]
fn batch_flood_does_not_starve_interactive_requests() {
    let (addr, handle) = start(ServerConfig {
        jobs: 1,
        queue_capacity: 16,
        enable_test_ops: true,
        ..ServerConfig::default()
    });
    let mut stats_client = Client::connect(addr);
    // Six batch clients pile 3s of sleep onto the single worker without
    // waiting for replies. Kept alive so their jobs stay deliverable.
    let mut flood = Vec::new();
    for i in 0..6 {
        let mut client = Client::connect(addr);
        client
            .writer
            .write_all(
                format!("{{\"op\":\"sleep\",\"ms\":500,\"priority\":\"batch\",\"id\":{i}}}\n")
                    .as_bytes(),
            )
            .expect("send flood");
        flood.push(client);
    }
    wait_for(&mut stats_client, "busy_workers", 1);

    // An interactive compile must jump the batch backlog: it waits for
    // at most the in-flight sleep (500ms), never the full 3s queue —
    // which would blow its deadline.
    let begin = Instant::now();
    let reply = Client::connect(addr).request(&format!(
        r#"{{"op":"compile","no_drc":true,"priority":"interactive","deadline_ms":2500,"source":{}}}"#,
        quoted(&sil_program(11))
    ));
    let waited = begin.elapsed();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
    assert!(
        waited < Duration::from_millis(2000),
        "interactive request waited {waited:?} behind the batch flood"
    );

    let stats = stats_client.request(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("batch"), Some(&Json::Int(6)), "{stats:?}");
    assert_eq!(stats.get("interactive"), Some(&Json::Int(1)), "{stats:?}");
    // The flood still completes: every batch client gets its reply.
    for client in &mut flood {
        let mut response = String::new();
        client.reader.read_line(&mut response).expect("flood reply");
        let reply = parse_json(response.trim()).expect("well-formed flood reply");
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
    }
    handle.shutdown();
}

/// Polls the stats op until `field` reaches `want` (or panics after 5s).
fn wait_for(stats_client: &mut Client, field: &str, want: i128) {
    let begin = Instant::now();
    loop {
        let stats = stats_client.request(r#"{"op":"stats"}"#);
        if stats.get(field) == Some(&Json::Int(want)) {
            return;
        }
        assert!(
            begin.elapsed() < Duration::from_secs(5),
            "`{field}` never reached {want}: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn sigint_drains_the_real_binary_and_exits_zero() {
    let trace_path =
        std::env::temp_dir().join(format!("silc-serve-sigint-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace_path);
    let mut child = silc()
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "2"])
        .arg("--trace")
        .arg(&trace_path)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut banner = String::new();
    BufReader::new(stderr)
        .read_line(&mut banner)
        .expect("banner");
    let addr: SocketAddr = banner
        .split_whitespace()
        .find_map(|word| word.trim_end_matches(';').parse().ok())
        .unwrap_or_else(|| panic!("no address in banner: {banner:?}"));

    // One real request over the wire proves the server is up.
    let mut client = Client::connect(addr);
    let reply = client.request(&format!(
        r#"{{"op":"compile","no_drc":true,"source":{}}}"#,
        quoted(&sil_program(7))
    ));
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");

    let interrupt = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(interrupt.success(), "could not signal the server");
    let begin = Instant::now();
    let status = loop {
        if let Some(status) = child.try_wait().expect("wait") {
            break status;
        }
        assert!(
            begin.elapsed() < Duration::from_secs(15),
            "server did not exit after SIGINT"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(status.success(), "SIGINT exit was not clean: {status:?}");

    // The trace flushed on the way out, as well-formed JSONL naming the
    // serve counters.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    for line in trace.lines() {
        parse_json(line).unwrap_or_else(|e| panic!("bad JSONL line `{line}`: {e}"));
    }
    assert!(trace.contains("\"serve.accept\""), "{trace}");
    assert!(trace.contains("\"serve.requests\""), "{trace}");
    let _ = std::fs::remove_file(&trace_path);
}

/// A randomized leaf-cell program (same family as the incremental
/// engine's equivalence suite).
fn random_program(dims: &[(i64, i64)]) -> String {
    use std::fmt::Write as _;
    let mut src = String::new();
    let mut top = String::from("cell top() {\n");
    for (i, &(w, h)) in dims.iter().enumerate() {
        writeln!(
            src,
            "cell c{i}() {{ box metal (0, 0) ({w}, {h}); box poly (-2, {y0}) ({w}, {y1}); }}",
            y0 = h + 3,
            y1 = h + 5,
        )
        .unwrap();
        writeln!(top, "place c{i}() at ({}, 0);", i as i64 * 40).unwrap();
    }
    top.push_str("}\nplace top() at (0, 0);");
    src.push_str(&top);
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// For random programs, the served `cif` field is byte-identical to
    /// what `silc compile` prints on stdout.
    #[test]
    fn served_compile_is_byte_identical_to_the_cli(
        dims in prop::collection::vec((4i64..24, 4i64..24), 1..4),
    ) {
        let source = random_program(&dims);
        let (addr, handle) = start(ServerConfig {
            jobs: 1,
            queue_capacity: 4,
            ..ServerConfig::default()
        });
        let reply = Client::connect(addr).request(&format!(
            r#"{{"op":"compile","no_drc":true,"source":{}}}"#,
            quoted(&source)
        ));
        handle.shutdown();
        prop_assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
        let served = reply.get("cif").and_then(Json::as_str).expect("cif");
        let cli = cli_compile_stdout(&source, "prop");
        prop_assert_eq!(served.as_bytes(), &cli[..]);
    }
}

#[test]
fn serve_rejects_misuse_of_the_cli() {
    // An input file is a usage error for the daemon.
    let out = silc().args(["serve", "design.sil"]).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("takes no input file"), "{stderr}");
    // `--addr` belongs to serve alone.
    let out = silc()
        .args(["sim", "x.isl", "--addr", "127.0.0.1:0"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--addr"), "{stderr}");
    assert!(stderr.contains("silc serve"), "{stderr}");
}
