//! Integration: the headline claims of every experiment in
//! EXPERIMENTS.md, asserted on the same functions the benches time.

use silc_bench::{e1, e2, e3, e4, e5, e6, e7, e8};

#[test]
fn e1_pdp8_within_fifty_percent() {
    let result = e1::run();
    assert!(
        result.ratio <= 1.5,
        "E1: ratio {:.2} exceeds the 50% bound",
        result.ratio
    );
    assert!(result.ratio >= 1.0);
    assert!(result.per_operation_packages >= result.synthesized_packages);
}

#[test]
fn e2_description_leverage_scales() {
    let rows = e2::run(&[2, 8]);
    for pair in rows.chunks(2) {
        let (small, large) = (&pair[0], &pair[1]);
        assert_eq!(small.source_lines, large.source_lines, "{}", small.design);
        assert!(
            large.leverage > small.leverage,
            "{}: leverage must grow with n",
            small.design
        );
    }
}

#[test]
fn e3_single_source_many_widths() {
    let rows = e3::run(&[4, 16]);
    assert!(rows[1].width > rows[0].width);
    assert!(rows[1].wire_length > rows[0].wire_length);
    for row in &rows {
        assert!(!row.channel_tracks.is_empty());
    }
}

#[test]
fn e4_minimization_pays() {
    let rows = e4::run();
    let total_raw: usize = rows.iter().map(|r| r.raw_terms).sum();
    let total_exact: usize = rows.iter().map(|r| r.exact_terms).sum();
    assert!(
        total_exact < total_raw,
        "minimization should shrink the suite: {total_exact} vs {total_raw}"
    );
}

#[test]
fn e5_behavioral_compilation_costs_on_datapaths() {
    for row in e5::run() {
        if row.name != "traffic" {
            assert!(row.space_ratio() > 1.0, "{}", row.name);
            assert!(row.speed_ratio() >= 1.0, "{}", row.name);
        }
    }
}

#[test]
fn e6_hierarchy_keeps_cif_sublinear() {
    let rows = e6::run(&[4, 16]);
    let geometry_growth = rows[1].flat_elements as f64 / rows[0].flat_elements as f64;
    let cif_growth = rows[1].cif_bytes as f64 / rows[0].cif_bytes as f64;
    assert!(cif_growth < geometry_growth / 2.0);
    for row in &rows {
        assert_eq!(row.drc_violations, 0);
    }
}

#[test]
fn e7_verification_battery_passes() {
    for row in e7::run() {
        assert!(row.pass, "{}: {}", row.check, row.detail);
    }
}

#[test]
fn e8_wiring_behaviour() {
    // River: fully interlocked chains need one track per net.
    for row in e8::river_sweep(&[2, 6]) {
        assert_eq!(row.tracks, row.chain);
    }
    // Channel: tracks bounded below by density.
    let (rows, _) = e8::channel_sweep(&[3, 6], 11);
    for row in &rows {
        assert!(row.tracks >= row.density);
    }
    // Placement: regular beats scrambled.
    let p = e8::placement_comparison(6, 3);
    assert!(p.aligned_wire < p.scrambled_wire);
}
