//! Integration: the `silc` command-line programming environment.

use std::io::Write as _;
use std::process::Command;

fn silc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_silc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("silc-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

#[test]
fn compile_emits_cif_and_reports_drc() {
    let sil = write_temp(
        "ok.sil",
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    );
    let out = silc().arg("compile").arg(&sil).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("DS 1"), "CIF on stdout: {stdout}");
    assert!(stderr.contains("0 violation"), "DRC on stderr: {stderr}");
}

#[test]
fn compile_fails_on_drc_violation_unless_overridden() {
    let sil = write_temp(
        "bad.sil",
        "cell c() { box metal (0,0) (1,20); } place c() at (0,0);",
    );
    let out = silc().arg("compile").arg(&sil).output().expect("runs");
    assert!(!out.status.success());
    let out = silc()
        .arg("compile")
        .arg(&sil)
        .arg("--no-drc")
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn compile_diagnoses_syntax_errors() {
    let sil = write_temp("syntax.sil", "cell c( { }");
    let out = silc().arg("compile").arg(&sil).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("silc:"), "{stderr}");
}

#[test]
fn sim_runs_and_dumps_registers() {
    let isl = write_temp(
        "count.isl",
        "machine m { reg n[8]; state s { n := n + 1; if n == 5 { halt; } } }",
    );
    let out = silc().arg("sim").arg(&isl).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("halted"), "{stdout}");
    assert!(stdout.contains("n = 0o6"), "{stdout}");
}

#[test]
fn synth_prints_estimate() {
    let isl = write_temp(
        "acc.isl",
        "machine m { reg a[8]; port input x[8]; state s { a := a + x; } }",
    );
    let out = silc().arg("synth").arg(&isl).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("packages"), "{stdout}");
    assert!(stdout.contains("control:"), "{stdout}");
}

#[test]
fn pla_compiles_espresso_format() {
    let pla = write_temp("maj.pla", ".i 3\n.o 1\n110 1\n101 1\n011 1\n111 1\n.e\n");
    let out = silc().arg("pla").arg(&pla).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("3 terms"), "{stderr}");
    assert!(stderr.contains("0 violation"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = silc().arg("bogus").output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn missing_file_reported() {
    let out = silc()
        .arg("compile")
        .arg("/nonexistent/never.sil")
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
