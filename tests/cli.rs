//! Integration: the `silc` command-line programming environment.

use std::io::Write as _;
use std::process::Command;

fn silc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_silc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("silc-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

#[test]
fn compile_emits_cif_and_reports_drc() {
    let sil = write_temp(
        "ok.sil",
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    );
    let out = silc().arg("compile").arg(&sil).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("DS 1"), "CIF on stdout: {stdout}");
    assert!(stderr.contains("0 violation"), "DRC on stderr: {stderr}");
}

#[test]
fn compile_fails_on_drc_violation_unless_overridden() {
    let sil = write_temp(
        "bad.sil",
        "cell c() { box metal (0,0) (1,20); } place c() at (0,0);",
    );
    let out = silc().arg("compile").arg(&sil).output().expect("runs");
    assert!(!out.status.success());
    let out = silc()
        .arg("compile")
        .arg(&sil)
        .arg("--no-drc")
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn compile_diagnoses_syntax_errors() {
    let sil = write_temp("syntax.sil", "cell c( { }");
    let out = silc().arg("compile").arg(&sil).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("silc:"), "{stderr}");
}

#[test]
fn sim_runs_and_dumps_registers() {
    let isl = write_temp(
        "count.isl",
        "machine m { reg n[8]; state s { n := n + 1; if n == 5 { halt; } } }",
    );
    let out = silc().arg("sim").arg(&isl).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("halted"), "{stdout}");
    assert!(stdout.contains("n = 0o6"), "{stdout}");
}

#[test]
fn synth_prints_estimate() {
    let isl = write_temp(
        "acc.isl",
        "machine m { reg a[8]; port input x[8]; state s { a := a + x; } }",
    );
    let out = silc().arg("synth").arg(&isl).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("packages"), "{stdout}");
    assert!(stdout.contains("control:"), "{stdout}");
}

#[test]
fn pla_compiles_espresso_format() {
    let pla = write_temp("maj.pla", ".i 3\n.o 1\n110 1\n101 1\n011 1\n111 1\n.e\n");
    let out = silc().arg("pla").arg(&pla).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("3 terms"), "{stderr}");
    assert!(stderr.contains("0 violation"), "{stderr}");
}

/// A DRC-clean design whose extraction yields real transistors — the
/// input `silc pnr` places and routes.
const PNR_SIL: &str = "cell inv() { \
     box diff (0, 0) (4, 30); \
     box poly (-4, 8) (8, 10); \
     box poly (-4, 20) (8, 22); \
     box implant (-2, 18) (6, 24); \
     box contact (1, 14) (3, 16); \
     box metal (0, 13) (12, 17); } \
     cell column(n) { array inv() at (0, 0) step (0, 0) (0, 36) count 1 n; } \
     place column(4) at (0, 0);";

#[test]
fn pnr_routes_and_emits_cif() {
    let sil = write_temp("pnr.sil", PNR_SIL);
    let out = silc()
        .args(["pnr", sil.to_str().unwrap(), "--stats"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("DS"), "routed CIF on stdout: {stdout}");
    assert!(stderr.contains("8 cells"), "{stderr}");
    assert!(stderr.contains("4/4 nets"), "all nets routed: {stderr}");
    assert!(stderr.contains("drc clean"), "{stderr}");
    assert!(stderr.contains("extract-back ok"), "{stderr}");
    for stage in ["pnr.place", "pnr.route", "drc.spacing", "cif.write"] {
        assert!(stderr.contains(stage), "missing `{stage}`: {stderr}");
    }
}

#[test]
fn pnr_serial_and_parallel_emit_identical_bytes() {
    let sil = write_temp("pnr-par.sil", PNR_SIL);
    let path = sil.to_str().unwrap();
    let serial = silc()
        .args(["pnr", path, "--jobs", "1"])
        .output()
        .expect("runs");
    assert!(serial.status.success(), "{serial:?}");
    let parallel = silc()
        .args(["pnr", path, "--jobs", "4"])
        .output()
        .expect("runs");
    assert!(parallel.status.success(), "{parallel:?}");
    assert_eq!(serial.stdout, parallel.stdout);
}

#[test]
fn pnr_flags_are_validated() {
    let sil = write_temp("pnr-flags.sil", PNR_SIL);
    let path = sil.to_str().unwrap();
    // `--stack` belongs to `pnr` only.
    let out = silc()
        .args(["compile", path, "--stack", "nmos"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--stack"), "{stderr}");
    assert!(stderr.contains("silc pnr"), "{stderr}");
    // Duplicates are rejected by name.
    let out = silc()
        .args(["pnr", path, "--stack", "nmos", "--stack", "nmos"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("duplicate"), "{stderr}");
    assert!(stderr.contains("--stack"), "{stderr}");
    // An unknown stack fails with the valid set.
    let out = silc()
        .args(["pnr", path, "--stack", "cmos9"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cmos9"), "{stderr}");
    assert!(stderr.contains("mead-conway-nmos"), "{stderr}");
    // `--no-drc` stays a compile flag.
    let out = silc()
        .args(["pnr", path, "--no-drc"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--no-drc"), "{stderr}");
    assert!(stderr.contains("silc compile"), "{stderr}");
}

#[test]
fn unknown_flag_is_rejected_by_name() {
    let sil = write_temp(
        "flags.sil",
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    );
    let out = silc()
        .arg("compile")
        .arg(&sil)
        .arg("--no-drcc")
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--no-drcc"), "names the bad flag: {stderr}");
}

#[test]
fn flags_are_validated_per_subcommand() {
    let sil = write_temp(
        "percmd.sil",
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    );
    let isl = write_temp(
        "percmd.isl",
        "machine m { reg n[8]; state s { n := n + 1; if n == 5 { halt; } } }",
    );
    // `--cycles` belongs to `sim` only.
    let out = silc()
        .args(["compile", sil.to_str().unwrap(), "--cycles", "5"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--cycles"), "{stderr}");
    assert!(stderr.contains("silc sim"), "{stderr}");
    // `--raw` belongs to `pla` only.
    let out = silc()
        .args(["sim", isl.to_str().unwrap(), "--raw"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--raw"));
    // `-o` is compile/pla only.
    let out = silc()
        .args(["synth", isl.to_str().unwrap(), "-o", "/tmp/x"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("-o"));
    // `--engine` belongs to sim/batch/serve.
    let out = silc()
        .args(["compile", sil.to_str().unwrap(), "--engine", "compiled"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--engine"), "{stderr}");
    assert!(stderr.contains("silc sim"), "{stderr}");
    // Unknown engine names are rejected with the valid set.
    let out = silc()
        .args(["sim", isl.to_str().unwrap(), "--engine", "turbo"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown engine `turbo`"), "{stderr}");
    assert!(stderr.contains("compiled"), "{stderr}");
    assert!(stderr.contains("interp"), "{stderr}");
}

#[test]
fn sim_engines_print_identical_reports() {
    let isl = write_temp(
        "engines.isl",
        "machine m { reg n[8]; port output o[8]; state s { n := n + 3; o := n; if n == 30 { halt; } } }",
    );
    let mut outputs = Vec::new();
    for engine in ["compiled", "interp"] {
        let out = silc()
            .args(["sim", isl.to_str().unwrap(), "--engine", engine])
            .output()
            .expect("runs");
        assert!(out.status.success(), "{engine}: {out:?}");
        outputs.push(out.stdout);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "engines must print byte-identical reports"
    );
    let text = String::from_utf8_lossy(&outputs[0]);
    assert!(text.contains("halted"), "{text}");
}

#[test]
fn stats_prints_stage_table() {
    let sil = write_temp(
        "stats.sil",
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    );
    let out = silc()
        .args(["compile", sil.to_str().unwrap(), "--stats"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for stage in [
        "lang.lex",
        "lang.parse",
        "lang.elaborate",
        "layout.flatten",
        "drc.width",
        "drc.spacing",
        "cif.write",
    ] {
        assert!(stderr.contains(stage), "missing `{stage}` in: {stderr}");
    }
    assert!(stderr.contains("wall"), "{stderr}");
    assert!(stderr.contains("drc.rects_checked"), "{stderr}");
}

#[test]
fn stats_off_by_default() {
    let sil = write_temp(
        "nostats.sil",
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    );
    let out = silc().arg("compile").arg(&sil).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("lang.lex"), "{stderr}");
}

/// Checks a JSONL line is one flat JSON object: string keys, string or
/// unsigned-integer values. The validator is deliberately strict — it
/// accepts exactly the subset the tracer emits.
fn assert_flat_json_object(line: &str) {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| panic!("not an object: {line}"));
    for pair in inner.split(',') {
        let (key, value) = pair
            .split_once(':')
            .unwrap_or_else(|| panic!("not a pair `{pair}` in: {line}"));
        assert!(
            key.len() >= 3 && key.starts_with('"') && key.ends_with('"'),
            "bad key `{key}` in: {line}"
        );
        let ok = (value.len() >= 2 && value.starts_with('"') && value.ends_with('"'))
            || (!value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()));
        assert!(ok, "bad value `{value}` in: {line}");
    }
}

#[test]
fn trace_emits_one_json_object_per_line() {
    let sil = write_temp(
        "trace.sil",
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    );
    let jsonl = std::env::temp_dir().join("silc-cli-tests/trace.jsonl");
    let out = silc()
        .args([
            "compile",
            sil.to_str().unwrap(),
            "--trace",
            jsonl.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&jsonl).expect("trace file written");
    assert!(!text.is_empty());
    for line in text.lines() {
        assert_flat_json_object(line);
        assert!(line.contains("\"event\":\""), "{line}");
    }
    for stage in ["lang.lex", "lang.parse", "lang.elaborate", "cif.write"] {
        assert!(
            text.contains(&format!("\"stage\":\"{stage}\"")),
            "missing span for `{stage}`: {text}"
        );
    }
    assert!(text.contains("\"event\":\"counter\""), "{text}");
}

#[test]
fn sim_and_pla_record_their_stages() {
    let isl = write_temp(
        "traced.isl",
        "machine m { reg n[8]; state s { n := n + 1; if n == 5 { halt; } } }",
    );
    let out = silc()
        .args(["sim", isl.to_str().unwrap(), "--stats"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("isl.parse"), "{stderr}");
    assert!(stderr.contains("sim.run"), "{stderr}");
    assert!(stderr.contains("sim.cycles"), "{stderr}");

    let pla = write_temp("traced.pla", ".i 3\n.o 1\n110 1\n101 1\n011 1\n111 1\n.e\n");
    let out = silc()
        .args(["pla", pla.to_str().unwrap(), "--stats"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pla.minimize"), "{stderr}");
    assert!(stderr.contains("pla.layout"), "{stderr}");
    assert!(stderr.contains("drc.spacing"), "{stderr}");
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("silc-cli-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn duplicate_flags_are_rejected_by_name() {
    let sil = write_temp(
        "dup.sil",
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    );
    let path = sil.to_str().unwrap();
    for args in [
        vec!["compile", path, "-o", "a.cif", "-o", "b.cif"],
        vec!["compile", path, "--stats", "--stats"],
        vec!["compile", path, "--no-drc", "--no-drc"],
        vec!["compile", path, "--trace", "a", "--trace", "b"],
        vec!["compile", path, "--cache", "a", "--cache", "b"],
        vec!["sim", path, "--cycles", "5", "--cycles", "9"],
        vec!["sim", path, "--engine", "interp", "--engine", "compiled"],
    ] {
        let flag = args[2];
        let out = silc().args(&args).output().expect("runs");
        assert!(!out.status.success(), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("duplicate"), "{args:?}: {stderr}");
        assert!(stderr.contains(flag), "names `{flag}`: {stderr}");
    }
}

#[test]
fn cache_and_no_cache_conflict() {
    let sil = write_temp(
        "conflict.sil",
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    );
    let out = silc()
        .args([
            "compile",
            sil.to_str().unwrap(),
            "--no-cache",
            "--cache",
            "x",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--no-cache"), "{stderr}");
    assert!(stderr.contains("--cache"), "{stderr}");
}

#[test]
fn warm_cached_compile_hits_and_is_byte_identical() {
    let dir = temp_dir("warm");
    let sil = dir.join("d.sil");
    std::fs::write(
        &sil,
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    )
    .unwrap();
    let cache = dir.join("cache");
    let run = || {
        silc()
            .args([
                "compile",
                sil.to_str().unwrap(),
                "--cache",
                cache.to_str().unwrap(),
                "--stats",
            ])
            .output()
            .expect("runs")
    };
    let cold = run();
    assert!(cold.status.success(), "{cold:?}");
    let warm = run();
    assert!(warm.status.success(), "{warm:?}");
    // The CIF on stdout is byte-identical warm vs cold.
    assert_eq!(warm.stdout, cold.stdout);
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains("incr.hit"), "{stderr}");
    assert!(!stderr.contains("incr.miss"), "warm run missed: {stderr}");
    // The cold run reported its misses and stored bytes.
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(cold_err.contains("incr.miss"), "{cold_err}");
    assert!(cold_err.contains("incr.store_bytes"), "{cold_err}");
}

#[test]
fn corrupted_cache_entry_degrades_to_recompute_with_warning() {
    let dir = temp_dir("corrupt");
    let sil = dir.join("d.sil");
    std::fs::write(
        &sil,
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    )
    .unwrap();
    let cache = dir.join("cache");
    let run = || {
        silc()
            .args([
                "compile",
                sil.to_str().unwrap(),
                "--cache",
                cache.to_str().unwrap(),
            ])
            .output()
            .expect("runs")
    };
    let cold = run();
    assert!(cold.status.success(), "{cold:?}");
    for entry in std::fs::read_dir(&cache).expect("cache dir") {
        let path = entry.expect("entry").path();
        std::fs::write(&path, b"garbage").expect("corrupt entry");
    }
    let recovered = run();
    assert!(recovered.status.success(), "{recovered:?}");
    assert_eq!(recovered.stdout, cold.stdout);
    let stderr = String::from_utf8_lossy(&recovered.stderr);
    assert!(
        stderr.contains("silc-incr: warning: ignoring cache entry"),
        "{stderr}"
    );
}

#[test]
fn batch_runs_jobs_concurrently_against_a_shared_cache() {
    let dir = temp_dir("batch");
    let mut manifest = String::new();
    // 16 jobs over 4 distinct designs: plenty of shared work.
    for i in 0..4 {
        let name = format!("d{i}.sil");
        std::fs::write(
            dir.join(&name),
            format!(
                "cell c() {{ box metal (0,0) (4,{h}); }} place c() at (0,0);",
                h = 20 + 4 * i
            ),
        )
        .unwrap();
        for _ in 0..4 {
            manifest.push_str(&format!("compile {name}\n"));
        }
    }
    let manifest_path = dir.join("jobs.txt");
    std::fs::write(&manifest_path, &manifest).unwrap();
    let out = silc()
        .args([
            "batch",
            manifest_path.to_str().unwrap(),
            "--jobs",
            "8",
            "--stats",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Per-job table rows plus the summary line.
    assert_eq!(stderr.matches(" ok  ").count(), 16, "{stderr}");
    assert!(
        stderr.contains("batch: 16 job(s), 16 ok, 0 failed"),
        "{stderr}"
    );
    // The shared cache served repeated designs from memory.
    assert!(stderr.contains("incr.hit"), "{stderr}");
    assert!(stderr.contains("incr.mem_hit"), "{stderr}");
}

#[test]
fn batch_reports_failing_jobs_without_aborting_the_rest() {
    let dir = temp_dir("batch-fail");
    std::fs::write(
        dir.join("good.sil"),
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    )
    .unwrap();
    let manifest_path = dir.join("jobs.txt");
    std::fs::write(&manifest_path, "compile good.sil\ncompile missing.sil\n").unwrap();
    let out = silc()
        .args(["batch", manifest_path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("batch: 2 job(s), 1 ok, 1 failed"),
        "{stderr}"
    );
    assert!(stderr.contains("FAIL"), "{stderr}");
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn shards_and_jobs_flags_are_validated() {
    let dir = temp_dir("shards-flags");
    std::fs::write(
        dir.join("d.sil"),
        "cell c() { box metal (0,0) (4,20); } place c() at (0,0);",
    )
    .unwrap();
    let manifest_path = dir.join("jobs.txt");
    std::fs::write(&manifest_path, "compile d.sil\n").unwrap();
    let manifest = manifest_path.to_str().unwrap();
    // Zero is not a stripe count or a worker count; name the flag.
    for (args, flag) in [
        (vec!["batch", manifest, "--shards", "0"], "--shards"),
        (vec!["batch", manifest, "--shards", "x"], "--shards"),
        (vec!["batch", manifest, "--jobs", "0"], "--jobs"),
        (vec!["serve", "--shards", "0"], "--shards"),
        (vec!["serve", "--jobs", "0"], "--jobs"),
    ] {
        let out = silc().args(&args).output().expect("runs");
        assert!(!out.status.success(), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(flag), "{args:?}: {stderr}");
        assert!(stderr.contains("positive number"), "{args:?}: {stderr}");
    }
    // Duplicates are rejected by name.
    let out = silc()
        .args(["batch", manifest, "--shards", "2", "--shards", "4"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("duplicate"), "{stderr}");
    assert!(stderr.contains("--shards"), "{stderr}");
    // `--shards` belongs to batch/serve only.
    let sil = dir.join("d.sil");
    let out = silc()
        .args(["compile", sil.to_str().unwrap(), "--shards", "4"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--shards"), "{stderr}");
    assert!(stderr.contains("silc batch"), "{stderr}");
    // And a valid stripe count works end to end.
    let out = silc()
        .args(["batch", manifest, "--shards", "4"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
}

/// A PLA whose heuristic minimization `silc verify` re-checks, plus a
/// mutated copy (one output bit flipped) that must be refuted.
const VERIFY_PLA: &str = ".i 3\n.o 2\n.ilb a b c\n.ob x y\n11- 10\n1-1 10\n-11 01\n000 01\n";

#[test]
fn verify_passes_clean_pla_and_refutes_mutant() {
    let clean = write_temp("verify-clean.pla", VERIFY_PLA);
    let out = silc().arg("verify").arg(&clean).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("equivalent"), "{stderr}");

    let mutant = write_temp("verify-mutant.pla", &VERIFY_PLA.replace("-11 01", "-11 11"));
    let out = silc()
        .args([
            "verify",
            mutant.to_str().unwrap(),
            "--against",
            clean.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "mutant must be refuted: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("NOT equivalent"), "{stderr}");
    assert!(stderr.contains("output `x`"), "counterexample: {stderr}");
}

#[test]
fn verify_flags_are_validated() {
    let pla = write_temp("verify-flags.pla", VERIFY_PLA);
    let path = pla.to_str().unwrap();
    // `--against` belongs to `verify` only.
    let out = silc()
        .args(["pla", path, "--against", path])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--against"), "{stderr}");
    assert!(stderr.contains("silc verify"), "{stderr}");
    // Duplicates are rejected by name.
    let out = silc()
        .args(["verify", path, "--against", path, "--against", path])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("duplicate"), "{stderr}");
    assert!(stderr.contains("--against"), "{stderr}");
    // `--against` only compares PLA tables.
    let isl = write_temp(
        "verify-flags.isl",
        "machine m { reg n[8]; state s { n := n + 1; if n == 5 { halt; } } }",
    );
    let out = silc()
        .args(["verify", isl.to_str().unwrap(), "--against", path])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--against"), "{stderr}");
}

#[test]
fn warm_reverify_is_a_pure_cache_hit() {
    let dir = temp_dir("warm-verify");
    let pla = dir.join("d.pla");
    std::fs::write(&pla, VERIFY_PLA).unwrap();
    let cache = dir.join("cache");
    let run = || {
        silc()
            .args([
                "verify",
                pla.to_str().unwrap(),
                "--cache",
                cache.to_str().unwrap(),
                "--stats",
            ])
            .output()
            .expect("runs")
    };
    let cold = run();
    assert!(cold.status.success(), "{cold:?}");
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(cold_err.contains("incr.miss"), "{cold_err}");
    let warm = run();
    assert!(warm.status.success(), "{warm:?}");
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains("incr.hit"), "{stderr}");
    assert!(
        !stderr.contains("incr.miss"),
        "warm verify missed: {stderr}"
    );
    assert!(stderr.contains("equivalent"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = silc().arg("bogus").output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn missing_file_reported() {
    let out = silc()
        .arg("compile")
        .arg("/nonexistent/never.sil")
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
