//! The tentpole guarantees of place-and-route, proptest-enforced:
//!
//! 1. every routed layout passes the full Mead–Conway DRC (width,
//!    spacing, contact and gate passes);
//! 2. extraction recovers the source netlist's connectivity
//!    (`structurally_matches` round-trip);
//! 3. the `parallel` feature changes nothing: serial and parallel runs
//!    produce byte-identical geometry, ports and reports.

use proptest::prelude::*;
use silc_drc::{check_flat, RuleSet};
use silc_layout::Layer;
use silc_pnr::{gen::random_netlist, place_and_route, Floorplan, RouteStack};

/// Flattens the (single-cell) routed library to per-layer rects.
fn flat_layers(out: &silc_pnr::PnrResult) -> Vec<Vec<silc_geom::Rect>> {
    let cell = out.library.cell(out.root).expect("root exists");
    let mut layers = vec![Vec::new(); Layer::ALL.len()];
    for e in cell.elements() {
        for r in e.shape.to_rects() {
            layers[e.layer.index()].push(r);
        }
    }
    layers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Routed geometry is DRC-clean and extracts back to the source.
    #[test]
    fn routed_layouts_are_drc_clean_and_extract_back(
        seed in 0u64..1000,
        cells in 1usize..14,
        per_row in 1usize..5,
    ) {
        let netlist = random_netlist(seed, cells);
        let stack = RouteStack::mead_conway_nmos();
        let fp = Floorplan::for_cells(cells, per_row);
        let out = place_and_route(&netlist, &stack, &fp, false)
            .expect("corpus netlists route completely");
        prop_assert_eq!(out.report.routed, out.report.nets);

        let layers = flat_layers(&out);
        let report = check_flat(&layers, &RuleSet::mead_conway_nmos());
        prop_assert!(
            report.is_clean(),
            "DRC violations in routed layout (seed {}): {:?}",
            seed,
            report.violations
        );

        let extracted = silc_extract::extract(&out.library, out.root)
            .expect("routed layout extracts");
        prop_assert!(
            extracted.netlist.structurally_matches(&netlist),
            "round-trip mismatch (seed {seed}):\nextracted:\n{}\nsource:\n{}",
            extracted.netlist,
            netlist
        );
    }

    /// The parallel feature is invisible in the output.
    #[test]
    fn parallel_routing_is_byte_identical_to_serial(
        seed in 0u64..500,
        cells in 2usize..12,
    ) {
        let netlist = random_netlist(seed, cells);
        let stack = RouteStack::mead_conway_nmos();
        let fp = Floorplan::for_cells(cells, 3);
        let serial = place_and_route(&netlist, &stack, &fp, false).expect("routes");
        let parallel = place_and_route(&netlist, &stack, &fp, true).expect("routes");
        let (sc, pc) = (
            serial.library.cell(serial.root).unwrap(),
            parallel.library.cell(parallel.root).unwrap(),
        );
        prop_assert_eq!(sc.elements(), pc.elements());
        prop_assert_eq!(sc.ports(), pc.ports());
        prop_assert_eq!(serial.report, parallel.report);
    }
}

/// A fixed smoke case pinning the E10 shape: all nets route, DRC is
/// clean, and the extract-back netlist matches, at a size the proptest
/// ranges do not reach.
#[test]
fn medium_floorplan_routes_clean() {
    let netlist = random_netlist(2024, 24);
    let stack = RouteStack::mead_conway_nmos();
    let fp = Floorplan::for_cells(24, 6);
    let out = place_and_route(&netlist, &stack, &fp, true).expect("routes");
    assert_eq!(out.report.routed, out.report.nets);
    let layers = flat_layers(&out);
    assert!(check_flat(&layers, &RuleSet::mead_conway_nmos()).is_clean());
    let extracted = silc_extract::extract(&out.library, out.root).unwrap();
    assert!(extracted.netlist.structurally_matches(&netlist));
}
