//! Greedy row-based placement.
//!
//! The floorplan is a regular array of cell sites on the routing grid.
//! Sites are filled row by row, left to right; at each site the placer
//! greedily picks the unplaced instance sharing the most nets with
//! already-placed ones (ties to netlist order), which keeps connected
//! transistors close without any iterative optimization. Every site is
//! grid-aligned by construction, so "legalization" is exact: a cell's
//! pins land on track crossings the moment it is placed.

use crate::cells::{leaf_cell, LeafCell, PinRole};
use crate::stack::RouteStack;
use crate::PnrError;
use silc_geom::{Fingerprint, FpHasher, Rect, Vector};
use silc_layout::Layer;
use silc_netlist::Netlist;
use silc_trace::Tracer;
use std::collections::{HashMap, HashSet};

/// A regular array of cell sites on the track grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Floorplan {
    /// Cell sites per row.
    pub cells_per_row: usize,
    /// Number of site rows.
    pub site_rows: usize,
    /// Track columns between neighbouring sites in a row.
    pub col_pitch: i64,
    /// Track rows between neighbouring site rows.
    pub row_pitch: i64,
    /// Free routing tracks kept around the cell array.
    pub margin: i64,
}

impl Floorplan {
    /// A floorplan with enough sites for `cells` instances at
    /// `cells_per_row` sites per row, with default routing slack:
    /// three free tracks between sites in both axes and four margin
    /// tracks (source pins are only enterable from the left by cell
    /// construction, so the margins carry most vertical traffic).
    ///
    /// Tall, narrow arrays get wider margins: with few cells per row
    /// almost every net must run vertically past other rows, and the
    /// margin columns are most of the vertical capacity, so the margin
    /// grows with the rows-to-columns imbalance.
    pub fn for_cells(cells: usize, cells_per_row: usize) -> Floorplan {
        let cells_per_row = cells_per_row.max(1);
        let site_rows = cells.div_ceil(cells_per_row).max(1);
        let imbalance = site_rows.div_ceil(2 * cells_per_row).saturating_sub(1) as i64;
        Floorplan {
            cells_per_row,
            site_rows,
            col_pitch: 6,
            row_pitch: 6,
            margin: 4 + 2 * imbalance,
        }
    }

    /// A roughly square floorplan for `cells` instances: the smallest
    /// row width whose square holds them all. The front-ends (`silc
    /// pnr`, batch `pnr` jobs, serve `pnr` requests) all place through
    /// this, so the same netlist fingerprints to the same floorplan —
    /// and the same cache entry — everywhere.
    pub fn squarish(cells: usize) -> Floorplan {
        let per_row = (1usize..).find(|r| r * r >= cells).unwrap_or(1);
        Floorplan::for_cells(cells, per_row)
    }

    /// Total cell sites.
    pub fn capacity(&self) -> usize {
        self.cells_per_row * self.site_rows
    }

    /// Track origin of site `i` (row-major).
    pub fn site(&self, i: usize) -> (i64, i64) {
        let col = (i % self.cells_per_row) as i64;
        let row = (i / self.cells_per_row) as i64;
        (
            self.margin + col * self.col_pitch,
            self.margin + row * self.row_pitch,
        )
    }

    /// Routing-grid width in track columns (cells are 3 columns wide).
    pub fn grid_cols(&self) -> i64 {
        2 * self.margin + (self.cells_per_row as i64 - 1) * self.col_pitch + 3
    }

    /// Routing-grid height in track rows (cells are 3 rows tall).
    pub fn grid_rows(&self) -> i64 {
        2 * self.margin + (self.site_rows as i64 - 1) * self.row_pitch + 3
    }
}

impl Fingerprint for Floorplan {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_len(self.cells_per_row);
        h.write_len(self.site_rows);
        h.write_i64(self.col_pitch);
        h.write_i64(self.row_pitch);
        h.write_i64(self.margin);
    }
}

/// One pin of a placed cell, resolved to a track crossing.
#[derive(Debug, Clone)]
pub struct PlacedPin {
    /// The net this pin belongs to (netlist net id).
    pub net: u32,
    /// Net name, for diagnostics.
    pub net_name: String,
    /// Track column.
    pub col: i64,
    /// Track row.
    pub row: i64,
}

/// A legalized cell.
#[derive(Debug, Clone)]
pub struct PlacedCell {
    /// Instance name from the netlist.
    pub instance: String,
    /// Cell kind (`enh`/`dep`).
    pub kind: String,
    /// Track origin of the site this cell occupies.
    pub site: (i64, i64),
    /// Pins, in the cell library's `gate`, `src`, `drn` order.
    pub pins: Vec<PlacedPin>,
}

/// A full legalized placement.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Placed cells, in site order.
    pub cells: Vec<PlacedCell>,
    /// The floorplan placed into.
    pub floorplan: Floorplan,
}

impl Placement {
    /// All cell geometry in root-cell lambda coordinates, tagged with
    /// the owning net ([`crate::grid::NO_NET`] for internal rects),
    /// indexed by [`Layer::index`].
    pub(crate) fn tagged_rects(
        &self,
        stack: &RouteStack,
    ) -> Result<Vec<Vec<(Rect, u32)>>, PnrError> {
        let mut out = vec![Vec::new(); Layer::ALL.len()];
        for cell in &self.cells {
            let leaf = leaf_cell(&cell.kind, stack)?;
            let offset = cell_offset(stack, cell.site);
            let net_for = |role: PinRole| -> u32 {
                leaf.pins
                    .iter()
                    .position(|p| p.role == role)
                    .and_then(|i| cell.pins.get(i))
                    .map(|p| p.net)
                    .unwrap_or(crate::grid::NO_NET)
            };
            for &(layer, r, role) in &leaf.rects {
                let net = match role {
                    PinRole::Internal => crate::grid::NO_NET,
                    role => net_for(role),
                };
                out[layer.index()].push((r.translate(offset), net));
            }
        }
        Ok(out)
    }
}

/// Lambda offset moving a leaf cell's local frame onto `site`.
pub(crate) fn cell_offset(stack: &RouteStack, site: (i64, i64)) -> Vector {
    // The leaf cell keeps its source pin at local (2, 4); site (a, b)
    // must put it on crossing (a, b).
    Vector::new(stack.track_x(site.0) - 2, stack.track_y(site.1) - 4)
}

/// Places `netlist` into `floorplan` on `stack`.
///
/// # Errors
///
/// [`PnrError::FloorplanTooSmall`] when instances outnumber sites,
/// [`PnrError::UnsupportedKind`] for non-transistor instances or
/// missing ports.
pub fn place(
    netlist: &Netlist,
    stack: &RouteStack,
    floorplan: &Floorplan,
    tracer: &Tracer,
) -> Result<Placement, PnrError> {
    let _span = tracer.span("pnr.place");
    let instances = netlist.instances();
    if instances.len() > floorplan.capacity() {
        return Err(PnrError::FloorplanTooSmall {
            cells: instances.len(),
            capacity: floorplan.capacity(),
        });
    }

    // Greedy ordering: next cell is the unplaced instance most
    // connected to the placed set.
    let nets_of: Vec<HashSet<u32>> = instances
        .iter()
        .map(|inst| inst.connections.iter().map(|&(_, n)| n.raw()).collect())
        .collect();
    let mut placed_nets: HashSet<u32> = HashSet::new();
    let mut remaining: Vec<usize> = (0..instances.len()).collect();
    let mut order = Vec::with_capacity(instances.len());
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(pos, &i)| {
                let shared = nets_of[i].intersection(&placed_nets).count();
                // Ties go to the earliest instance: reverse the index.
                (shared, usize::MAX - *pos)
            })
            .expect("remaining is non-empty");
        remaining.remove(pos);
        placed_nets.extend(nets_of[best].iter().copied());
        order.push(best);
    }

    let mut cells = Vec::with_capacity(order.len());
    for (slot, &i) in order.iter().enumerate() {
        let inst = &instances[i];
        let leaf: LeafCell = leaf_cell(&inst.kind, stack).map_err(|e| match e {
            PnrError::UnsupportedKind { kind, .. } => PnrError::UnsupportedKind {
                instance: inst.name.clone(),
                kind,
            },
            other => other,
        })?;
        let bound: HashMap<&str, u32> = inst
            .connections
            .iter()
            .map(|(p, n)| (p.as_str(), n.raw()))
            .collect();
        let site = floorplan.site(slot);
        let mut pins = Vec::with_capacity(leaf.pins.len());
        for pin in leaf.pins {
            let net = *bound
                .get(pin.port)
                .ok_or_else(|| PnrError::UnsupportedKind {
                    instance: inst.name.clone(),
                    kind: format!("{} (missing port `{}`)", inst.kind, pin.port),
                })?;
            pins.push(PlacedPin {
                net,
                net_name: net_name(netlist, net),
                col: site.0 + pin.dcol,
                row: site.1 + pin.drow,
            });
        }
        cells.push(PlacedCell {
            instance: inst.name.clone(),
            kind: inst.kind.clone(),
            site,
            pins,
        });
    }
    tracer.add("pnr.cells", cells.len() as u64);
    Ok(Placement {
        cells,
        floorplan: floorplan.clone(),
    })
}

fn net_name(netlist: &Netlist, raw: u32) -> String {
    netlist
        .nets()
        .get(raw as usize)
        .map(|n| n.name.clone())
        .unwrap_or_else(|| format!("net{raw}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_netlist() -> Netlist {
        let mut n = Netlist::new("tiny");
        let a = n.add_net("a");
        let b = n.add_net("b");
        let c = n.add_net("c");
        n.add_instance("m0", "enh", &[("gate", a), ("src", b), ("drn", c)])
            .unwrap();
        n.add_instance("m1", "enh", &[("gate", b), ("src", c), ("drn", a)])
            .unwrap();
        n
    }

    #[test]
    fn places_all_cells_on_distinct_sites() {
        let stack = RouteStack::mead_conway_nmos();
        let fp = Floorplan::for_cells(2, 2);
        let p = place(&tiny_netlist(), &stack, &fp, &Tracer::disabled()).unwrap();
        assert_eq!(p.cells.len(), 2);
        assert_ne!(p.cells[0].site, p.cells[1].site);
        for cell in &p.cells {
            assert_eq!(cell.pins.len(), 3);
        }
    }

    #[test]
    fn overfull_floorplan_is_rejected_with_counts() {
        let stack = RouteStack::mead_conway_nmos();
        let fp = Floorplan {
            cells_per_row: 1,
            site_rows: 1,
            col_pitch: 6,
            row_pitch: 5,
            margin: 2,
        };
        let err = place(&tiny_netlist(), &stack, &fp, &Tracer::disabled()).unwrap_err();
        assert_eq!(
            err,
            PnrError::FloorplanTooSmall {
                cells: 2,
                capacity: 1
            }
        );
    }

    #[test]
    fn non_transistor_kind_is_named_in_error() {
        let stack = RouteStack::mead_conway_nmos();
        let mut n = Netlist::new("bad");
        let a = n.add_net("a");
        n.add_instance("u7", "nand2", &[("a", a)]).unwrap();
        let fp = Floorplan::for_cells(1, 1);
        let msg = place(&n, &stack, &fp, &Tracer::disabled())
            .unwrap_err()
            .to_string();
        assert!(msg.contains("u7") && msg.contains("nand2"), "{msg}");
    }
}
