//! The leaf cell library: hand-crafted Mead–Conway nMOS transistor
//! cells whose pins land exactly on routing-track crossings.
//!
//! Each cell is a single transistor — a horizontal diffusion bar
//! crossed by a vertical poly gate — with all three terminals brought
//! up to metal landing pads, so the router only ever attaches to metal.
//! Pin positions are expressed in *track offsets* from the cell's
//! placement site: source at `(+0, +0)`, gate at `(+1, +2)`, drain at
//! `(+2, +0)`. Geometry is parameterized by the stack pitch so the pins
//! stay on-grid for any pitch ≥ 7 lambda.

use crate::stack::RouteStack;
use crate::PnrError;
use silc_geom::{Coord, Point, Rect};
use silc_layout::Layer;

/// Which net a cell rectangle belongs to, for the obstruction map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinRole {
    /// Part of the gate terminal (poly, gate cut, gate pad).
    Gate,
    /// Part of the source terminal.
    Src,
    /// Part of the drain terminal.
    Drn,
    /// Electrically internal or ambiguous (the diffusion bar, implant).
    Internal,
}

/// One pin of a leaf cell.
#[derive(Debug, Clone, Copy)]
pub struct CellPin {
    /// Port name on the transistor instance (`gate`/`src`/`drn`).
    pub port: &'static str,
    /// Which terminal this is.
    pub role: PinRole,
    /// Track-column offset from the placement site.
    pub dcol: i64,
    /// Track-row offset from the placement site.
    pub drow: i64,
}

/// A placeable transistor cell: tagged lambda geometry plus on-grid
/// pins, with the cell origin at lambda `(0, 0)` and the source pin at
/// the stack origin offset.
#[derive(Debug, Clone)]
pub struct LeafCell {
    /// Instance kind this cell implements (`"enh"` or `"dep"`).
    pub kind: &'static str,
    /// Geometry, tagged with the terminal it belongs to.
    pub rects: Vec<(Layer, Rect, PinRole)>,
    /// The three terminals, in `gate`, `src`, `drn` order.
    pub pins: [CellPin; 3],
    /// Footprint in tracks: the cell covers columns `site.0 ..=
    /// site.0 + cols - 1` and likewise rows.
    pub cols: i64,
    /// Footprint rows (see [`LeafCell::cols`]).
    pub rows: i64,
}

fn rect(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
    Rect::new(Point::new(x0, y0), Point::new(x1, y1)).expect("cell rect has positive extent")
}

/// Builds the transistor cell for `kind` on `stack`.
///
/// # Errors
///
/// [`PnrError::UnsupportedKind`] for kinds outside `enh`/`dep`, and
/// [`PnrError::BadStack`] when the stack pitch is too tight for the
/// cell's internal spacings.
pub fn leaf_cell(kind: &str, stack: &RouteStack) -> Result<LeafCell, PnrError> {
    if kind != "enh" && kind != "dep" {
        return Err(PnrError::UnsupportedKind {
            instance: String::new(),
            kind: kind.to_string(),
        });
    }
    let p = stack.pitch;
    if p < 7 {
        return Err(PnrError::BadStack {
            stack: stack.name.clone(),
            missing: "pitch below 7 lambda cannot hold the transistor cell",
        });
    }
    // Local lambda frame: source pin at (2, 4), gate pin at (2+p, 4+2p),
    // drain pin at (2+2p, 4). All values below keep the Mead–Conway
    // rules internally and leave >= spacing to anything on neighbouring
    // tracks (see the DRC proptests).
    let mut rects = vec![
        // Diffusion bar under source, channel and drain.
        (
            Layer::Diffusion,
            rect(0, 2, 4 + 2 * p, 6),
            PinRole::Internal,
        ),
        // Vertical poly gate: 2 wide, 2-lambda overhang below the bar,
        // rising into the gate landing pad.
        (Layer::Poly, rect(1 + p, 0, 3 + p, 3 + 2 * p), PinRole::Gate),
        (
            Layer::Poly,
            rect(p, 2 + 2 * p, 4 + p, 6 + 2 * p),
            PinRole::Gate,
        ),
        // Source: cut + metal pad.
        (Layer::Contact, rect(1, 3, 3, 5), PinRole::Src),
        (Layer::Metal, rect(0, 2, 4, 6), PinRole::Src),
        // Drain: cut + metal pad.
        (
            Layer::Contact,
            rect(1 + 2 * p, 3, 3 + 2 * p, 5),
            PinRole::Drn,
        ),
        (Layer::Metal, rect(2 * p, 2, 4 + 2 * p, 6), PinRole::Drn),
        // Gate: cut + metal pad on top of the poly pad.
        (
            Layer::Contact,
            rect(1 + p, 3 + 2 * p, 3 + p, 5 + 2 * p),
            PinRole::Gate,
        ),
        (
            Layer::Metal,
            rect(p, 2 + 2 * p, 4 + p, 6 + 2 * p),
            PinRole::Gate,
        ),
    ];
    if kind == "dep" {
        // Implant covering the channel turns the device depletion-mode.
        rects.push((Layer::Implant, rect(p - 1, 0, 5 + p, 8), PinRole::Internal));
    }
    Ok(LeafCell {
        kind: if kind == "dep" { "dep" } else { "enh" },
        rects,
        pins: [
            CellPin {
                port: "gate",
                role: PinRole::Gate,
                dcol: 1,
                drow: 2,
            },
            CellPin {
                port: "src",
                role: PinRole::Src,
                dcol: 0,
                drow: 0,
            },
            CellPin {
                port: "drn",
                role: PinRole::Drn,
                dcol: 2,
                drow: 0,
            },
        ],
        cols: 3,
        rows: 3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_sit_on_track_crossings() {
        let stack = RouteStack::mead_conway_nmos();
        let cell = leaf_cell("enh", &stack).unwrap();
        // Cell placed at site (a, b) has lambda origin
        // (track_x(a) - 2, track_y(b) - 4); check the pin pads are the
        // 4x4 squares centered on their crossings for site (0, 0).
        let ox = stack.track_x(0) - 2;
        let oy = stack.track_y(0) - 4;
        for pin in cell.pins {
            let at = stack.crossing(pin.dcol, pin.drow);
            let pad = cell
                .rects
                .iter()
                .find(|(l, r, role)| {
                    *l == Layer::Metal
                        && *role == pin.role
                        && r.translate(silc_geom::Vector::new(ox, oy))
                            .contains_point(at)
                })
                .map(|(_, r, _)| r.translate(silc_geom::Vector::new(ox, oy)));
            let pad = pad.unwrap_or_else(|| panic!("no metal pad under pin {}", pin.port));
            assert_eq!(
                pad.center(),
                at,
                "pad centered on crossing for {}",
                pin.port
            );
        }
    }

    #[test]
    fn dep_cell_implant_covers_channel() {
        let stack = RouteStack::mead_conway_nmos();
        let cell = leaf_cell("dep", &stack).unwrap();
        let poly: Vec<Rect> = cell
            .rects
            .iter()
            .filter(|(l, _, _)| *l == Layer::Poly)
            .map(|&(_, r, _)| r)
            .collect();
        let diff: Vec<Rect> = cell
            .rects
            .iter()
            .filter(|(l, _, _)| *l == Layer::Diffusion)
            .map(|&(_, r, _)| r)
            .collect();
        let implant: Vec<Rect> = cell
            .rects
            .iter()
            .filter(|(l, _, _)| *l == Layer::Implant)
            .map(|&(_, r, _)| r)
            .collect();
        let channel = poly
            .iter()
            .find_map(|p| diff.iter().find_map(|d| p.intersection(*d)))
            .expect("gate crosses the bar");
        assert!(implant.iter().any(|i| i.contains_rect(channel)));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let stack = RouteStack::mead_conway_nmos();
        let err = leaf_cell("nand2", &stack).unwrap_err();
        assert!(err.to_string().contains("nand2"));
    }
}
