//! The declared routing stack: which layers carry wires, in which
//! direction, on what pitch, and how layer changes are made.
//!
//! The stack is *data*, not code: the placer and router consult it for
//! every coordinate they emit, so a different process (different pitch,
//! swapped directions, wider wires) is a different [`RouteStack`] value,
//! not a different router. Stacks join incremental cache keys through
//! [`Fingerprint`], so editing the stack invalidates routed results.

use silc_geom::{Coord, Fingerprint, FpHasher, Point, Rect};
use silc_layout::Layer;
use std::fmt;

/// Preferred routing direction of one stack layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Wires run left-to-right; tracks are rows.
    Horiz,
    /// Wires run bottom-to-top; tracks are columns.
    Vert,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::Horiz => "horiz",
            Dir::Vert => "vert",
        })
    }
}

/// One routable layer of the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteLayer {
    /// The mask layer wires are drawn on.
    pub layer: Layer,
    /// Preferred (and, in this router, only) direction.
    pub dir: Dir,
    /// Drawn wire width in lambda.
    pub wire_width: Coord,
    /// Same-layer spacing rule in lambda (mirrors the DRC rule set).
    pub spacing: Coord,
}

/// How adjacent stack layers are joined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViaRule {
    /// The cut mask layer.
    pub cut_layer: Layer,
    /// Square cut edge length in lambda.
    pub cut: Coord,
    /// Landing-pad surround beyond the cut on both joined layers.
    pub surround: Coord,
    /// Cut-to-cut spacing rule in lambda.
    pub spacing: Coord,
}

impl ViaRule {
    /// Edge length of the square landing pad a via places on each
    /// joined layer.
    pub fn pad(&self) -> Coord {
        self.cut + 2 * self.surround
    }
}

/// A full declared routing stack plus the track grid it induces.
///
/// Track `(col, row)` crossings sit at
/// `(origin.x + pitch*col, origin.y + pitch*row)` in lambda. The same
/// pitch serves every layer so any crossing is a legal via site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteStack {
    /// Stack name (joins cache keys and diagnostics).
    pub name: String,
    /// Routable layers, bottom-up. Index is the router's layer id.
    pub layers: Vec<RouteLayer>,
    /// Via rule joining adjacent stack layers.
    pub via: ViaRule,
    /// Track pitch in lambda, shared by all layers.
    pub pitch: Coord,
    /// Lambda position of track crossing `(0, 0)`.
    pub origin: Point,
}

impl RouteStack {
    /// The Mead–Conway nMOS stack the rest of the workspace targets:
    /// poly runs vertically, metal horizontally, contact cuts join
    /// them. Pitch 7 leaves one lambda of slack between adjacent-track
    /// 4x4 via pads under the 3-lambda metal spacing rule.
    pub fn mead_conway_nmos() -> RouteStack {
        RouteStack {
            name: "mead-conway-nmos".to_string(),
            layers: vec![
                RouteLayer {
                    layer: Layer::Poly,
                    dir: Dir::Vert,
                    wire_width: 2,
                    spacing: 2,
                },
                RouteLayer {
                    layer: Layer::Metal,
                    dir: Dir::Horiz,
                    wire_width: 3,
                    spacing: 3,
                },
            ],
            via: ViaRule {
                cut_layer: Layer::Contact,
                cut: 2,
                surround: 1,
                spacing: 2,
            },
            pitch: 7,
            origin: Point::new(2, 4),
        }
    }

    /// Looks up a stack by CLI name.
    ///
    /// # Errors
    ///
    /// [`crate::PnrError::UnknownStack`] naming the unknown stack and
    /// the known ones.
    pub fn by_name(name: &str) -> Result<RouteStack, crate::PnrError> {
        match name {
            "mead-conway-nmos" | "nmos" => Ok(RouteStack::mead_conway_nmos()),
            _ => Err(crate::PnrError::UnknownStack {
                name: name.to_string(),
            }),
        }
    }

    /// Names of the stacks [`RouteStack::by_name`] accepts.
    pub const KNOWN: &'static [&'static str] = &["mead-conway-nmos", "nmos"];

    /// Router layer id carrying `dir`, if any.
    pub fn layer_for_dir(&self, dir: Dir) -> Option<usize> {
        self.layers.iter().position(|l| l.dir == dir)
    }

    /// Lambda x of vertical track `col`.
    pub fn track_x(&self, col: i64) -> Coord {
        self.origin.x + self.pitch * col
    }

    /// Lambda y of horizontal track `row`.
    pub fn track_y(&self, row: i64) -> Coord {
        self.origin.y + self.pitch * row
    }

    /// Lambda position of track crossing `(col, row)`.
    pub fn crossing(&self, col: i64, row: i64) -> Point {
        Point::new(self.track_x(col), self.track_y(row))
    }

    /// The square via landing pad centered on crossing `(col, row)`.
    pub fn pad_rect(&self, col: i64, row: i64) -> Rect {
        Rect::centered(self.crossing(col, row), self.via.pad(), self.via.pad())
            .expect("via pad has positive extent")
    }

    /// The square via cut centered on crossing `(col, row)`.
    pub fn cut_rect(&self, col: i64, row: i64) -> Rect {
        Rect::centered(self.crossing(col, row), self.via.cut, self.via.cut)
            .expect("via cut has positive extent")
    }

    /// The wire rectangle for a run on stack layer `l` between track
    /// crossings `(c1, r1)` and `(c2, r2)` (inclusive; for [`Dir::Horiz`]
    /// the rows must match, for [`Dir::Vert`] the columns). A
    /// single-crossing run yields a `width`-long stub.
    pub fn run_rect(&self, l: usize, c1: i64, r1: i64, c2: i64, r2: i64) -> Rect {
        let rl = &self.layers[l];
        let w = rl.wire_width;
        // Odd widths sit asymmetrically on the track: [t - w/2, t + w - w/2].
        let lo = w / 2;
        let hi = w - lo;
        let (xa, xb) = (self.track_x(c1.min(c2)), self.track_x(c1.max(c2)));
        let (ya, yb) = (self.track_y(r1.min(r2)), self.track_y(r1.max(r2)));
        let r = match rl.dir {
            Dir::Horiz => Rect::new(Point::new(xa - lo, ya - lo), Point::new(xb + hi, ya + hi)),
            Dir::Vert => Rect::new(Point::new(xa - lo, ya - lo), Point::new(xa + hi, yb + hi)),
        };
        r.expect("run rect has positive extent")
    }
}

impl Fingerprint for RouteStack {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.name);
        h.write_len(self.layers.len());
        for l in &self.layers {
            h.write_u32(l.layer.index() as u32);
            h.write_u32(matches!(l.dir, Dir::Vert) as u32);
            h.write_i64(l.wire_width);
            h.write_i64(l.spacing);
        }
        h.write_u32(self.via.cut_layer.index() as u32);
        h.write_i64(self.via.cut);
        h.write_i64(self.via.surround);
        h.write_i64(self.via.spacing);
        h.write_i64(self.pitch);
        self.origin.fp_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmos_stack_shape() {
        let s = RouteStack::mead_conway_nmos();
        assert_eq!(s.layers.len(), 2);
        assert_eq!(s.layers[0].layer, Layer::Poly);
        assert_eq!(s.layers[1].layer, Layer::Metal);
        assert_eq!(s.layer_for_dir(Dir::Horiz), Some(1));
        assert_eq!(s.layer_for_dir(Dir::Vert), Some(0));
        assert_eq!(s.via.pad(), 4);
        // Adjacent-track via pads keep the metal spacing rule.
        let gap = s.pitch - s.via.pad();
        assert!(gap >= s.layers[1].spacing);
    }

    #[test]
    fn by_name_rejects_unknown() {
        let err = RouteStack::by_name("cmos9").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cmos9"), "message names the stack: {msg}");
        assert!(
            msg.contains("mead-conway-nmos"),
            "message lists known stacks: {msg}"
        );
    }

    #[test]
    fn run_rect_spans_inclusive() {
        let s = RouteStack::mead_conway_nmos();
        // Metal (layer 1, horiz, width 3) from (0,0) to (2,0).
        let r = s.run_rect(1, 0, 0, 2, 0);
        assert_eq!(r.left(), s.track_x(0) - 1);
        assert_eq!(r.right(), s.track_x(2) + 2);
        assert_eq!(r.height(), 3);
        // Poly (layer 0, vert, width 2) single-crossing stub.
        let p = s.run_rect(0, 1, 1, 1, 1);
        assert_eq!(p.width(), 2);
        assert_eq!(p.height(), 2);
    }

    #[test]
    fn fingerprint_tracks_edits() {
        let a = RouteStack::mead_conway_nmos();
        let mut b = a.clone();
        b.pitch = 8;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
