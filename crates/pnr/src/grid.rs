//! The `RectIndex`-backed obstruction and congestion map.
//!
//! The router never reasons about cells or wires directly; it asks this
//! map whether a *candidate action* — occupying a track crossing on a
//! stack layer, or dropping a via — would violate a spacing rule or
//! touch another net's geometry. Queries are evaluated against the
//! exact DRC predicate (conflict iff the rects touch or both axis gaps
//! are below the spacing rule), with a conservative pad-sized probe, so
//! a routed layout is DRC-clean by construction.
//!
//! The map is rebuilt from (cell geometry + committed routes) at the
//! start of every routing round; within a round it is immutable, which
//! is what makes parallel per-net search deterministic.

use crate::stack::RouteStack;
use silc_geom::{Coord, Rect, RectIndex};
use silc_layout::Layer;

/// Net tag for geometry that belongs to no routable net (the diffusion
/// bar, implants): it conflicts with every net.
pub(crate) const NO_NET: u32 = u32::MAX;

/// One layer's tagged geometry.
pub(crate) struct LayerObs {
    index: RectIndex,
    nets: Vec<u32>,
}

impl LayerObs {
    pub(crate) fn build(rects: &[(Rect, u32)]) -> LayerObs {
        let bare: Vec<Rect> = rects.iter().map(|&(r, _)| r).collect();
        LayerObs {
            index: RectIndex::build(&bare),
            nets: rects.iter().map(|&(_, n)| n).collect(),
        }
    }

    /// True when `probe` for `net` conflicts with some other net's
    /// geometry under `spacing`: it touches it, or sits closer than
    /// `spacing` on both axes (the DRC spacing predicate).
    fn conflicts(&self, probe: Rect, spacing: Coord, net: u32) -> bool {
        self.index.query(probe, spacing).into_iter().any(|id| {
            if self.nets[id as usize] == net {
                return false;
            }
            let r = self.index.rect(id);
            if probe.touches(r) {
                return true;
            }
            let (gx, gy) = probe.axis_gaps(r);
            gx < spacing && gy < spacing
        })
    }
}

/// The full obstruction map for one routing round.
pub(crate) struct ObstructionMap {
    /// Per stack layer, in stack order.
    layers: Vec<LayerObs>,
    /// Via cuts (cell contacts + committed route vias).
    cuts: LayerObs,
    /// All diffusion: poly must stay clear of it regardless of net.
    diff: RectIndex,
    poly_diff_spacing: Coord,
}

impl ObstructionMap {
    /// Builds the map from tagged per-mask-layer rects. `tagged` is
    /// indexed by [`Layer::index`], each entry `(rect, net)`.
    pub(crate) fn build(stack: &RouteStack, tagged: &[Vec<(Rect, u32)>]) -> ObstructionMap {
        let layers = stack
            .layers
            .iter()
            .map(|rl| LayerObs::build(&tagged[rl.layer.index()]))
            .collect();
        let cuts = LayerObs::build(&tagged[stack.via.cut_layer.index()]);
        let diff_rects: Vec<Rect> = tagged[Layer::Diffusion.index()]
            .iter()
            .map(|&(r, _)| r)
            .collect();
        ObstructionMap {
            layers,
            cuts,
            diff: RectIndex::build(&diff_rects),
            poly_diff_spacing: 1,
        }
    }

    /// Poly may not touch or crowd diffusion: any contact would form a
    /// spurious transistor, so this check ignores net identity.
    fn clear_of_diffusion(&self, probe: Rect) -> bool {
        !self
            .diff
            .query(probe, self.poly_diff_spacing)
            .into_iter()
            .any(|id| {
                let r = self.diff.rect(id);
                if probe.touches(r) {
                    return true;
                }
                let (gx, gy) = probe.axis_gaps(r);
                gx < self.poly_diff_spacing && gy < self.poly_diff_spacing
            })
    }

    /// Can `net` occupy the track crossing `(col, row)` on stack layer
    /// `l`? Probed with the full via-pad footprint, which dominates
    /// every wire width, so one positive answer covers wires and pads
    /// alike.
    pub(crate) fn can_occupy(
        &self,
        stack: &RouteStack,
        l: usize,
        col: i64,
        row: i64,
        net: u32,
    ) -> bool {
        let rl = &stack.layers[l];
        let probe = stack.pad_rect(col, row);
        if self.layers[l].conflicts(probe, rl.spacing, net) {
            return false;
        }
        if rl.layer == Layer::Poly && !self.clear_of_diffusion(probe) {
            return false;
        }
        true
    }

    /// Can `net` drop a via at `(col, row)`? Requires the landing pad
    /// to be placeable on both joined layers plus cut-to-cut clearance.
    pub(crate) fn can_via(&self, stack: &RouteStack, col: i64, row: i64, net: u32) -> bool {
        (0..stack.layers.len()).all(|l| self.can_occupy(stack, l, col, row, net))
            && !self
                .cuts
                .conflicts(stack.cut_rect(col, row), stack.via.spacing, net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::Point;

    fn empty_tagged() -> Vec<Vec<(Rect, u32)>> {
        vec![Vec::new(); Layer::ALL.len()]
    }

    #[test]
    fn empty_map_is_free() {
        let stack = RouteStack::mead_conway_nmos();
        let obs = ObstructionMap::build(&stack, &empty_tagged());
        assert!(obs.can_occupy(&stack, 0, 3, 3, 7));
        assert!(obs.can_occupy(&stack, 1, 3, 3, 7));
        assert!(obs.can_via(&stack, 3, 3, 7));
    }

    #[test]
    fn other_net_pad_blocks_same_crossing_but_not_neighbour() {
        let stack = RouteStack::mead_conway_nmos();
        let mut tagged = empty_tagged();
        // Net 1 owns a via pad at crossing (2, 2).
        tagged[Layer::Metal.index()].push((stack.pad_rect(2, 2), 1));
        let obs = ObstructionMap::build(&stack, &tagged);
        assert!(!obs.can_occupy(&stack, 1, 2, 2, 9), "same crossing blocked");
        assert!(obs.can_occupy(&stack, 1, 2, 2, 1), "owner may reuse it");
        assert!(obs.can_occupy(&stack, 1, 3, 2, 9), "next track is legal");
        assert!(obs.can_occupy(&stack, 0, 2, 2, 9), "other layer unaffected");
    }

    #[test]
    fn poly_keeps_clear_of_diffusion() {
        let stack = RouteStack::mead_conway_nmos();
        let mut tagged = empty_tagged();
        // A diffusion bar crossing track column 4 at row 1.
        let y = stack.track_y(1);
        tagged[Layer::Diffusion.index()].push((
            Rect::new(
                Point::new(stack.track_x(3), y - 2),
                Point::new(stack.track_x(5), y + 2),
            )
            .unwrap(),
            NO_NET,
        ));
        let obs = ObstructionMap::build(&stack, &tagged);
        assert!(
            !obs.can_occupy(&stack, 0, 4, 1, 3),
            "poly blocked on the bar"
        );
        assert!(!obs.can_via(&stack, 4, 1, 3), "via blocked on the bar");
        assert!(obs.can_occupy(&stack, 1, 4, 1, 3), "metal may cross");
        assert!(obs.can_occupy(&stack, 0, 4, 3, 3), "poly fine two rows up");
    }

    #[test]
    fn cut_spacing_blocks_adjacent_foreign_cut_only_when_close() {
        let stack = RouteStack::mead_conway_nmos();
        let mut tagged = empty_tagged();
        tagged[Layer::Contact.index()].push((stack.cut_rect(2, 2), 1));
        let obs = ObstructionMap::build(&stack, &tagged);
        assert!(!obs.can_via(&stack, 2, 2, 9), "coincident foreign cut");
        assert!(obs.can_via(&stack, 2, 2, 1), "own cut may stack");
        assert!(obs.can_via(&stack, 3, 2, 9), "one track over is clear");
    }
}
