//! # silc-pnr — gridded place-and-route over a declared layer stack
//!
//! The paper calls wiring management the central complexity problem of
//! silicon compilation. This crate is the workspace's answer for
//! arbitrary floorplans: a declared routing [`RouteStack`] (per-layer
//! direction, pitch, via rules), a greedy row-based placer legalizing
//! transistor netlists onto grid-aligned sites, and a per-net gridded
//! maze router — A* over track crossings, layer changes via vias —
//! running against a `RectIndex`-backed obstruction and congestion map
//! with bounded rip-up-and-reroute.
//!
//! The output is ordinary [`silc_layout`] geometry: it flows into DRC,
//! extraction and CIF emission unchanged, and the round-trip is closed
//! by construction — a routed layout is DRC-clean (the obstruction map
//! evaluates the exact spacing predicates) and extracts back to a
//! netlist that [`silc_netlist::Netlist::structurally_matches`] the
//! source (proptest-enforced).
//!
//! Per-net search within a routing round runs in parallel under the
//! `parallel` feature; commits are serial in net order, so serial and
//! parallel builds produce byte-identical layouts.
//!
//! # Example
//!
//! ```
//! use silc_pnr::{place_and_route, Floorplan, RouteStack};
//!
//! let netlist = silc_pnr::gen::random_netlist(1, 4);
//! let fp = Floorplan::for_cells(4, 2);
//! let out = place_and_route(&netlist, &RouteStack::mead_conway_nmos(), &fp, false)?;
//! assert_eq!(out.report.routed, out.report.nets);
//! # Ok::<(), silc_pnr::PnrError>(())
//! ```

pub mod cells;
mod error;
pub mod gen;
mod grid;
mod place;
mod route;
mod stack;

pub use error::PnrError;
pub use place::{place, Floorplan, PlacedCell, PlacedPin, Placement};
pub use route::MAX_RIPUP_ROUNDS;
pub use stack::{Dir, RouteLayer, RouteStack, ViaRule};

use silc_layout::{Cell, CellId, Element, Library, Port};
use silc_netlist::Netlist;
use silc_trace::Tracer;

/// Counters summarizing one place-and-route run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PnrReport {
    /// Cells placed.
    pub cells: u64,
    /// Multi-pin nets needing routing.
    pub nets: u64,
    /// Nets successfully routed (equals `nets` on success).
    pub routed: u64,
    /// Total routed wirelength in lambda.
    pub wirelength: u64,
    /// Vias dropped.
    pub vias: u64,
    /// Routing rounds executed.
    pub rounds: u64,
    /// Rounds that performed rip-up-and-reroute.
    pub ripup_rounds: u64,
    /// A* nodes expanded across all searches.
    pub nodes_expanded: u64,
    /// Routing-grid width in track columns.
    pub grid_cols: i64,
    /// Routing-grid height in track rows.
    pub grid_rows: i64,
}

/// A completed place-and-route: real layout geometry plus counters.
#[derive(Debug, Clone)]
pub struct PnrResult {
    /// Single-cell library holding the routed design.
    pub library: Library,
    /// The routed root cell.
    pub root: CellId,
    /// Run counters.
    pub report: PnrReport,
}

/// Places and routes `netlist` into `floorplan` on `stack`.
///
/// # Errors
///
/// See [`PnrError`]; every variant carries the failing net, track or
/// stack context.
pub fn place_and_route(
    netlist: &Netlist,
    stack: &RouteStack,
    floorplan: &Floorplan,
    parallel: bool,
) -> Result<PnrResult, PnrError> {
    place_and_route_traced(netlist, stack, floorplan, parallel, &Tracer::disabled())
}

/// [`place_and_route`] with tracing: emits `pnr.place`/`pnr.route`
/// spans and `pnr.*` counters.
pub fn place_and_route_traced(
    netlist: &Netlist,
    stack: &RouteStack,
    floorplan: &Floorplan,
    parallel: bool,
    tracer: &Tracer,
) -> Result<PnrResult, PnrError> {
    let placement = place(netlist, stack, floorplan, tracer)?;
    let cell_rects = placement.tagged_rects(stack)?;
    let outcome = route::route_all(netlist, stack, &placement, &cell_rects, parallel, tracer)?;

    // Assemble the routed design as one flat root cell: cell geometry
    // in placement order, then per-net route geometry in net-id order,
    // then one port per connected net (so extraction recovers source
    // net names).
    let mut root = Cell::new(root_name(netlist.name()));
    for (i, layer_rects) in cell_rects.iter().enumerate() {
        let layer = silc_layout::Layer::ALL[i];
        for &(r, _) in layer_rects {
            root.push_element(Element::rect(layer, r));
        }
    }
    let mut wirelength = 0u64;
    let mut vias = 0u64;
    for segments in outcome.committed.values() {
        let g = route::net_geometry(stack, segments);
        wirelength += g.wirelength;
        vias += g.vias;
        for (layer, r) in g.rects {
            root.push_element(Element::rect(layer, r));
        }
    }
    let pin_layer = stack
        .layer_for_dir(Dir::Horiz)
        .expect("checked during routing");
    let port_layer = stack.layers[pin_layer].layer;
    let mut seen = std::collections::BTreeSet::new();
    let mut ports: Vec<(u32, Port)> = Vec::new();
    for cell in &placement.cells {
        for pin in &cell.pins {
            if seen.insert(pin.net) {
                ports.push((
                    pin.net,
                    Port::new(
                        pin.net_name.clone(),
                        port_layer,
                        stack.crossing(pin.col, pin.row),
                    ),
                ));
            }
        }
    }
    ports.sort_by_key(|&(net, _)| net);
    for (_, port) in ports {
        root.push_port(port);
    }

    let report = PnrReport {
        cells: placement.cells.len() as u64,
        nets: {
            // Multi-pin nets are exactly the routing tasks.
            outcome.committed.len() as u64
        },
        routed: outcome.committed.len() as u64,
        wirelength,
        vias,
        rounds: outcome.rounds,
        ripup_rounds: outcome.ripup_rounds,
        nodes_expanded: outcome.nodes_expanded,
        grid_cols: placement.floorplan.grid_cols(),
        grid_rows: placement.floorplan.grid_rows(),
    };
    tracer.add("pnr.nets", report.nets);
    tracer.add("pnr.routed", report.routed);
    tracer.add("pnr.wirelength", report.wirelength);
    tracer.add("pnr.vias", report.vias);

    let mut library = Library::new();
    let root = library
        .add_cell(root)
        .expect("fresh library accepts the root cell");
    Ok(PnrResult {
        library,
        root,
        report,
    })
}

/// CIF-safe root cell name derived from the netlist name.
fn root_name(netlist_name: &str) -> String {
    let mut name: String = netlist_name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if name.is_empty() {
        name.push_str("pnr");
    } else {
        name.push_str("_pnr");
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_a_small_netlist_completely() {
        let netlist = gen::random_netlist(3, 6);
        let stack = RouteStack::mead_conway_nmos();
        let fp = Floorplan::for_cells(6, 3);
        let out = place_and_route(&netlist, &stack, &fp, false).unwrap();
        assert_eq!(out.report.cells, 6);
        assert_eq!(out.report.routed, out.report.nets);
        assert!(out.report.wirelength > 0);
        let root = out.library.cell(out.root).unwrap();
        assert!(!root.elements().is_empty());
        assert!(!root.ports().is_empty());
    }

    #[test]
    fn traced_run_emits_pnr_counters() {
        let netlist = gen::random_netlist(9, 4);
        let stack = RouteStack::mead_conway_nmos();
        let fp = Floorplan::for_cells(4, 2);
        let tracer = Tracer::enabled();
        place_and_route_traced(&netlist, &stack, &fp, false, &tracer).unwrap();
        let report = tracer.finish();
        assert!(report.counter("pnr.nets").is_some());
        assert!(report.counter("pnr.routed").is_some());
        assert!(report.stage_us("pnr.place") > 0 || report.stage_us("pnr.route") > 0);
    }
}
