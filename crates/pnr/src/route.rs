//! Per-net gridded maze routing with negotiated-congestion
//! rip-up-and-reroute.
//!
//! Because every route is built from via-pad-sized shapes centred on
//! track crossings at a pitch that clears every spacing rule, two nets
//! can only ever conflict by claiming the *same* crossing on the same
//! stack layer. Routing therefore reduces to node-disjoint path search
//! over the `(layer, col, row)` grid: cell geometry statically blocks
//! nodes (checked against the exact DRC predicates via the
//! [`ObstructionMap`]), while other nets' routes are *soft* obstacles —
//! usable at a congestion cost that escalates each round, plus a
//! history cost on every node that stays contested.
//!
//! Rounds proceed PathFinder-style: every net that is unrouted or
//! shares a node re-searches in parallel against the round-start usage
//! map; the round ends by recomputing sharing and deepening history on
//! contested nodes. The process converges when no node is shared. All
//! searches read only round-start state and all bookkeeping is in
//! net-id order, so serial and parallel builds are byte-identical (a
//! proptest enforces this).
//!
//! A net whose pins are disconnected by cell geometry alone fails its
//! search outright; a stuck negotiation runs out of rounds. Both
//! report [`PnrError::Unroutable`] with the net, layer and track where
//! routing gave up.

use crate::grid::ObstructionMap;
use crate::place::Placement;
use crate::stack::RouteStack;
use crate::PnrError;
use silc_geom::Rect;
use silc_layout::Layer;
use silc_netlist::Netlist;
use silc_trace::Tracer;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

/// Negotiation rounds allowed before routing is declared stuck.
pub const MAX_RIPUP_ROUNDS: u64 = 256;

/// Serial/parallel map preserving input order (the PR 1 idiom): the
/// parallel path distributes `f` over a thread pool but collects into
/// input order, so both paths return identical vectors.
fn map_maybe_par<T, R>(parallel: bool, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    #[cfg(feature = "parallel")]
    if parallel && items.len() > 1 {
        use rayon::prelude::*;
        return items.par_iter().map(f).collect();
    }
    let _ = parallel;
    items.iter().map(f).collect()
}

/// The routing grid's node space: `(layer, col, row)` packed to `u32`.
#[derive(Debug, Clone, Copy)]
struct Grid {
    cols: i64,
    rows: i64,
    layers: usize,
}

impl Grid {
    fn len(&self) -> usize {
        self.layers * (self.cols * self.rows) as usize
    }
    fn idx(&self, l: usize, c: i64, r: i64) -> u32 {
        ((l as i64 * self.rows + r) * self.cols + c) as u32
    }
    fn decode(&self, idx: u32) -> (usize, i64, i64) {
        let idx = idx as i64;
        let c = idx % self.cols;
        let r = (idx / self.cols) % self.rows;
        let l = idx / (self.cols * self.rows);
        (l as usize, c, r)
    }
}

/// One net to route.
#[derive(Debug, Clone)]
struct NetTask {
    net: u32,
    name: String,
    /// Pin crossings, sorted.
    pins: Vec<(i64, i64)>,
    /// Stack layer the pins sit on (the metal layer).
    pin_layer: usize,
}

/// A complete routed tree for one net.
#[derive(Debug, Clone)]
struct NetRoute {
    /// One node path per pin-to-tree connection.
    segments: Vec<Vec<(usize, i64, i64)>>,
    /// Every node the tree occupies; via sites occupy both layers.
    nodes: BTreeSet<u32>,
    nodes_expanded: u64,
}

/// Where a failed search gave up (its most promising frontier node).
#[derive(Debug, Clone, Copy)]
struct FailInfo {
    layer: usize,
    col: i64,
    row: i64,
}

/// Routed tree geometry: per-mask-layer rects plus counters.
pub(crate) struct NetGeometry {
    pub rects: Vec<(Layer, Rect)>,
    pub wirelength: u64,
    pub vias: u64,
}

/// One routed path: (layer, col, row) steps on the track grid.
pub(crate) type RoutedPath = Vec<(usize, i64, i64)>;

/// Routing outcome over a whole placement.
pub(crate) struct RouteOutcome {
    /// Per net (id order): the segments routed for it.
    pub committed: BTreeMap<u32, Vec<RoutedPath>>,
    pub rounds: u64,
    pub ripup_rounds: u64,
    pub nodes_expanded: u64,
}

/// Renders one net's segments to mask geometry.
pub(crate) fn net_geometry(stack: &RouteStack, segments: &[Vec<(usize, i64, i64)>]) -> NetGeometry {
    let mut rects = Vec::new();
    let mut wirelength = 0u64;
    let mut vias = 0u64;
    for path in segments {
        // Maximal same-layer runs become wire rects.
        let mut start = 0usize;
        for i in 0..path.len() {
            let end_of_run = i + 1 == path.len() || path[i + 1].0 != path[i].0;
            if end_of_run {
                let (l, c1, r1) = path[start];
                let (_, c2, r2) = path[i];
                rects.push((stack.layers[l].layer, stack.run_rect(l, c1, r1, c2, r2)));
                start = i + 1;
            }
            if i + 1 < path.len() {
                let (la, ca, ra) = path[i];
                let (lb, cb, rb) = path[i + 1];
                if la != lb {
                    // Layer change: cut plus a landing pad on each layer.
                    vias += 1;
                    rects.push((stack.via.cut_layer, stack.cut_rect(ca, ra)));
                    for l in [la, lb] {
                        rects.push((stack.layers[l].layer, stack.pad_rect(ca, ra)));
                    }
                } else {
                    wirelength += (stack.pitch * ((ca - cb).abs() + (ra - rb).abs())) as u64;
                }
            }
        }
    }
    NetGeometry {
        rects,
        wirelength,
        vias,
    }
}

/// Per-round congestion state the searches read (immutable within a
/// round, which is what makes parallel search deterministic).
struct Congestion {
    /// Node → nets currently routed through it (id order).
    users: HashMap<u32, Vec<u32>>,
    /// Node → accumulated rounds it has spent contested.
    history: HashMap<u32, u64>,
    /// Escalating weight applied to present sharing this round.
    pressure: u64,
    /// Node → the only net allowed on it (forced pin accesses).
    reserved: HashMap<u32, u32>,
}

/// Whether `node` has any legal move leading somewhere other than
/// `pin` — i.e. whether it connects the pin to the rest of the grid
/// rather than dead-ending inside the cell (the node over the gate
/// between a cell's two contacts is legal for metal but leads
/// nowhere).
fn has_onward(
    grid: Grid,
    stack: &RouteStack,
    obs: &ObstructionMap,
    net: u32,
    node: u32,
    pin: u32,
) -> bool {
    let (l, c, r) = grid.decode(node);
    let (dc, dr) = match stack.layers[l].dir {
        crate::stack::Dir::Horiz => (1i64, 0i64),
        crate::stack::Dir::Vert => (0, 1),
    };
    for sign in [-1i64, 1] {
        let (nc, nr) = (c + dc * sign, r + dr * sign);
        if nc < 0 || nc >= grid.cols || nr < 0 || nr >= grid.rows {
            continue;
        }
        if grid.idx(l, nc, nr) != pin && obs.can_occupy(stack, l, nc, nr, net) {
            return true;
        }
    }
    if obs.can_via(stack, c, r, net) {
        for l2 in 0..grid.layers {
            if l2 != l && grid.idx(l2, c, r) != pin {
                return true;
            }
        }
    }
    false
}

/// Legal moves for `net` out of `cur`, skipping nodes already walked,
/// nodes reserved for other nets, and dead ends.
fn open_moves(
    grid: Grid,
    stack: &RouteStack,
    obs: &ObstructionMap,
    net: u32,
    cur: u32,
    visited: &BTreeSet<u32>,
    reserved: &HashMap<u32, u32>,
) -> Vec<u32> {
    let (l, c, r) = grid.decode(cur);
    let mut moves = Vec::new();
    let mut consider = |m: u32, legal: bool| {
        if legal
            && !visited.contains(&m)
            && reserved.get(&m).is_none_or(|&owner| owner == net)
            && has_onward(grid, stack, obs, net, m, cur)
        {
            moves.push(m);
        }
    };
    let (dc, dr) = match stack.layers[l].dir {
        crate::stack::Dir::Horiz => (1i64, 0i64),
        crate::stack::Dir::Vert => (0, 1),
    };
    for sign in [-1i64, 1] {
        let (nc, nr) = (c + dc * sign, r + dr * sign);
        if nc < 0 || nc >= grid.cols || nr < 0 || nr >= grid.rows {
            continue;
        }
        let legal = obs.can_occupy(stack, l, nc, nr, net);
        consider(grid.idx(l, nc, nr), legal);
    }
    if obs.can_via(stack, c, r, net) {
        for l2 in 0..grid.layers {
            if l2 != l {
                consider(grid.idx(l2, c, r), true);
            }
        }
    }
    moves
}

/// Reserves each pin's sole access node for its net.
///
/// A contact pin's crossing may be enterable by exactly one legal
/// move (source pins only from the west, drains only from the east:
/// the neighbouring gate pad and the diffusion under the contact
/// block everything else). Such a node is not negotiable — any other
/// net standing on it disconnects the pin outright, and a net camped
/// there traps congestion negotiation in a stable non-solution.
/// Reserving forced access nodes up front hard-blocks them for every
/// other net, the grid equivalent of a channel router's terminal
/// escapes. Returns the offending net and node on a double
/// reservation, which proves the placement unroutable.
fn reserve_pin_accesses(
    grid: Grid,
    stack: &RouteStack,
    obs: &ObstructionMap,
    tasks: &BTreeMap<u32, NetTask>,
) -> Result<HashMap<u32, u32>, (u32, FailInfo)> {
    let mut reserved: HashMap<u32, u32> = HashMap::new();
    // One net's forced chain can shrink another pin's choices to a
    // single move, so walk all pins repeatedly until nothing new is
    // claimed.
    loop {
        let mut changed = false;
        for task in tasks.values() {
            for &(c, r) in &task.pins {
                let pin = grid.idx(task.pin_layer, c, r);
                let mut visited = BTreeSet::from([pin]);
                let mut cur = pin;
                // Follow the chain of sole moves; a tree leaving this
                // pin must traverse every node on it.
                while let [only] =
                    open_moves(grid, stack, obs, task.net, cur, &visited, &reserved)[..]
                {
                    match reserved.insert(only, task.net) {
                        None => changed = true,
                        Some(prev) if prev != task.net => {
                            let (l, c, r) = grid.decode(only);
                            return Err((
                                task.net,
                                FailInfo {
                                    layer: l,
                                    col: c,
                                    row: r,
                                },
                            ));
                        }
                        Some(_) => {}
                    }
                    visited.insert(only);
                    cur = only;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(reserved)
}

impl Congestion {
    /// Congestion surcharge for `net` standing on `node`.
    fn penalty(&self, node: u32, net: u32) -> u64 {
        let others = self
            .users
            .get(&node)
            .map(|u| u.iter().filter(|&&n| n != net).count() as u64)
            .unwrap_or(0);
        let hist = self.history.get(&node).copied().unwrap_or(0);
        others * self.pressure + hist
    }

    /// Whether `net` may stand on `node` at all (reservation check).
    fn allows(&self, node: u32, net: u32) -> bool {
        self.reserved.get(&node).is_none_or(|&owner| owner == net)
    }
}

/// Multi-source A* from `tree` to `target` for `task.net`.
///
/// Moves are direction-legal steps along a layer's tracks plus vias at
/// crossings; every move is validated against the *static* obstruction
/// map (cell geometry), while other nets' routes only surcharge the
/// cost via [`Congestion::penalty`]. The heuristic (grid manhattan
/// distance plus one via if on the wrong layer) never exceeds the real
/// base cost, so it stays admissible under the surcharges.
#[allow(clippy::too_many_arguments)]
fn astar(
    grid: Grid,
    stack: &RouteStack,
    obs: &ObstructionMap,
    congestion: &Congestion,
    net: u32,
    tree: &BTreeSet<u32>,
    target: u32,
    expanded: &mut u64,
) -> Result<Vec<(usize, i64, i64)>, FailInfo> {
    const UNSEEN: u64 = u64::MAX;
    let via_cost = (stack.pitch + 5) as u64;
    let (tl, tc, tr) = grid.decode(target);
    let h = |l: usize, c: i64, r: i64| -> u64 {
        let manhattan = ((c - tc).abs() + (r - tr).abs()) as u64 * stack.pitch as u64;
        manhattan + if l != tl { via_cost } else { 0 }
    };

    let mut dist = vec![UNSEEN; grid.len()];
    let mut parent = vec![u32::MAX; grid.len()];
    // Static-legality caches: -1 unknown, else the answer.
    let mut occ_ok = vec![-1i8; grid.len()];
    let mut via_ok = vec![-1i8; (grid.cols * grid.rows) as usize];
    let mut can_occupy = |obs: &ObstructionMap, idx: u32| -> bool {
        let cached = occ_ok[idx as usize];
        if cached >= 0 {
            return cached == 1;
        }
        let (l, c, r) = grid.decode(idx);
        let ok = obs.can_occupy(stack, l, c, r, net);
        occ_ok[idx as usize] = ok as i8;
        ok
    };

    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    for &n in tree {
        let (l, c, r) = grid.decode(n);
        dist[n as usize] = 0;
        heap.push(std::cmp::Reverse((h(l, c, r), 0, n)));
    }

    // Most promising frontier node seen, for failure context.
    let mut best = (u64::MAX, tl, tc, tr);

    while let Some(std::cmp::Reverse((_, g, node))) = heap.pop() {
        if dist[node as usize] < g {
            continue;
        }
        if node == target {
            // Walk parents back to the tree.
            let mut path = vec![grid.decode(node)];
            let mut cur = node;
            while parent[cur as usize] != u32::MAX {
                cur = parent[cur as usize];
                path.push(grid.decode(cur));
            }
            path.reverse();
            return Ok(path);
        }
        *expanded += 1;
        let (l, c, r) = grid.decode(node);
        let hn = h(l, c, r);
        if hn < best.0 {
            best = (hn, l, c, r);
        }

        let relax = |heap: &mut BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>>,
                     dist: &mut Vec<u64>,
                     parent: &mut Vec<u32>,
                     next: u32,
                     cost: u64| {
            let g2 = g + cost;
            if g2 < dist[next as usize] {
                dist[next as usize] = g2;
                parent[next as usize] = node;
                let (nl, nc, nr) = grid.decode(next);
                heap.push(std::cmp::Reverse((g2 + h(nl, nc, nr), g2, next)));
            }
        };

        // Track steps along the layer's direction.
        let (dc, dr) = match stack.layers[l].dir {
            crate::stack::Dir::Horiz => (1i64, 0i64),
            crate::stack::Dir::Vert => (0, 1),
        };
        for sign in [-1i64, 1] {
            let (nc, nr) = (c + dc * sign, r + dr * sign);
            if nc < 0 || nc >= grid.cols || nr < 0 || nr >= grid.rows {
                continue;
            }
            let next = grid.idx(l, nc, nr);
            if !can_occupy(obs, next) || !congestion.allows(next, net) {
                continue;
            }
            let cost = stack.pitch as u64 + congestion.penalty(next, net);
            relax(&mut heap, &mut dist, &mut parent, next, cost);
        }
        // Vias to adjacent stack layers. A via occupies the crossing on
        // both layers, but each node's surcharge is paid exactly once
        // along a path: entering charged this node, the transition
        // charges the partner only. (Charging the current node again
        // here would make every detour that vias next to a contested
        // node strictly pricier than routing through it, and
        // negotiation would never converge.)
        for l2 in [l.wrapping_sub(1), l + 1] {
            if l2 >= grid.layers {
                continue;
            }
            let flat = (r * grid.cols + c) as usize;
            let ok = if via_ok[flat] >= 0 {
                via_ok[flat] == 1
            } else {
                let ok = obs.can_via(stack, c, r, net);
                via_ok[flat] = ok as i8;
                ok
            };
            if !ok {
                continue;
            }
            let next = grid.idx(l2, c, r);
            if !congestion.allows(next, net) {
                continue;
            }
            let cost = via_cost + congestion.penalty(next, net);
            relax(&mut heap, &mut dist, &mut parent, next, cost);
        }
    }

    Err(FailInfo {
        layer: best.1,
        col: best.2,
        row: best.3,
    })
}

/// Routes one net completely: connects each pin in turn to the growing
/// tree.
fn route_net(
    grid: Grid,
    stack: &RouteStack,
    obs: &ObstructionMap,
    congestion: &Congestion,
    task: &NetTask,
) -> Result<NetRoute, FailInfo> {
    let mut nodes = BTreeSet::new();
    let first = grid.idx(task.pin_layer, task.pins[0].0, task.pins[0].1);
    nodes.insert(first);
    let mut segments = Vec::new();
    let mut expanded = 0u64;
    for &(pc, pr) in &task.pins[1..] {
        let target = grid.idx(task.pin_layer, pc, pr);
        if nodes.contains(&target) {
            continue;
        }
        let path = astar(
            grid,
            stack,
            obs,
            congestion,
            task.net,
            &nodes,
            target,
            &mut expanded,
        )?;
        for &(l, c, r) in &path {
            nodes.insert(grid.idx(l, c, r));
        }
        // Via sites occupy both layers even when the path only names
        // one: mark the partner node so sharing detection sees the
        // full footprint.
        for w in path.windows(2) {
            if w[0].0 != w[1].0 {
                for l in 0..grid.layers {
                    nodes.insert(grid.idx(l, w[0].1, w[0].2));
                }
            }
        }
        segments.push(path);
    }
    Ok(NetRoute {
        segments,
        nodes,
        nodes_expanded: expanded,
    })
}

/// Routes every multi-pin net of `netlist` over `placement`.
pub(crate) fn route_all(
    netlist: &Netlist,
    stack: &RouteStack,
    placement: &Placement,
    cell_rects: &[Vec<(Rect, u32)>],
    parallel: bool,
    tracer: &Tracer,
) -> Result<RouteOutcome, PnrError> {
    let _ = netlist;
    let _span = tracer.span("pnr.route");
    let pin_layer = stack
        .layer_for_dir(crate::stack::Dir::Horiz)
        .ok_or_else(|| PnrError::BadStack {
            stack: stack.name.clone(),
            missing: "no horizontal routing layer for pins",
        })?;
    let grid = Grid {
        cols: placement.floorplan.grid_cols(),
        rows: placement.floorplan.grid_rows(),
        layers: stack.layers.len(),
    };

    // Gather pins per net.
    let mut pins_of: BTreeMap<u32, Vec<(i64, i64)>> = BTreeMap::new();
    let mut name_of: HashMap<u32, String> = HashMap::new();
    for cell in &placement.cells {
        for pin in &cell.pins {
            pins_of.entry(pin.net).or_default().push((pin.col, pin.row));
            name_of
                .entry(pin.net)
                .or_insert_with(|| pin.net_name.clone());
        }
    }
    let mut tasks: BTreeMap<u32, NetTask> = BTreeMap::new();
    for (net, mut pins) in pins_of {
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            continue;
        }
        tasks.insert(
            net,
            NetTask {
                net,
                name: name_of[&net].clone(),
                pins,
                pin_layer,
            },
        );
    }

    // Cell geometry never changes during routing: one static map serves
    // every round.
    let obs = ObstructionMap::build(stack, cell_rects);
    let reserved = reserve_pin_accesses(grid, stack, &obs, &tasks)
        .map_err(|(net, fail)| unroutable(&tasks[&net], stack, fail, 0))?;

    let mut routes: BTreeMap<u32, NetRoute> = BTreeMap::new();
    let mut congestion = Congestion {
        users: HashMap::new(),
        history: HashMap::new(),
        pressure: 0,
        reserved,
    };
    let mut rounds = 1u64;
    let mut ripup_rounds = 0u64;
    let mut nodes_expanded = 0u64;

    // Round 1: the usage map is empty, so every net's search is
    // independent — route them all in parallel. A failure here means
    // cell geometry alone disconnects the pins, which no amount of
    // negotiation can fix.
    let batch: Vec<&NetTask> = tasks.values().collect();
    let results = map_maybe_par(parallel, &batch, |task| {
        route_net(grid, stack, &obs, &congestion, task)
    });
    for (task, result) in batch.iter().zip(results) {
        match result {
            Ok(route) => {
                nodes_expanded += route.nodes_expanded;
                for &n in &route.nodes {
                    congestion.users.entry(n).or_default().push(task.net);
                }
                routes.insert(task.net, route);
            }
            Err(fail) => return Err(unroutable(task, stack, fail, 0)),
        }
    }

    // Negotiation rounds: serially re-route every net standing on a
    // contested node, updating the usage map immediately so each net
    // sees all earlier moves; then deepen history on nodes that are
    // still contested. Serial negotiation cannot oscillate in lockstep
    // the way simultaneous re-routing can, and it is byte-identical
    // across serial and parallel builds by construction.
    loop {
        let mut contested: Vec<u32> = routes
            .iter()
            .filter(|(_, r)| {
                r.nodes
                    .iter()
                    .any(|n| congestion.users.get(n).is_some_and(|u| u.len() > 1))
            })
            .map(|(&net, _)| net)
            .collect();
        if contested.is_empty() {
            break;
        }
        rounds += 1;
        if rounds > MAX_RIPUP_ROUNDS {
            // Negotiation is stuck: report the first contested net at
            // its first contested node.
            let task = &tasks[&contested[0]];
            let fail = routes[&contested[0]]
                .nodes
                .iter()
                .find(|n| congestion.users.get(n).is_some_and(|u| u.len() > 1))
                .map(|&n| {
                    let (l, c, r) = grid.decode(n);
                    FailInfo {
                        layer: l,
                        col: c,
                        row: r,
                    }
                })
                .unwrap_or(FailInfo {
                    layer: pin_layer,
                    col: task.pins[0].0,
                    row: task.pins[0].1,
                });
            return Err(unroutable(task, stack, fail, ripup_rounds));
        }
        ripup_rounds += 1;
        // Pressure (the price of standing on another net's node) ramps
        // up early rounds but is capped; history keeps growing without
        // bound. If both grew at the same rate a net camped on a
        // contested pinch point would never move — the detour through
        // someone else's territory stays proportionally as expensive as
        // camping forever. With pressure capped, the camped node's
        // history eventually dwarfs any finite detour and the tie
        // breaks.
        congestion.pressure = stack.pitch as u64 * rounds.min(16);
        // Rotate the re-route order every round. With a fixed order
        // the lowest-id contested net always moves first and vacates
        // the shared node before anyone else looks, so a net parked on
        // the victim's only corridor never feels the contention and
        // never concedes; rotation periodically makes the parked net
        // search while the corridor is still shared, and the
        // escalating pressure pushes it off.
        let shift = (rounds as usize) % contested.len();
        contested.rotate_left(shift);

        for net in contested {
            // Rip this net out of the usage map, re-search, put the new
            // route in.
            let old = routes.remove(&net).expect("contested nets are routed");
            for n in &old.nodes {
                if let Some(users) = congestion.users.get_mut(n) {
                    users.retain(|&u| u != net);
                }
            }
            let task = &tasks[&net];
            match route_net(grid, stack, &obs, &congestion, task) {
                Ok(route) => {
                    nodes_expanded += route.nodes_expanded;
                    for &n in &route.nodes {
                        congestion.users.entry(n).or_default().push(net);
                    }
                    routes.insert(net, route);
                }
                Err(fail) => return Err(unroutable(task, stack, fail, ripup_rounds)),
            }
        }

        // Deepen history wherever sharing survived this round. Bumps
        // are per-node and independent, so map iteration order does
        // not matter.
        let contested_nodes: Vec<u32> = congestion
            .users
            .iter()
            .filter(|(_, u)| u.len() > 1)
            .map(|(&n, _)| n)
            .collect();
        for n in contested_nodes {
            *congestion.history.entry(n).or_insert(0) += stack.pitch as u64;
        }
    }

    let committed: BTreeMap<u32, Vec<RoutedPath>> = routes
        .into_iter()
        .map(|(net, route)| (net, route.segments))
        .collect();
    tracer.add("pnr.rounds", rounds);
    tracer.add("pnr.ripup_rounds", ripup_rounds);
    tracer.add("pnr.nodes_expanded", nodes_expanded);
    Ok(RouteOutcome {
        committed,
        rounds,
        ripup_rounds,
        nodes_expanded,
    })
}

fn unroutable(task: &NetTask, stack: &RouteStack, fail: FailInfo, ripups: u64) -> PnrError {
    PnrError::Unroutable {
        net: task.name.clone(),
        pins: task.pins.len(),
        layer: stack.layers[fail.layer].layer.to_string(),
        col: fail.col,
        row: fail.row,
        ripups,
    }
}
