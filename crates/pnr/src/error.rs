//! Place-and-route errors.
//!
//! Every variant carries enough context to act on — the net name, the
//! grid coordinate, the stack layer — because a routing failure on a
//! thousand-net floorplan is useless if it only says "unroutable".

use std::fmt;

/// Error produced by placement or routing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PnrError {
    /// `--stack` named a stack this build does not know.
    UnknownStack {
        /// The unrecognized name.
        name: String,
    },
    /// The netlist contains an instance kind the cell library cannot
    /// place.
    UnsupportedKind {
        /// The offending instance name.
        instance: String,
        /// Its kind.
        kind: String,
    },
    /// The floorplan has fewer cell sites than the netlist has
    /// instances.
    FloorplanTooSmall {
        /// Instances needing sites.
        cells: usize,
        /// Sites the floorplan offers.
        capacity: usize,
    },
    /// The router exhausted its rip-up budget without completing a net.
    Unroutable {
        /// The net that failed.
        net: String,
        /// How many pins the net has.
        pins: usize,
        /// Routing layer name where the final search gave up.
        layer: String,
        /// Track column of the last frontier node.
        col: i64,
        /// Track row of the last frontier node.
        row: i64,
        /// Rip-up rounds spent before giving up.
        ripups: u64,
    },
    /// The stack has no layer for a required direction.
    BadStack {
        /// The stack name.
        stack: String,
        /// What was missing.
        missing: &'static str,
    },
}

impl fmt::Display for PnrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnrError::UnknownStack { name } => write!(
                f,
                "unknown routing stack `{name}` (known: {})",
                crate::RouteStack::KNOWN.join(", ")
            ),
            PnrError::UnsupportedKind { instance, kind } => write!(
                f,
                "instance `{instance}` has kind `{kind}`; the cell library only places `enh` and `dep` transistors"
            ),
            PnrError::FloorplanTooSmall { cells, capacity } => write!(
                f,
                "floorplan has {capacity} cell sites but the netlist needs {cells}"
            ),
            PnrError::Unroutable {
                net,
                pins,
                layer,
                col,
                row,
                ripups,
            } => write!(
                f,
                "net `{net}` ({pins} pins) is unroutable: search gave up on layer {layer} near track ({col}, {row}) after {ripups} rip-up rounds"
            ),
            PnrError::BadStack { stack, missing } => {
                write!(f, "stack `{stack}` is unusable: {missing}")
            }
        }
    }
}

impl std::error::Error for PnrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroutable_message_names_net_track_and_layer() {
        let e = PnrError::Unroutable {
            net: "clk".to_string(),
            pins: 3,
            layer: "metal".to_string(),
            col: 4,
            row: 9,
            ripups: 6,
        };
        let msg = e.to_string();
        for needle in ["`clk`", "3 pins", "metal", "(4, 9)", "6 rip-up"] {
            assert!(msg.contains(needle), "`{needle}` missing from: {msg}");
        }
    }

    #[test]
    fn capacity_message_carries_both_counts() {
        let e = PnrError::FloorplanTooSmall {
            cells: 40,
            capacity: 36,
        };
        let msg = e.to_string();
        assert!(msg.contains("36") && msg.contains("40"), "{msg}");
    }
}
