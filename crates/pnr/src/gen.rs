//! Seeded transistor-netlist generator for benchmarks, smoke tests and
//! proptests.
//!
//! Uses a splitmix-style step rather than `rand` so the E10 corpus
//! replays byte-for-byte from the seed alone. Generated netlists are in
//! the extractor's canonical form (source/drain ordered by net name),
//! so a routed layout that extracts back correctly satisfies
//! [`silc_netlist::Netlist::structurally_matches`] against its source.

use silc_netlist::Netlist;

/// Splitmix-style step (the E9 idiom): cheap, full-period, replayable.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a random transistor-level netlist with `cells` devices.
///
/// Net count scales with the cell count; roughly one device in six is
/// depletion-mode. Port bindings are canonicalized the way the
/// extractor would emit them.
pub fn random_netlist(seed: u64, cells: usize) -> Netlist {
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    let mut n = Netlist::new(format!("pnr_seed{seed}"));
    // A pool wide enough that nets rarely exceed a handful of pins.
    let pool = (cells + cells / 2 + 2).max(3);
    let nets: Vec<_> = (0..pool).map(|i| n.add_net(format!("w{i}"))).collect();
    for t in 0..cells {
        let gate = nets[(next(&mut state) % pool as u64) as usize];
        let mut src = nets[(next(&mut state) % pool as u64) as usize];
        let mut drn = nets[(next(&mut state) % pool as u64) as usize];
        if n.net_name(src) > n.net_name(drn) {
            std::mem::swap(&mut src, &mut drn);
        }
        let kind = if next(&mut state).is_multiple_of(6) {
            "dep"
        } else {
            "enh"
        };
        n.add_instance(
            format!("m{t}"),
            kind,
            &[("gate", gate), ("src", src), ("drn", drn)],
        )
        .expect("generated names are unique");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = random_netlist(42, 12);
        let b = random_netlist(42, 12);
        assert_eq!(a, b);
        let c = random_netlist(43, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn src_drn_are_canonically_ordered() {
        let n = random_netlist(7, 40);
        for inst in n.instances() {
            let src = inst
                .connections
                .iter()
                .find(|(p, _)| p == "src")
                .map(|&(_, id)| n.net_name(id))
                .unwrap();
            let drn = inst
                .connections
                .iter()
                .find(|(p, _)| p == "drn")
                .map(|&(_, id)| n.net_name(id))
                .unwrap();
            assert!(src <= drn, "{src} vs {drn}");
        }
    }
}
