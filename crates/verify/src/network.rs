//! Cube networks: multi-level combinational logic as a DAG of
//! cube-cover cones.
//!
//! A [`Network`] is the common intermediate form of the equivalence
//! checker. Every representation the compiler wants verified — a
//! minimized PLA personality, a synthesized control store, a transistor
//! netlist recovered by extraction — lowers to the same shape: primary
//! inputs plus *cones*, where each cone computes a sum-of-products
//! [`Cover`] over its fanins, optionally complemented (an nMOS
//! NOR-of-products is a complemented cone). Nodes are stored in
//! topological order (fanins always precede their cone), which every
//! algorithm below relies on.

use crate::VerifyError;
use silc_logic::{Cover, Cube, Lit};
use std::collections::HashMap;

/// Handle to a node within one [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index (stable within one network).
    pub const fn raw(self) -> u32 {
        self.0
    }

    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node: a primary input or a cube-cover cone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Node {
    /// Primary input (index into [`Network::input_names`]).
    Input(usize),
    /// Sum-of-products over the fanins; cover position `i` (leftmost
    /// cube column) reads `fanins[i]`.
    Cone {
        fanins: Vec<NodeId>,
        cover: Cover,
        complement: bool,
    },
}

/// A combinational cube network with named inputs and outputs.
#[derive(Debug, Clone)]
pub struct Network {
    input_names: Vec<String>,
    nodes: Vec<Node>,
    outputs: Vec<(String, NodeId)>,
}

impl Default for Network {
    fn default() -> Network {
        Network::new()
    }
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network {
            input_names: Vec::new(),
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Input(self.input_names.len()));
        self.input_names.push(name.into());
        id
    }

    /// Adds a cone computing `cover` (complemented when `complement`)
    /// over `fanins`; cover position `i` reads `fanins[i]`.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Malformed`] when the cover width disagrees with
    /// the fanin count or a fanin id is out of range (forward edges are
    /// impossible by construction: ids are handed out in order).
    pub fn add_cone(
        &mut self,
        fanins: Vec<NodeId>,
        cover: Cover,
        complement: bool,
    ) -> Result<NodeId, VerifyError> {
        if cover.num_inputs() != fanins.len() {
            return Err(VerifyError::Malformed {
                detail: format!(
                    "cone cover has {} inputs but {} fanins",
                    cover.num_inputs(),
                    fanins.len()
                ),
            });
        }
        if let Some(bad) = fanins.iter().find(|f| f.index() >= self.nodes.len()) {
            return Err(VerifyError::Malformed {
                detail: format!("fanin id {} out of range", bad.raw()),
            });
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Cone {
            fanins,
            cover,
            complement,
        });
        Ok(id)
    }

    /// Names `node` as an output.
    pub fn mark_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Primary input names, in index order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output `(name, node)` pairs, in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Total node count (inputs + cones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds a single-level network: one cone per output, every cone
    /// reading all `inputs` positionally (exactly a PLA's realized
    /// output covers). An *empty* cover of any width is accepted as the
    /// constant-false output — `Cover`'s `FromIterator` gives empty
    /// collections width 0, so realized covers of constant outputs
    /// arrive that way.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Malformed`] when a non-empty cover's width
    /// disagrees with the input count.
    pub fn from_covers(
        inputs: &[String],
        outputs: &[(String, Cover)],
    ) -> Result<Network, VerifyError> {
        let mut net = Network::new();
        let fanins: Vec<NodeId> = inputs.iter().map(|n| net.add_input(n.clone())).collect();
        for (name, cover) in outputs {
            let cover = if cover.is_empty() {
                Cover::empty(inputs.len())
            } else {
                cover.clone()
            };
            let id = net.add_cone(fanins.clone(), cover, false)?;
            net.mark_output(name.clone(), id);
        }
        Ok(net)
    }

    /// Splices another network's cones into this one, sharing primary
    /// inputs: `other`'s input `i` becomes this network's input
    /// `input_map[i]`. Returns `other`'s outputs translated into this
    /// network's id space. Used by the checker to put both sides of a
    /// comparison into one node space so [`Network::strash`] can merge
    /// identical subcones *across* the two sides.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Malformed`] when `input_map` points outside this
    /// network's inputs.
    pub fn splice_nodes(
        &mut self,
        other: &Network,
        input_map: &[usize],
    ) -> Result<Vec<(String, NodeId)>, VerifyError> {
        // Input index -> node id, in this network.
        let mut input_ids: Vec<Option<NodeId>> = vec![None; self.input_names.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Input(idx) = node {
                input_ids[*idx] = Some(NodeId(i as u32));
            }
        }
        let mut remap: Vec<NodeId> = Vec::with_capacity(other.nodes.len());
        for node in &other.nodes {
            match node {
                Node::Input(idx) => {
                    let target = input_map
                        .get(*idx)
                        .copied()
                        .and_then(|i| input_ids.get(i).copied().flatten());
                    remap.push(target.ok_or_else(|| VerifyError::Malformed {
                        detail: format!("input map has no target for input {idx}"),
                    })?);
                }
                Node::Cone {
                    fanins,
                    cover,
                    complement,
                } => {
                    let id = NodeId(self.nodes.len() as u32);
                    self.nodes.push(Node::Cone {
                        fanins: fanins.iter().map(|f| remap[f.index()]).collect(),
                        cover: cover.clone(),
                        complement: *complement,
                    });
                    remap.push(id);
                }
            }
        }
        Ok(other
            .outputs
            .iter()
            .map(|(name, id)| (name.clone(), remap[id.index()]))
            .collect())
    }

    /// Structural hashing: merges nodes with identical structure
    /// (same fanins after merging, same cover, same phase). Identical
    /// subcones — including whole identical outputs — collapse to one
    /// node, so simulation and exact flattening never repeat work.
    /// Returns the number of nodes merged away.
    pub fn strash(&mut self) -> usize {
        let mut remap: Vec<NodeId> = Vec::with_capacity(self.nodes.len());
        let mut kept: Vec<Node> = Vec::with_capacity(self.nodes.len());
        let mut seen: HashMap<String, NodeId> = HashMap::new();
        let mut merged = 0usize;
        for node in &self.nodes {
            match node {
                Node::Input(i) => {
                    let id = NodeId(kept.len() as u32);
                    kept.push(Node::Input(*i));
                    remap.push(id);
                }
                Node::Cone {
                    fanins,
                    cover,
                    complement,
                } => {
                    let fanins: Vec<NodeId> = fanins.iter().map(|f| remap[f.index()]).collect();
                    let mut key = String::new();
                    key.push(if *complement { '!' } else { '+' });
                    for f in &fanins {
                        key.push_str(&f.raw().to_string());
                        key.push(',');
                    }
                    key.push(';');
                    for cube in cover.cubes() {
                        key.push_str(&cube.to_string());
                        key.push('|');
                    }
                    if let Some(&existing) = seen.get(&key) {
                        merged += 1;
                        remap.push(existing);
                    } else {
                        let id = NodeId(kept.len() as u32);
                        kept.push(Node::Cone {
                            fanins,
                            cover: cover.clone(),
                            complement: *complement,
                        });
                        seen.insert(key, id);
                        remap.push(id);
                    }
                }
            }
        }
        for (_, node) in &mut self.outputs {
            *node = remap[node.index()];
        }
        self.nodes = kept;
        merged
    }

    /// Evaluates every node over 64 input vectors at once: lane `l` of
    /// `input_words[i]` is the value of input `i` in vector `l`. Returns
    /// one word per node. This is the same word-parallel trick
    /// `silc-exec` uses for compiled simulation, applied to cubes: a
    /// product term is an AND of (possibly negated) fanin words, a cover
    /// is the OR of its terms.
    ///
    /// # Panics
    ///
    /// Panics when `input_words.len()` differs from the input count.
    pub fn eval64(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(input_words.len(), self.input_names.len());
        let mut values = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                Node::Input(idx) => input_words[*idx],
                Node::Cone {
                    fanins,
                    cover,
                    complement,
                } => {
                    let mut sum = 0u64;
                    for cube in cover.cubes() {
                        let mut product = u64::MAX;
                        for (pos, &lit) in cube.lits().iter().enumerate() {
                            let word = values[fanins[pos].index()];
                            product &= match lit {
                                Lit::One => word,
                                Lit::Zero => !word,
                                Lit::DontCare => u64::MAX,
                            };
                        }
                        sum |= product;
                    }
                    if *complement {
                        !sum
                    } else {
                        sum
                    }
                }
            };
        }
        values
    }

    /// Flattens every node to a pair of covers *over the primary
    /// inputs*: `(on, off)`, where cover position `i` is input `i`. The
    /// two phases of each node partition the input space, so exact
    /// containment questions reduce to [`Cover::covers`]. Cones are
    /// composed bottom-up by substituting fanin phases into each product
    /// term; the complemented local phase comes from a Shannon-expansion
    /// cover complement.
    ///
    /// `cube_cap` bounds any intermediate cover's cube count.
    ///
    /// # Errors
    ///
    /// [`VerifyError::TooLarge`] when composition exceeds `cube_cap`
    /// cubes.
    pub fn flatten_phases(&self, cube_cap: usize) -> Result<Vec<(Cover, Cover)>, VerifyError> {
        let n = self.input_names.len();
        let mut phases: Vec<(Cover, Cover)> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let pair = match node {
                Node::Input(idx) => {
                    let mut on = Cover::empty(n);
                    let mut off = Cover::empty(n);
                    on.push(Cube::universe(n).with_lit(*idx, Lit::One))
                        .expect("width matches");
                    off.push(Cube::universe(n).with_lit(*idx, Lit::Zero))
                        .expect("width matches");
                    (on, off)
                }
                Node::Cone {
                    fanins,
                    cover,
                    complement,
                } => {
                    let local_off = complement_cover(cover);
                    let pos = compose(cover, fanins, &phases, n, cube_cap)?;
                    let neg = compose(&local_off, fanins, &phases, n, cube_cap)?;
                    if *complement {
                        (neg, pos)
                    } else {
                        (pos, neg)
                    }
                }
            };
            phases.push(pair);
        }
        Ok(phases)
    }
}

/// Substitutes fanin phase covers into `cover`'s product terms: a `1`
/// literal contributes the fanin's ON cover, a `0` its OFF cover, and
/// the term becomes the cross-product intersection of those covers.
fn compose(
    cover: &Cover,
    fanins: &[NodeId],
    phases: &[(Cover, Cover)],
    n: usize,
    cube_cap: usize,
) -> Result<Cover, VerifyError> {
    let mut result: Vec<Cube> = Vec::new();
    for cube in cover.cubes() {
        let mut term: Vec<Cube> = vec![Cube::universe(n)];
        for (pos, &lit) in cube.lits().iter().enumerate() {
            let substitute = match lit {
                Lit::One => &phases[fanins[pos].0 as usize].0,
                Lit::Zero => &phases[fanins[pos].0 as usize].1,
                Lit::DontCare => continue,
            };
            let mut next: Vec<Cube> = Vec::new();
            for a in &term {
                for b in substitute.cubes() {
                    if let Some(c) = a.intersect(b) {
                        next.push(c);
                    }
                    if next.len() > cube_cap {
                        return Err(VerifyError::TooLarge {
                            cubes: next.len(),
                            cap: cube_cap,
                        });
                    }
                }
            }
            term = next;
            if term.is_empty() {
                break;
            }
        }
        result.extend(term);
        if result.len() > cube_cap {
            return Err(VerifyError::TooLarge {
                cubes: result.len(),
                cap: cube_cap,
            });
        }
    }
    let mut out = Cover::from_cubes(n, result).map_err(|e| VerifyError::Malformed {
        detail: e.to_string(),
    })?;
    out.remove_single_cube_contained();
    Ok(out)
}

/// Complements a cover by Shannon expansion on the first bound
/// variable: `!f = x'·(!f|x=0) + x·(!f|x=1)`.
pub(crate) fn complement_cover(cover: &Cover) -> Cover {
    let n = cover.num_inputs();
    if cover.is_empty() {
        return Cover::tautology_cover(n);
    }
    // A cube with no bound literal covers everything.
    if cover
        .cubes()
        .iter()
        .any(|c| c.lits().iter().all(|&l| l == Lit::DontCare))
    {
        return Cover::empty(n);
    }
    // Pick the first variable bound anywhere in the cover.
    let var = (0..n)
        .find(|&i| cover.cubes().iter().any(|c| c.lit(i) != Lit::DontCare))
        .expect("a non-tautology cube binds some variable");
    let lo = complement_cover(&cover.cofactor(&Cube::universe(n).with_lit(var, Lit::Zero)));
    let hi = complement_cover(&cover.cofactor(&Cube::universe(n).with_lit(var, Lit::One)));
    let mut cubes: Vec<Cube> = Vec::with_capacity(lo.len() + hi.len());
    cubes.extend(lo.cubes().iter().map(|c| c.with_lit(var, Lit::Zero)));
    cubes.extend(hi.cubes().iter().map(|c| c.with_lit(var, Lit::One)));
    let mut out = Cover::from_cubes(n, cubes).expect("widths preserved");
    out.remove_single_cube_contained();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_network() -> Network {
        // out = a ^ b as a two-cube cover.
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let cover = Cover::from_cubes(
            2,
            vec![Cube::parse("10").unwrap(), Cube::parse("01").unwrap()],
        )
        .unwrap();
        let id = net.add_cone(vec![a, b], cover, false).unwrap();
        net.mark_output("out", id);
        net
    }

    #[test]
    fn eval64_matches_truth() {
        let net = xor_network();
        // Lane l: a = bit l of 0b1100, b = bit l of 0b1010.
        let values = net.eval64(&[0b1100, 0b1010]);
        let out = values[net.outputs()[0].1.index()];
        assert_eq!(out & 0b1111, 0b0110);
    }

    #[test]
    fn complement_is_exact() {
        let cover = Cover::from_cubes(
            3,
            vec![Cube::parse("1-0").unwrap(), Cube::parse("011").unwrap()],
        )
        .unwrap();
        let neg = complement_cover(&cover);
        for m in 0..8u64 {
            assert_eq!(cover.eval(m), !neg.eval(m), "minterm {m}");
        }
    }

    #[test]
    fn flatten_two_level() {
        // f = !(a·b) (a NAND cone), g = f·c — flattened ON cover of g
        // must equal the function table.
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let and = Cover::from_cubes(2, vec![Cube::parse("11").unwrap()]).unwrap();
        let nand = net.add_cone(vec![a, b], and, true).unwrap();
        let and2 = Cover::from_cubes(2, vec![Cube::parse("11").unwrap()]).unwrap();
        let g = net.add_cone(vec![nand, c], and2, false).unwrap();
        net.mark_output("g", g);
        let phases = net.flatten_phases(10_000).unwrap();
        let (on, off) = &phases[g.index()];
        for m in 0..8u64 {
            let a_v = (m >> 2) & 1 == 1;
            let b_v = (m >> 1) & 1 == 1;
            let c_v = m & 1 == 1;
            let expect = !(a_v && b_v) && c_v;
            assert_eq!(on.eval(m), expect, "on, minterm {m}");
            assert_eq!(off.eval(m), !expect, "off, minterm {m}");
        }
    }

    #[test]
    fn strash_merges_identical_cones() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let and = Cover::from_cubes(2, vec![Cube::parse("11").unwrap()]).unwrap();
        let x = net.add_cone(vec![a, b], and.clone(), true).unwrap();
        let y = net.add_cone(vec![a, b], and, true).unwrap();
        net.mark_output("x", x);
        net.mark_output("y", y);
        assert_eq!(net.strash(), 1);
        assert_eq!(net.outputs()[0].1, net.outputs()[1].1);
    }

    #[test]
    fn cone_width_mismatch_rejected() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let cover = Cover::from_cubes(2, vec![Cube::parse("11").unwrap()]).unwrap();
        assert!(net.add_cone(vec![a], cover, false).is_err());
    }
}
