//! The decision engine: structural hashing, simulation-guided partition
//! refinement, and exact cube-cover containment.
//!
//! Both entry points run the same three-tier procedure:
//!
//! 1. **Structural hashing** — the two sides are spliced into one
//!    network over shared primary inputs and [`Network::strash`]ed;
//!    output pairs that collapse to the same node are equivalent with no
//!    further work.
//! 2. **Simulation refinement** — rounds of 64-lane bit-packed random
//!    vectors partition the surviving nodes into candidate-equivalence
//!    classes; an output pair whose words ever differ is *refuted*, and
//!    the differing lane is decoded into a concrete counterexample.
//!    Rounds stop early once the partition is stable.
//! 3. **Exact fallback** — pairs still candidate-equivalent are decided
//!    by flattening both sides to ON/OFF covers over the primary inputs
//!    and asking [`Cover::covers`] in both directions. Simulation can
//!    only refute; this tier is what makes a *pass* a proof.
//!
//! There is no SAT solver anywhere: the exact tier is the same cube
//! calculus (`cofactor`-until-tautology) that `minimize` is built on.

use crate::network::Network;
use crate::{Report, VerifyError};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use silc_logic::{Cover, Cube, Lit, TruthTable};
use silc_trace::{span, Tracer};

/// Tuning knobs for the decision engine.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum rounds of 64-lane random simulation (the engine stops
    /// early when the candidate partition is stable).
    pub sim_rounds: usize,
    /// Seed for the random vectors. Fixed by default so verdicts are
    /// deterministic and therefore cacheable.
    pub seed: u64,
    /// Cube-count cap on any cover built during exact flattening.
    pub cube_cap: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            sim_rounds: 8,
            seed: 0x511C_0DE5,
            cube_cap: 20_000,
        }
    }
}

/// Exhaustive-within-64-lanes input patterns: input `i < 6` toggles
/// with period `2^(i+1)`, so any 6 inputs sweep all 64 combinations in
/// one word. Inputs beyond 6 get random words.
const WALSH: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

fn input_words(num_inputs: usize, round: usize, rng: &mut StdRng) -> Vec<u64> {
    (0..num_inputs)
        .map(|i| {
            if round == 0 && i < WALSH.len() {
                WALSH[i]
            } else {
                rng.next_u64()
            }
        })
        .collect()
}

/// Renders lane `lane` of the input words as `a=0 b=1 …`.
fn render_lane(names: &[String], words: &[u64], lane: u32) -> String {
    names
        .iter()
        .zip(words)
        .map(|(n, w)| format!("{n}={}", (w >> lane) & 1))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders a witness cube (`1-0` over named inputs) as `a=1 c=0`.
fn render_cube(names: &[String], cube: &Cube) -> String {
    let bound: Vec<String> = names
        .iter()
        .zip(cube.lits())
        .filter(|(_, &l)| l != Lit::DontCare)
        .map(|(n, &l)| format!("{n}={}", if l == Lit::One { 1 } else { 0 }))
        .collect();
    if bound.is_empty() {
        "any input".to_string()
    } else {
        bound.join(" ")
    }
}

/// One output pair awaiting a verdict.
struct Pair {
    name: String,
    impl_node: crate::network::NodeId,
    spec_node: crate::network::NodeId,
    refuted: Option<String>,
}

/// Splices `spec` into `impl_net` over shared primary inputs (matched
/// by name) and returns the combined network plus the spec outputs'
/// node ids in the combined id space.
fn splice(
    impl_net: &Network,
    spec: &Network,
) -> Result<(Network, Vec<(String, crate::network::NodeId)>), VerifyError> {
    let mut combined = impl_net.clone();
    // Spec inputs must be exactly the impl inputs (any order).
    let mut missing: Vec<&str> = Vec::new();
    let mut input_map = Vec::with_capacity(spec.input_names().len());
    for name in spec.input_names() {
        match impl_net.input_names().iter().position(|n| n == name) {
            Some(i) => input_map.push(i),
            None => missing.push(name),
        }
    }
    if !missing.is_empty() {
        return Err(VerifyError::InputMismatch {
            detail: format!("spec inputs not in impl: {}", missing.join(", ")),
        });
    }
    if let Some(extra) = impl_net
        .input_names()
        .iter()
        .find(|n| !spec.input_names().contains(n))
    {
        return Err(VerifyError::InputMismatch {
            detail: format!("impl input `{extra}` not in spec"),
        });
    }
    let spec_outputs = combined.splice_nodes(spec, &input_map)?;
    Ok((combined, spec_outputs))
}

/// Checks two completely specified networks for functional equivalence,
/// output by output. Outputs are paired by name; both sides must expose
/// the same output and input name sets.
///
/// # Errors
///
/// [`VerifyError::InputMismatch`] when the interfaces disagree,
/// [`VerifyError::TooLarge`] when exact flattening exceeds the cube
/// cap. An *inequivalence* is not an error: it comes back in
/// [`Report::mismatches`].
pub fn check_equivalence_traced(
    impl_net: &Network,
    spec_net: &Network,
    options: &Options,
    tracer: &Tracer,
) -> Result<Report, VerifyError> {
    let (mut combined, spec_outputs) = splice(impl_net, spec_net)?;

    // Pair outputs by name.
    let mut pairs: Vec<Pair> = Vec::new();
    for (name, spec_node) in &spec_outputs {
        let impl_node = combined
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
            .ok_or_else(|| VerifyError::InputMismatch {
                detail: format!("spec output `{name}` has no impl counterpart"),
            })?;
        pairs.push(Pair {
            name: name.clone(),
            impl_node,
            spec_node: *spec_node,
            refuted: None,
        });
    }
    if let Some((extra, _)) = impl_net
        .outputs()
        .iter()
        .find(|(n, _)| !spec_outputs.iter().any(|(s, _)| s == n))
    {
        return Err(VerifyError::InputMismatch {
            detail: format!("impl output `{extra}` has no spec counterpart"),
        });
    }
    for (_, node) in &spec_outputs {
        combined.mark_output("", *node); // keep spec nodes live through strash
    }

    let strash_merged = {
        let mut s = span!(tracer, "verify.strash");
        let merged = combined.strash();
        s.attr("merged", merged as u64);
        merged
    };
    // Re-read node ids after strash remapping: outputs were appended in
    // pair order after the impl outputs.
    let impl_out_count = impl_net.outputs().len();
    for (i, pair) in pairs.iter_mut().enumerate() {
        pair.spec_node = combined.outputs()[impl_out_count + i].1;
        pair.impl_node = combined
            .outputs()
            .iter()
            .find(|(n, _)| n == &pair.name)
            .map(|&(_, id)| id)
            .expect("impl output survives strash");
    }

    // Tier 2: simulation-guided partition refinement.
    let mut rng = StdRng::seed_from_u64(options.seed);
    let names: Vec<String> = combined.input_names().to_vec();
    let mut classes: Vec<u32> = vec![0; combined.len()];
    let mut class_count = 1usize;
    let mut rounds = 0usize;
    let mut refuted = 0usize;
    {
        let mut s = span!(tracer, "verify.sim");
        for round in 0..options.sim_rounds {
            rounds = round + 1;
            let words = input_words(names.len(), round, &mut rng);
            let values = combined.eval64(&words);
            for pair in pairs.iter_mut().filter(|p| p.refuted.is_none()) {
                let a = values[pair.impl_node.index()];
                let b = values[pair.spec_node.index()];
                if a != b {
                    let lane = (a ^ b).trailing_zeros();
                    pair.refuted = Some(format!(
                        "output `{}`: impl={} spec={} under {}",
                        pair.name,
                        (a >> lane) & 1,
                        (b >> lane) & 1,
                        render_lane(&names, &words, lane)
                    ));
                    refuted += 1;
                }
            }
            // Refine the candidate partition: nodes stay together only
            // while their signatures agree.
            let mut next: std::collections::HashMap<(u32, u64), u32> =
                std::collections::HashMap::new();
            let mut changed = false;
            for (i, &v) in values.iter().enumerate() {
                let len = next.len() as u32;
                let class = *next.entry((classes[i], v)).or_insert(len);
                if class != classes[i] {
                    changed = true;
                }
                classes[i] = class;
            }
            class_count = next.len();
            if !changed && round > 0 {
                break; // partition stable: more vectors refine nothing
            }
        }
        s.attr("rounds", rounds as u64);
        s.attr("classes", class_count as u64);
    }
    tracer.add("verify.sim_refuted", refuted as u64);

    // Tier 3: exact decision for the surviving candidates.
    let mut exact_decided = 0usize;
    let mut mismatches: Vec<String> = pairs.iter().filter_map(|p| p.refuted.clone()).collect();
    let undecided: Vec<&Pair> = pairs
        .iter()
        .filter(|p| p.refuted.is_none() && p.impl_node != p.spec_node)
        .collect();
    if !undecided.is_empty() {
        let mut s = span!(tracer, "verify.exact");
        let phases = combined.flatten_phases(options.cube_cap)?;
        for pair in undecided {
            exact_decided += 1;
            let (on_a, off_a) = &phases[pair.impl_node.index()];
            let (on_b, off_b) = &phases[pair.spec_node.index()];
            if on_a.equivalent(on_b) {
                continue;
            }
            // Build a witness: a cube where exactly one side is ON.
            let witness = intersect_covers(on_a, off_b)
                .cubes()
                .first()
                .cloned()
                .or_else(|| intersect_covers(off_a, on_b).cubes().first().cloned());
            let place = witness
                .map(|c| render_cube(&names, &c))
                .unwrap_or_else(|| "unknown input".to_string());
            mismatches.push(format!(
                "output `{}`: impl and spec differ (e.g. under {place})",
                pair.name
            ));
        }
        s.attr("decided", exact_decided as u64);
    }

    mismatches.sort();
    finish_report(
        tracer,
        Report {
            equivalent: mismatches.is_empty(),
            outputs: pairs.len(),
            strash_merged,
            sim_rounds: rounds,
            sim_refuted: refuted,
            exact_decided,
            mismatches,
        },
    )
}

/// Checks an implementation network against a [`TruthTable`]
/// specification with don't-cares: for every output, the implementation
/// must sit between ON ∖ DC and ON ∪ DC. A minterm listed both ON and
/// DC counts as a don't-care — the same convention `minimize` uses (its
/// IRREDUNDANT step may drop any cube inside the DC set). A fully
/// specified table (no `-` outputs) degenerates to plain equivalence.
///
/// # Errors
///
/// As [`check_equivalence_traced`]; the table's input/output names must
/// match the network's.
pub fn check_against_table_traced(
    impl_net: &Network,
    table: &TruthTable,
    options: &Options,
    tracer: &Tracer,
) -> Result<Report, VerifyError> {
    if impl_net.input_names() != table.input_names() {
        return Err(VerifyError::InputMismatch {
            detail: format!(
                "impl inputs [{}] do not match table inputs [{}]",
                impl_net.input_names().join(", "),
                table.input_names().join(", ")
            ),
        });
    }
    let mut spec: Vec<(String, Cover, Cover)> = Vec::new(); // (name, on, dc)
    for (o, name) in table.output_names().iter().enumerate() {
        if !impl_net.outputs().iter().any(|(n, _)| n == name) {
            return Err(VerifyError::InputMismatch {
                detail: format!("table output `{name}` has no impl counterpart"),
            });
        }
        let on = table.on_cover(o).map_err(VerifyError::Logic)?;
        let dc = table.dc_cover(o).map_err(VerifyError::Logic)?;
        spec.push((name.clone(), on, dc));
    }
    if let Some((extra, _)) = impl_net
        .outputs()
        .iter()
        .find(|(n, _)| !table.output_names().contains(n))
    {
        return Err(VerifyError::InputMismatch {
            detail: format!("impl output `{extra}` has no table counterpart"),
        });
    }

    let mut combined = impl_net.clone();
    let strash_merged = {
        let mut s = span!(tracer, "verify.strash");
        let merged = combined.strash();
        s.attr("merged", merged as u64);
        merged
    };

    // Tier 2: word-parallel refutation against the table's covers.
    let mut rng = StdRng::seed_from_u64(options.seed);
    let names: Vec<String> = combined.input_names().to_vec();
    let mut refuted_by: Vec<Option<String>> = vec![None; spec.len()];
    let mut rounds = 0usize;
    let mut refuted = 0usize;
    {
        let mut s = span!(tracer, "verify.sim");
        for round in 0..options.sim_rounds {
            rounds = round + 1;
            let words = input_words(names.len(), round, &mut rng);
            let values = combined.eval64(&words);
            for (i, (name, on, dc)) in spec.iter().enumerate() {
                if refuted_by[i].is_some() {
                    continue;
                }
                let node = combined
                    .outputs()
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, id)| id)
                    .expect("validated above");
                let impl_w = values[node.index()];
                let on_w = eval_cover64(on, &words);
                let dc_w = eval_cover64(dc, &words);
                // Wrong when the spec demands ON (outside DC) and the
                // impl is low, or the impl is high outside ON ∪ DC.
                let bad = (on_w & !dc_w & !impl_w) | (impl_w & !(on_w | dc_w));
                if bad != 0 {
                    let lane = bad.trailing_zeros();
                    refuted_by[i] = Some(format!(
                        "output `{name}`: impl={} spec={} under {}",
                        (impl_w >> lane) & 1,
                        (on_w >> lane) & 1,
                        render_lane(&names, &words, lane)
                    ));
                    refuted += 1;
                }
            }
            if refuted_by.iter().all(|r| r.is_some()) {
                break;
            }
        }
        s.attr("rounds", rounds as u64);
    }
    tracer.add("verify.sim_refuted", refuted as u64);

    // Tier 3: exact containment for outputs simulation could not refute.
    let mut exact_decided = 0usize;
    let mut mismatches: Vec<String> = refuted_by.iter().flatten().cloned().collect();
    if refuted_by.iter().any(|r| r.is_none()) {
        let mut s = span!(tracer, "verify.exact");
        let phases = combined.flatten_phases(options.cube_cap)?;
        for (i, (name, on, dc)) in spec.iter().enumerate() {
            if refuted_by[i].is_some() {
                continue;
            }
            exact_decided += 1;
            let node = combined
                .outputs()
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, id)| id)
                .expect("validated above");
            let (impl_on, impl_off) = &phases[node.index()];
            let required = intersect_covers(on, &complement(dc));
            if !impl_on.covers(&required) {
                let witness = intersect_covers(&required, impl_off)
                    .cubes()
                    .first()
                    .cloned();
                let place = witness
                    .map(|c| render_cube(&names, &c))
                    .unwrap_or_else(|| "unknown input".to_string());
                mismatches.push(format!(
                    "output `{name}`: impl drops required ON-set (e.g. under {place})"
                ));
                continue;
            }
            let mut allowed = on.clone();
            for cube in dc.cubes() {
                allowed.push(cube.clone()).map_err(VerifyError::Logic)?;
            }
            if !allowed.covers(impl_on) {
                let witness = intersect_covers(impl_on, &complement(&allowed))
                    .cubes()
                    .first()
                    .cloned();
                let place = witness
                    .map(|c| render_cube(&names, &c))
                    .unwrap_or_else(|| "unknown input".to_string());
                mismatches.push(format!(
                    "output `{name}`: impl asserts outside ON \u{222a} DC (e.g. under {place})"
                ));
            }
        }
        s.attr("decided", exact_decided as u64);
    }

    mismatches.sort();
    finish_report(
        tracer,
        Report {
            equivalent: mismatches.is_empty(),
            outputs: spec.len(),
            strash_merged,
            sim_rounds: rounds,
            sim_refuted: refuted,
            exact_decided,
            mismatches,
        },
    )
}

fn finish_report(tracer: &Tracer, report: Report) -> Result<Report, VerifyError> {
    tracer.add("verify.outputs", report.outputs as u64);
    tracer.add("verify.strash_merged", report.strash_merged as u64);
    tracer.add("verify.exact_decided", report.exact_decided as u64);
    tracer.add("verify.mismatches", report.mismatches.len() as u64);
    Ok(report)
}

/// Evaluates a cover over 64 packed input vectors (same convention as
/// [`Network::eval64`]).
fn eval_cover64(cover: &Cover, words: &[u64]) -> u64 {
    let mut sum = 0u64;
    for cube in cover.cubes() {
        let mut product = u64::MAX;
        for (i, &lit) in cube.lits().iter().enumerate() {
            product &= match lit {
                Lit::One => words[i],
                Lit::Zero => !words[i],
                Lit::DontCare => u64::MAX,
            };
        }
        sum |= product;
    }
    sum
}

/// Pairwise cube intersection of two covers (the AND of the functions).
fn intersect_covers(a: &Cover, b: &Cover) -> Cover {
    let n = a.num_inputs();
    let cubes = a
        .cubes()
        .iter()
        .flat_map(|x| b.cubes().iter().filter_map(move |y| x.intersect(y)))
        .collect();
    Cover::from_cubes(n, cubes).expect("widths agree")
}

fn complement(cover: &Cover) -> Cover {
    crate::network::complement_cover(cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_logic::TruthTable;

    fn table_network(table: &TruthTable) -> Network {
        let outputs: Vec<(String, Cover)> = table
            .output_names()
            .iter()
            .enumerate()
            .map(|(o, n)| (n.clone(), table.on_cover(o).unwrap()))
            .collect();
        Network::from_covers(table.input_names(), &outputs).unwrap()
    }

    #[test]
    fn identical_tables_are_equivalent() {
        let t =
            TruthTable::parse_pla(".i 3\n.o 2\n.ilb a b c\n.ob f g\n1-0 10\n-11 01\n.e\n").unwrap();
        let net = table_network(&t);
        let r =
            check_equivalence_traced(&net, &net.clone(), &Options::default(), &Tracer::disabled())
                .unwrap();
        assert!(r.equivalent, "{:?}", r.mismatches);
        assert_eq!(r.outputs, 2);
        // Identical cones collapse structurally.
        assert!(r.strash_merged >= 2);
    }

    #[test]
    fn single_cube_mutation_is_refuted() {
        let spec =
            TruthTable::parse_pla(".i 3\n.o 1\n.ilb a b c\n.ob f\n1-0 1\n011 1\n.e\n").unwrap();
        let broken =
            TruthTable::parse_pla(".i 3\n.o 1\n.ilb a b c\n.ob f\n1-0 1\n010 1\n.e\n").unwrap();
        let r = check_equivalence_traced(
            &table_network(&broken),
            &table_network(&spec),
            &Options::default(),
            &Tracer::disabled(),
        )
        .unwrap();
        assert!(!r.equivalent);
        assert_eq!(r.mismatches.len(), 1);
        assert!(
            r.mismatches[0].contains("output `f`"),
            "{}",
            r.mismatches[0]
        );
    }

    #[test]
    fn dont_cares_permit_either_phase() {
        // Spec: f is ON at 11, DC at 10, OFF elsewhere.
        let spec = TruthTable::parse_pla(".i 2\n.o 1\n.ilb a b\n.ob f\n11 1\n10 -\n.e\n").unwrap();
        // Impl 1: f = a·b (DC resolved low).
        let low = Network::from_covers(
            &["a".into(), "b".into()],
            &[(
                "f".into(),
                Cover::from_cubes(2, vec![Cube::parse("11").unwrap()]).unwrap(),
            )],
        )
        .unwrap();
        // Impl 2: f = a (DC resolved high).
        let high = Network::from_covers(
            &["a".into(), "b".into()],
            &[(
                "f".into(),
                Cover::from_cubes(2, vec![Cube::parse("1-").unwrap()]).unwrap(),
            )],
        )
        .unwrap();
        // Impl 3: f = a + b (asserts at 01, outside ON ∪ DC).
        let wrong = Network::from_covers(
            &["a".into(), "b".into()],
            &[(
                "f".into(),
                Cover::from_cubes(
                    2,
                    vec![Cube::parse("1-").unwrap(), Cube::parse("-1").unwrap()],
                )
                .unwrap(),
            )],
        )
        .unwrap();
        let opts = Options::default();
        let t = Tracer::disabled();
        assert!(
            check_against_table_traced(&low, &spec, &opts, &t)
                .unwrap()
                .equivalent
        );
        assert!(
            check_against_table_traced(&high, &spec, &opts, &t)
                .unwrap()
                .equivalent
        );
        let r = check_against_table_traced(&wrong, &spec, &opts, &t).unwrap();
        assert!(!r.equivalent);
        assert!(r.mismatches[0].contains("f"), "{}", r.mismatches[0]);
    }

    #[test]
    fn interface_mismatches_are_errors_not_verdicts() {
        let a = Network::from_covers(
            &["a".into()],
            &[(
                "f".into(),
                Cover::from_cubes(1, vec![Cube::parse("1").unwrap()]).unwrap(),
            )],
        )
        .unwrap();
        let b = Network::from_covers(
            &["b".into()],
            &[(
                "f".into(),
                Cover::from_cubes(1, vec![Cube::parse("1").unwrap()]).unwrap(),
            )],
        )
        .unwrap();
        let err =
            check_equivalence_traced(&a, &b, &Options::default(), &Tracer::disabled()).unwrap_err();
        assert!(matches!(err, VerifyError::InputMismatch { .. }), "{err}");
    }

    #[test]
    fn deep_networks_need_the_exact_tier() {
        // A 8-input parity chain vs its flat two-level form: random
        // simulation alone cannot *prove* these equal; the exact tier
        // must close it. (It can of course refute a mutation.)
        let n = 8usize;
        let xor2 = Cover::from_cubes(
            2,
            vec![Cube::parse("10").unwrap(), Cube::parse("01").unwrap()],
        )
        .unwrap();
        let mut chain = Network::new();
        let inputs: Vec<_> = (0..n).map(|i| chain.add_input(format!("x{i}"))).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = chain.add_cone(vec![acc, x], xor2.clone(), false).unwrap();
        }
        chain.mark_output("p", acc);

        let names: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
        let flat_cover = Cover::from_minterms(
            n,
            &(0..(1u64 << n))
                .filter(|m| m.count_ones() % 2 == 1)
                .collect::<Vec<_>>(),
        );
        let flat = Network::from_covers(&names, &[("p".into(), flat_cover)]).unwrap();

        let r = check_equivalence_traced(&chain, &flat, &Options::default(), &Tracer::disabled())
            .unwrap();
        assert!(r.equivalent, "{:?}", r.mismatches);
        assert_eq!(r.exact_decided, 1);
    }
}
