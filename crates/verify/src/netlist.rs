//! Transistor netlist → cube network: recovers the logic function of a
//! ratioed nMOS netlist by pulldown-path enumeration.
//!
//! The model matches the compiler's cell vocabulary (`silc-pnr` leaf
//! cells, `silc-extract` recovered netlists): a net with a depletion
//! pullup is a *logic node* whose value is the complement of its
//! pulldown network — 1 unless some series path of conducting
//! enhancement transistors reaches `gnd`. Each path contributes one
//! product term (the AND of the gate nets along it); parallel paths sum;
//! the depletion load complements. That is exactly a complemented
//! [`Cover`] cone, so the whole netlist lowers to a [`Network`] and the
//! standard decision engine applies.
//!
//! Primary inputs are nets that only drive gates; `vdd`/`gnd` are
//! recognised by name, matching `silc_extract::switch_level_eval`'s
//! convention. Every pulled-up net becomes an output (extraction
//! preserves net names through place-and-route, so both sides of an
//! LVS-style comparison expose the same names).

use crate::network::{Network, NodeId};
use crate::VerifyError;
use silc_logic::{Cover, Cube, Lit};
use silc_netlist::{NetId, Netlist};
use std::collections::{BTreeMap, HashMap};

/// Power rail names recognised in netlists.
const VDD: &str = "vdd";
const GND: &str = "gnd";

/// Caps the number of pulldown paths enumerated per logic node.
const MAX_PATHS: usize = 4096;

struct Transistor {
    gate: NetId,
    src: NetId,
    drn: NetId,
}

/// Lowers a ratioed nMOS transistor netlist to a cube network.
///
/// # Errors
///
/// * [`VerifyError::Malformed`] — an instance is not an `enh`/`dep`
///   transistor with `gate`/`src`/`drn` pins, a rail is missing, or a
///   depletion load is wired to neither rail convention;
/// * [`VerifyError::Unsupported`] — the logic is cyclic (feedback);
/// * [`VerifyError::TooLarge`] — a pulldown network exceeds the path
///   cap.
pub fn network_from_netlist(netlist: &Netlist) -> Result<Network, VerifyError> {
    let vdd = netlist.net_by_name(VDD);
    let gnd = netlist
        .net_by_name(GND)
        .ok_or_else(|| VerifyError::Malformed {
            detail: format!("netlist `{}` has no `{GND}` net", netlist.name()),
        })?;

    let pin = |inst: &silc_netlist::Instance, port: &str| -> Result<NetId, VerifyError> {
        inst.connections
            .iter()
            .find(|(p, _)| p == port)
            .map(|&(_, id)| id)
            .ok_or_else(|| VerifyError::Malformed {
                detail: format!("instance `{}` has no `{port}` pin", inst.name),
            })
    };

    // Partition devices: enhancement pulldowns vs depletion loads.
    let mut enh: Vec<Transistor> = Vec::new();
    let mut pulled_up: BTreeMap<NetId, String> = BTreeMap::new();
    for inst in netlist.instances() {
        match inst.kind.as_str() {
            "enh" => enh.push(Transistor {
                gate: pin(inst, "gate")?,
                src: pin(inst, "src")?,
                drn: pin(inst, "drn")?,
            }),
            "dep" => {
                // A load connects the output between src/drn, the other
                // terminal on vdd (gate is tied back to the output).
                let src = pin(inst, "src")?;
                let drn = pin(inst, "drn")?;
                let out = if Some(drn) == vdd {
                    src
                } else if Some(src) == vdd {
                    drn
                } else {
                    return Err(VerifyError::Malformed {
                        detail: format!("depletion load `{}` touches no `{VDD}` rail", inst.name),
                    });
                };
                pulled_up.insert(out, netlist.net_name(out).to_string());
            }
            other => {
                return Err(VerifyError::Malformed {
                    detail: format!(
                        "instance `{}` has kind `{other}`, expected a transistor",
                        inst.name
                    ),
                })
            }
        }
    }

    // Adjacency over enhancement channels.
    let mut channels: HashMap<NetId, Vec<usize>> = HashMap::new();
    for (i, t) in enh.iter().enumerate() {
        channels.entry(t.src).or_default().push(i);
        channels.entry(t.drn).or_default().push(i);
    }

    // Primary inputs: nets observed only at gates (never pulled up,
    // never a rail, never in a channel path).
    let mut inputs: Vec<NetId> = Vec::new();
    for net in netlist.nets() {
        let id = netlist
            .net_by_name(&net.name)
            .expect("net names are unique");
        let is_rail = Some(id) == vdd || id == gnd;
        let gates = enh.iter().any(|t| t.gate == id);
        let in_channel = channels.contains_key(&id);
        if gates && !is_rail && !in_channel && !pulled_up.contains_key(&id) {
            inputs.push(id);
        }
    }

    let mut net = Network::new();
    let mut node_of: HashMap<NetId, NodeId> = HashMap::new();
    for &id in &inputs {
        let node = net.add_input(netlist.net_name(id).to_string());
        node_of.insert(id, node);
    }

    // Build cones bottom-up with an explicit visit stack for cycle
    // detection.
    let mut in_progress: Vec<NetId> = Vec::new();
    let outputs: Vec<NetId> = pulled_up.keys().copied().collect();
    for &out in &outputs {
        build_node(
            out,
            netlist,
            &enh,
            &channels,
            gnd,
            vdd,
            &pulled_up,
            &mut net,
            &mut node_of,
            &mut in_progress,
        )?;
    }
    for &out in &outputs {
        net.mark_output(netlist.net_name(out).to_string(), node_of[&out]);
    }
    Ok(net)
}

/// One enumerated pulldown path: the gate nets in series along it.
type Path = Vec<NetId>;

#[allow(clippy::too_many_arguments)]
fn build_node(
    target: NetId,
    netlist: &Netlist,
    enh: &[Transistor],
    channels: &HashMap<NetId, Vec<usize>>,
    gnd: NetId,
    vdd: Option<NetId>,
    pulled_up: &BTreeMap<NetId, String>,
    net: &mut Network,
    node_of: &mut HashMap<NetId, NodeId>,
    in_progress: &mut Vec<NetId>,
) -> Result<NodeId, VerifyError> {
    if let Some(&id) = node_of.get(&target) {
        return Ok(id);
    }
    if in_progress.contains(&target) {
        return Err(VerifyError::Unsupported {
            detail: format!(
                "combinational cycle through net `{}`",
                netlist.net_name(target)
            ),
        });
    }
    in_progress.push(target);

    // Enumerate series paths from the output to gnd.
    let mut paths: Vec<Path> = Vec::new();
    let mut visited: Vec<NetId> = vec![target];
    walk_paths(
        target,
        gnd,
        vdd,
        enh,
        channels,
        &mut visited,
        &mut Vec::new(),
        &mut vec![false; enh.len()],
        &mut paths,
    )?;

    // Distinct gate nets, stable order of first appearance, become the
    // cone's fanins; gates tied to rails fold into constants.
    let mut fanin_nets: Vec<NetId> = Vec::new();
    for path in &paths {
        for &g in path {
            if !fanin_nets.contains(&g) {
                fanin_nets.push(g);
            }
        }
    }
    let mut fanins: Vec<NodeId> = Vec::with_capacity(fanin_nets.len());
    for &g in &fanin_nets {
        let id = if pulled_up.contains_key(&g) {
            build_node(
                g,
                netlist,
                enh,
                channels,
                gnd,
                vdd,
                pulled_up,
                net,
                node_of,
                in_progress,
            )?
        } else {
            node_of
                .get(&g)
                .copied()
                .ok_or_else(|| VerifyError::Malformed {
                    detail: format!(
                        "net `{}` drives a gate but is neither an input nor a logic node",
                        netlist.net_name(g)
                    ),
                })?
        };
        fanins.push(id);
    }

    let width = fanin_nets.len();
    let mut cubes: Vec<Cube> = Vec::new();
    for path in &paths {
        let mut cube = Cube::universe(width);
        for &g in path {
            let pos = fanin_nets.iter().position(|&f| f == g).expect("collected");
            cube = cube.with_lit(pos, Lit::One);
        }
        cubes.push(cube);
    }
    let mut cover = Cover::from_cubes(width, cubes).map_err(|e| VerifyError::Malformed {
        detail: e.to_string(),
    })?;
    cover.remove_single_cube_contained();
    // value = NOT (some path conducts): the depletion load wins only
    // when the pulldown network is open.
    let id = net.add_cone(fanins, cover, true)?;

    in_progress.pop();
    node_of.insert(target, id);
    Ok(id)
}

/// Depth-first series-path enumeration from `from` toward `gnd` over
/// enhancement channels. `gates` accumulates the gate nets of the
/// devices along the current path; a gate tied to `vdd` is always
/// conducting (dropped from the product), one tied to `gnd` kills the
/// path.
#[allow(clippy::too_many_arguments)]
fn walk_paths(
    from: NetId,
    gnd: NetId,
    vdd: Option<NetId>,
    enh: &[Transistor],
    channels: &HashMap<NetId, Vec<usize>>,
    visited: &mut Vec<NetId>,
    gates: &mut Vec<NetId>,
    used: &mut Vec<bool>,
    paths: &mut Vec<Path>,
) -> Result<(), VerifyError> {
    if from == gnd {
        paths.push(gates.clone());
        if paths.len() > MAX_PATHS {
            return Err(VerifyError::TooLarge {
                cubes: paths.len(),
                cap: MAX_PATHS,
            });
        }
        return Ok(());
    }
    let Some(device_ids) = channels.get(&from) else {
        return Ok(());
    };
    for &d in device_ids {
        if used[d] {
            continue;
        }
        let t = &enh[d];
        let next = if t.src == from { t.drn } else { t.src };
        if Some(next) == vdd || (next != gnd && visited.contains(&next)) {
            continue;
        }
        if t.gate == gnd {
            continue; // never conducts
        }
        used[d] = true;
        let pushed_gate = Some(t.gate) != vdd; // vdd gate: always on
        if pushed_gate {
            gates.push(t.gate);
        }
        visited.push(next);
        walk_paths(next, gnd, vdd, enh, channels, visited, gates, used, paths)?;
        visited.pop();
        if pushed_gate {
            gates.pop();
        }
        used[d] = false;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_equivalence_traced, Options};
    use silc_trace::Tracer;

    fn inverter() -> Netlist {
        let mut n = Netlist::new("inv");
        let (inn, out) = (n.add_net("in"), n.add_net("out"));
        let (vdd, gnd) = (n.add_net("vdd"), n.add_net("gnd"));
        n.add_instance("pu", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();
        n.add_instance("pd", "enh", &[("gate", inn), ("src", gnd), ("drn", out)])
            .unwrap();
        n
    }

    #[test]
    fn inverter_recovers_not() {
        let net = network_from_netlist(&inverter()).unwrap();
        assert_eq!(net.input_names(), ["in"]);
        assert_eq!(net.outputs().len(), 1);
        let v = net.eval64(&[0b10]);
        let out = v[net.outputs()[0].1.index()];
        assert_eq!(out & 0b11, 0b01);
    }

    #[test]
    fn nor2_and_series_nand() {
        // NOR: two parallel pulldowns. NAND: two in series.
        let mut n = Netlist::new("gates");
        let a = n.add_net("a");
        let b = n.add_net("b");
        let nor = n.add_net("nor");
        let nand = n.add_net("nand");
        let mid = n.add_net("mid");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("l1", "dep", &[("gate", nor), ("src", nor), ("drn", vdd)])
            .unwrap();
        n.add_instance("p1", "enh", &[("gate", a), ("src", gnd), ("drn", nor)])
            .unwrap();
        n.add_instance("p2", "enh", &[("gate", b), ("src", gnd), ("drn", nor)])
            .unwrap();
        n.add_instance("l2", "dep", &[("gate", nand), ("src", nand), ("drn", vdd)])
            .unwrap();
        n.add_instance("s1", "enh", &[("gate", a), ("src", mid), ("drn", nand)])
            .unwrap();
        n.add_instance("s2", "enh", &[("gate", b), ("src", gnd), ("drn", mid)])
            .unwrap();
        let net = network_from_netlist(&n).unwrap();
        // Truth check against the switch-level oracle on all 4 patterns.
        for m in 0..4u64 {
            let a_v = m & 2 != 0;
            let b_v = m & 1 != 0;
            let levels =
                silc_extract::switch_level_eval(&n, &[("a", a_v), ("b", b_v)], "vdd", "gnd")
                    .unwrap();
            let words: Vec<u64> = net
                .input_names()
                .iter()
                .map(|name| {
                    let v = if name == "a" { a_v } else { b_v };
                    if v {
                        1
                    } else {
                        0
                    }
                })
                .collect();
            let values = net.eval64(&words);
            for (name, id) in net.outputs() {
                let got = values[id.index()] & 1 == 1;
                let want = levels[name].as_bool().unwrap();
                assert_eq!(got, want, "net {name} at a={a_v} b={b_v}");
            }
        }
    }

    #[test]
    fn chained_gates_build_multilevel_cones() {
        // inv(a) feeding a NOR with b: out = !(!a + b) = a·!b.
        let mut n = Netlist::new("chain");
        let a = n.add_net("a");
        let b = n.add_net("b");
        let na = n.add_net("na");
        let out = n.add_net("out");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("l1", "dep", &[("gate", na), ("src", na), ("drn", vdd)])
            .unwrap();
        n.add_instance("t1", "enh", &[("gate", a), ("src", gnd), ("drn", na)])
            .unwrap();
        n.add_instance("l2", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();
        n.add_instance("t2", "enh", &[("gate", na), ("src", gnd), ("drn", out)])
            .unwrap();
        n.add_instance("t3", "enh", &[("gate", b), ("src", gnd), ("drn", out)])
            .unwrap();
        let net = network_from_netlist(&n).unwrap();
        for m in 0..4u64 {
            let a_v = m & 2 != 0;
            let b_v = m & 1 != 0;
            let words: Vec<u64> = net
                .input_names()
                .iter()
                .map(|name| u64::from(if name == "a" { a_v } else { b_v }))
                .collect();
            let values = net.eval64(&words);
            let (_, id) = net.outputs().iter().find(|(nm, _)| nm == "out").unwrap();
            assert_eq!(values[id.index()] & 1 == 1, a_v && !b_v, "a={a_v} b={b_v}");
        }
    }

    #[test]
    fn netlist_vs_itself_is_equivalent() {
        let net = network_from_netlist(&inverter()).unwrap();
        let r =
            check_equivalence_traced(&net, &net.clone(), &Options::default(), &Tracer::disabled())
                .unwrap();
        assert!(r.equivalent);
    }

    #[test]
    fn mutated_netlist_is_refuted() {
        // Reference inverter vs a "stuck" variant whose pulldown gate is
        // wired to gnd (output stuck at 1).
        let spec = network_from_netlist(&inverter()).unwrap();
        let mut broken = Netlist::new("inv");
        let inn = broken.add_net("in");
        let out = broken.add_net("out");
        let vdd = broken.add_net("vdd");
        let gnd = broken.add_net("gnd");
        broken
            .add_instance("pu", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();
        broken
            .add_instance("pd", "enh", &[("gate", gnd), ("src", gnd), ("drn", out)])
            .unwrap();
        // `in` no longer drives any gate: interfaces differ, which is
        // itself a detected mismatch (an error, not a false pass).
        let _ = inn;
        let got = network_from_netlist(&broken).unwrap();
        let err = check_equivalence_traced(&got, &spec, &Options::default(), &Tracer::disabled())
            .unwrap_err();
        assert!(matches!(err, VerifyError::InputMismatch { .. }));
    }

    #[test]
    fn non_transistor_kind_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_net("a");
        let gnd = n.add_net("gnd");
        n.add_instance("g", "nand2", &[("a", a), ("y", gnd)])
            .unwrap();
        let err = network_from_netlist(&n).unwrap_err();
        assert!(matches!(err, VerifyError::Malformed { .. }), "{err}");
    }
}
