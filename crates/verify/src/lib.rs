//! `silc-verify`: combinational/sequential equivalence checking over
//! `silc-logic` cubes.
//!
//! The paper's trust argument — that a silicon compiler may go from
//! description to mask geometry without per-chip manual checking —
//! holds only if each translation instance can be *checked*. This crate
//! is that check: it lowers any two design representations the compiler
//! handles (minimized PLA personalities, synthesized control stores,
//! transistor netlists recovered by extraction) to one common form, the
//! cube [`Network`], and decides functional equivalence with a
//! three-tier engine (see [`check`]):
//!
//! 1. structural hashing merges identical subcones,
//! 2. 64-lane bit-packed random simulation refutes fast and yields
//!    concrete counterexamples,
//! 3. exact cube-cover containment — the same `cofactor`-until-tautology
//!    calculus that drives `minimize` — proves the survivors.
//!
//! No SAT solver, no new dependencies. Sequential equivalence of a
//! synthesized machine reduces to combinational equivalence of its
//! control store under the state-register correspondence: the
//! next-state and control outputs are checked as functions of (state
//! code, conditions), which is exactly what `silc_synth::control_table`
//! exposes.
//!
//! The three production checks (synth-vs-RTL, minimize-vs-table,
//! pnr-extract-back-vs-netlist) are wired and memoized in `silc-incr`
//! as `Stage::VERIFY`; this crate stays policy-free.
//!
//! # Example
//!
//! ```
//! use silc_logic::TruthTable;
//! use silc_trace::Tracer;
//! use silc_verify::{check_against_table_traced, Network, Options};
//!
//! let table = TruthTable::parse_pla(
//!     ".i 2\n.o 1\n.ilb a b\n.ob f\n11 1\n10 -\n.e\n",
//! )?;
//! // An implementation that resolves the don't-care high: f = a.
//! let on = table.on_cover(0)?; // build any cover you like
//! # let _ = on;
//! let f = silc_logic::Cover::from_cubes(2, vec![silc_logic::Cube::parse("1-")?])?;
//! let net = Network::from_covers(
//!     &["a".into(), "b".into()],
//!     &[("f".into(), f)],
//! )?;
//! let report = check_against_table_traced(&net, &table, &Options::default(), &Tracer::disabled())?;
//! assert!(report.equivalent);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod check;
mod netlist;
mod network;

pub use check::{check_against_table_traced, check_equivalence_traced, Options};
pub use netlist::network_from_netlist;
pub use network::{Network, NodeId};

use std::error::Error;
use std::fmt;

/// Error produced while building networks or deciding equivalence.
///
/// An *inequivalence verdict is not an error* — it is reported in
/// [`Report::mismatches`]. Errors mean the question itself was
/// malformed or too large to decide.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The two sides do not expose the same input/output interface.
    InputMismatch {
        /// What differs.
        detail: String,
    },
    /// A network, cone or netlist was structurally invalid.
    Malformed {
        /// What is wrong.
        detail: String,
    },
    /// The construct is beyond the checker's model (e.g. feedback).
    Unsupported {
        /// What is unsupported.
        detail: String,
    },
    /// Exact flattening or path enumeration exceeded its size cap.
    TooLarge {
        /// Size reached.
        cubes: usize,
        /// The configured cap.
        cap: usize,
    },
    /// An underlying cube-calculus operation failed.
    Logic(silc_logic::LogicError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::InputMismatch { detail } => {
                write!(f, "interface mismatch: {detail}")
            }
            VerifyError::Malformed { detail } => write!(f, "malformed network: {detail}"),
            VerifyError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
            VerifyError::TooLarge { cubes, cap } => {
                write!(f, "exact check too large: {cubes} cubes exceeds cap {cap}")
            }
            VerifyError::Logic(e) => write!(f, "logic error: {e}"),
        }
    }
}

impl Error for VerifyError {}

impl From<silc_logic::LogicError> for VerifyError {
    fn from(e: silc_logic::LogicError) -> VerifyError {
        VerifyError::Logic(e)
    }
}

/// The outcome of one equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// True when every output pair was proven equivalent.
    pub equivalent: bool,
    /// Output pairs examined.
    pub outputs: usize,
    /// Nodes merged by structural hashing.
    pub strash_merged: usize,
    /// Simulation rounds actually run.
    pub sim_rounds: usize,
    /// Output pairs refuted by simulation (each with a counterexample).
    pub sim_refuted: usize,
    /// Output pairs that needed the exact cover-containment tier.
    pub exact_decided: usize,
    /// Human-readable mismatch descriptions, sorted; empty iff
    /// [`Report::equivalent`].
    pub mismatches: Vec<String>,
}

impl Report {
    /// One-line summary, e.g.
    /// `equivalent: 4 outputs (2 strash-merged, 1 exact)`.
    pub fn summary(&self) -> String {
        let verdict = if self.equivalent {
            "equivalent"
        } else {
            "NOT equivalent"
        };
        format!(
            "{verdict}: {} outputs ({} strash-merged, {} sim-refuted, {} exact, {} rounds)",
            self.outputs, self.strash_merged, self.sim_refuted, self.exact_decided, self.sim_rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VerifyError>();
        assert_send_sync::<Report>();
    }

    #[test]
    fn summary_mentions_verdict() {
        let r = Report {
            equivalent: false,
            outputs: 3,
            strash_merged: 1,
            sim_rounds: 2,
            sim_refuted: 1,
            exact_decided: 0,
            mismatches: vec!["output `f`: differs".into()],
        };
        assert!(r.summary().contains("NOT equivalent"));
        assert!(r.summary().contains("3 outputs"));
    }
}
