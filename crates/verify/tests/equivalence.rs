//! Oracle-checked equivalence verdicts.
//!
//! Every verdict the checker returns is compared against brute-force
//! minterm enumeration (the widths here are small enough to sweep):
//! random (truth table → minimize) pairs and (RTL → synthesized control
//! store) pairs must verify as equivalent, and seeded single-cube /
//! single-literal mutations must produce exactly the verdict the
//! enumeration oracle gives — zero false passes, zero false fails, in
//! either direction.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc_logic::{Cover, Cube, Lit, OutBit, TruthTable};
use silc_pla::{Minimize, PlaSpec};
use silc_trace::Tracer;
use silc_verify::{check_against_table_traced, Network, Options};

/// A random truth table with don't-care outputs.
fn random_table(rng: &mut StdRng, ni: usize, no: usize) -> TruthTable {
    let mut t = TruthTable::new(ni, no);
    let rows = rng.gen_range(1..7usize);
    for _ in 0..rows {
        let lits: Vec<Lit> = (0..ni)
            .map(|_| match rng.gen_range(0..3u32) {
                0 => Lit::Zero,
                1 => Lit::One,
                _ => Lit::DontCare,
            })
            .collect();
        let outs: Vec<OutBit> = (0..no)
            .map(|_| match rng.gen_range(0..4u32) {
                0 | 1 => OutBit::On,
                2 => OutBit::Off,
                _ => OutBit::DontCare,
            })
            .collect();
        t.push_row(Cube::from_lits(lits), outs).unwrap();
    }
    t
}

/// `spec`'s realized output covers, with constant-0 outputs widened
/// from the width-0 covers `FromIterator` hands back.
fn realized_covers(spec: &PlaSpec) -> Vec<Cover> {
    (0..spec.num_outputs())
        .map(|o| {
            let c = spec.output_cover(o);
            if c.is_empty() {
                Cover::empty(spec.num_inputs())
            } else {
                c
            }
        })
        .collect()
}

/// The network realizing `spec`'s output covers (a flat PLA).
fn realized_network(spec: &PlaSpec) -> Network {
    let outputs: Vec<(String, Cover)> = spec
        .output_names()
        .iter()
        .cloned()
        .zip(realized_covers(spec))
        .collect();
    Network::from_covers(spec.input_names(), &outputs).unwrap()
}

/// Brute-force oracle: does `impl_covers` satisfy `table` on every
/// minterm? DC wins over ON on overlap, matching `minimize`'s
/// convention (IRREDUNDANT may drop any cube inside the DC set).
fn oracle_ok(table: &TruthTable, impl_covers: &[Cover]) -> bool {
    let ni = table.num_inputs();
    for m in 0..(1u64 << ni) {
        for (o, cover) in impl_covers.iter().enumerate() {
            let got = cover.eval(m);
            if table.dc_cover(o).unwrap().eval(m) {
                continue;
            }
            let want = table.on_cover(o).unwrap().eval(m);
            if want != got {
                return false;
            }
        }
    }
    true
}

/// Flips one literal / drops one cube / adds one random cube in one
/// output cover — a seeded "silent synthesis bug".
fn mutate(rng: &mut StdRng, covers: &mut [Cover]) {
    let ni = covers[0].num_inputs();
    let o = rng.gen_range(0..covers.len());
    let cover = &mut covers[o];
    match rng.gen_range(0..3u32) {
        0 if !cover.is_empty() => {
            // Flip a literal in one cube.
            let ci = rng.gen_range(0..cover.len());
            let pos = rng.gen_range(0..ni);
            let cube = cover.cubes()[ci].clone();
            let new_lit = match cube.lit(pos) {
                Lit::One => Lit::Zero,
                Lit::Zero => Lit::DontCare,
                Lit::DontCare => Lit::One,
            };
            let mut cubes: Vec<Cube> = cover.cubes().to_vec();
            cubes[ci] = cube.with_lit(pos, new_lit);
            *cover = Cover::from_cubes(ni, cubes).unwrap();
        }
        1 if cover.len() > 1 => {
            // Drop a cube.
            let ci = rng.gen_range(0..cover.len());
            let mut cubes: Vec<Cube> = cover.cubes().to_vec();
            cubes.remove(ci);
            *cover = Cover::from_cubes(ni, cubes).unwrap();
        }
        _ => {
            // Add a random cube.
            let lits: Vec<Lit> = (0..ni)
                .map(|_| match rng.gen_range(0..3u32) {
                    0 => Lit::Zero,
                    1 => Lit::One,
                    _ => Lit::DontCare,
                })
                .collect();
            let mut cubes: Vec<Cube> = cover.cubes().to_vec();
            cubes.push(Cube::from_lits(lits));
            *cover = Cover::from_cubes(ni, cubes).unwrap();
        }
    }
}

fn check_table_pair(seed: u64) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ni = rng.gen_range(2..6usize);
    let no = rng.gen_range(1..4usize);
    let table = random_table(&mut rng, ni, no);
    let tracer = Tracer::disabled();
    let opts = Options::default();

    for mode in [Minimize::Exact, Minimize::Heuristic, Minimize::None] {
        let spec = PlaSpec::from_truth_table(&table, mode).unwrap();
        let net = realized_network(&spec);
        let report = check_against_table_traced(&net, &table, &opts, &tracer).unwrap();
        prop_assert!(
            report.equivalent,
            "false fail ({mode:?}): {:?}",
            report.mismatches
        );
    }

    // A seeded mutation must get exactly the oracle's verdict.
    let spec = PlaSpec::from_truth_table(&table, Minimize::Heuristic).unwrap();
    let mut covers = realized_covers(&spec);
    mutate(&mut rng, &mut covers);
    let outputs: Vec<(String, Cover)> = table
        .output_names()
        .iter()
        .cloned()
        .zip(covers.iter().cloned())
        .collect();
    let net = Network::from_covers(table.input_names(), &outputs).unwrap();
    let report = check_against_table_traced(&net, &table, &opts, &tracer).unwrap();
    let want = oracle_ok(&table, &covers);
    prop_assert_eq!(
        report.equivalent,
        want,
        "verdict disagrees with brute force: {:?}",
        report.mismatches
    );
    Ok(())
}

/// A small random-but-valid ISL machine.
fn random_machine_source(rng: &mut StdRng) -> String {
    let n_states = rng.gen_range(2..5usize);
    let n_regs = rng.gen_range(1..3usize);
    let mut src = String::from("machine m {\n");
    for r in 0..n_regs {
        src.push_str(&format!("  reg r{r}[{}];\n", rng.gen_range(2..5u32)));
    }
    for s in 0..n_states {
        src.push_str(&format!("  state s{s} {{\n"));
        let assign = |rng: &mut StdRng| {
            let r = rng.gen_range(0..n_regs);
            match rng.gen_range(0..3u32) {
                0 => format!("r{r} := r{r} + 1;"),
                1 => format!("r{r} := r{r} ^ r{};", rng.gen_range(0..n_regs)),
                _ => format!("r{r} := {};", rng.gen_range(0..4u32)),
            }
        };
        if rng.gen_bool(0.7) {
            let c = rng.gen_range(0..n_regs);
            let k = rng.gen_range(0..4u32);
            src.push_str(&format!("    if r{c} == {k} {{\n"));
            src.push_str(&format!("      {}\n", assign(rng)));
            src.push_str(&format!("      goto s{};\n", rng.gen_range(0..n_states)));
            src.push_str("    } else {\n");
            if rng.gen_bool(0.3) {
                src.push_str("      halt;\n");
            } else {
                src.push_str(&format!("      goto s{};\n", rng.gen_range(0..n_states)));
            }
            src.push_str("    }\n");
        } else {
            src.push_str(&format!("    {}\n", assign(rng)));
            src.push_str(&format!("    goto s{};\n", rng.gen_range(0..n_states)));
        }
        src.push_str("  }\n");
    }
    src.push('}');
    src
}

fn check_control_pair(seed: u64) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let source = random_machine_source(&mut rng);
    let machine = silc_rtl::parse(&source).unwrap_or_else(|e| panic!("{e}\n{source}"));
    let control = silc_synth::control_table(&machine);
    let table = &control.table;
    let tracer = Tracer::disabled();
    let opts = Options::default();

    // The minimized control store must verify against the exact table.
    let spec = PlaSpec::from_truth_table(table, Minimize::Heuristic).unwrap();
    let net = realized_network(&spec);
    let report = check_against_table_traced(&net, table, &opts, &tracer).unwrap();
    prop_assert!(
        report.equivalent,
        "false fail on control store of:\n{source}\n{:?}",
        report.mismatches
    );

    // And a mutated control store must match the oracle's verdict.
    let mut covers = realized_covers(&spec);
    mutate(&mut rng, &mut covers);
    let outputs: Vec<(String, Cover)> = table
        .output_names()
        .iter()
        .cloned()
        .zip(covers.iter().cloned())
        .collect();
    let net = Network::from_covers(table.input_names(), &outputs).unwrap();
    let report = check_against_table_traced(&net, table, &opts, &tracer).unwrap();
    let want = oracle_ok(table, &covers);
    prop_assert_eq!(
        report.equivalent,
        want,
        "control verdict disagrees with brute force on:\n{}\n{:?}",
        source,
        report.mismatches
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// (truth table → minimize) pairs verify; mutations match the
    /// brute-force oracle exactly.
    #[test]
    fn minimized_tables_verify_and_mutations_are_caught(seed in 0u64..u64::MAX) {
        check_table_pair(seed)?;
    }

    /// (RTL → synthesized control store) pairs verify; mutations match
    /// the brute-force oracle exactly.
    #[test]
    fn control_stores_verify_and_mutations_are_caught(seed in 0u64..u64::MAX) {
        check_control_pair(seed)?;
    }
}
