//! # silc-netlist — structural descriptions
//!
//! The paper names three descriptions key to hardware design: structural,
//! behavioral and physical. This crate is the **structural** one: a
//! [`Netlist`] of module instances wired together by nets.
//!
//! The behavioral compiler (`silc-synth`) emits netlists; the layout
//! extractor (`silc-extract`) recovers netlists from mask geometry; and
//! [`Netlist::isomorphic_signature`] lets the two be compared (LVS), which
//! closes the loop between the physical and structural hierarchies that
//! the Mead–Conway style tries to keep unified.
//!
//! # Example
//!
//! ```
//! use silc_netlist::Netlist;
//!
//! let mut n = Netlist::new("latch");
//! let d = n.add_net("d");
//! let q = n.add_net("q");
//! let clk = n.add_net("clk");
//! n.add_instance("pass0", "pass", &[("gate", clk), ("src", d), ("drn", q)])?;
//! assert_eq!(n.instances().len(), 1);
//! assert_eq!(n.fanout(clk), 1);
//! # Ok::<(), silc_netlist::NetlistError>(())
//! ```

use silc_geom::{Fingerprint, FpHasher};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Opaque handle to a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(u32);

impl NetId {
    /// Raw index (stable within one netlist).
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// Opaque handle to an instance within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(u32);

impl InstanceId {
    /// Raw index (stable within one netlist).
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// A wired instance of some module kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// The module kind (e.g. `"nand2"`, `"register"`, `"enh"`), opaque to
    /// this crate.
    pub kind: String,
    /// Port-to-net bindings, in declaration order.
    pub connections: Vec<(String, NetId)>,
}

/// A net (electrical node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name, unique within the netlist.
    pub name: String,
}

/// Error produced by netlist construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// An instance or net name was reused.
    DuplicateName {
        /// The colliding name.
        name: String,
    },
    /// A connection referenced a net id from another netlist.
    UnknownNet {
        /// The dangling id.
        id: NetId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { name } => write!(f, "name `{name}` already used"),
            NetlistError::UnknownNet { id } => write!(f, "unknown net id {}", id.raw()),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat structural netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    instances: Vec<Instance>,
    net_names: HashMap<String, NetId>,
    instance_names: HashMap<String, InstanceId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a net; if the name exists, returns the existing id (nets are
    /// merge-by-name, the convenient behaviour for generators).
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(&id) = self.net_names.get(&name) {
            return id;
        }
        let id = NetId(self.nets.len() as u32);
        self.net_names.insert(name.clone(), id);
        self.nets.push(Net { name });
        id
    }

    /// Adds an instance with its port bindings.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DuplicateName`] when the instance name is taken.
    /// * [`NetlistError::UnknownNet`] when a binding references a foreign
    ///   net id.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        kind: impl Into<String>,
        connections: &[(&str, NetId)],
    ) -> Result<InstanceId, NetlistError> {
        let name = name.into();
        if self.instance_names.contains_key(&name) {
            return Err(NetlistError::DuplicateName { name });
        }
        for &(_, net) in connections {
            if net.raw() as usize >= self.nets.len() {
                return Err(NetlistError::UnknownNet { id: net });
            }
        }
        let id = InstanceId(self.instances.len() as u32);
        self.instance_names.insert(name.clone(), id);
        self.instances.push(Instance {
            name,
            kind: kind.into(),
            connections: connections
                .iter()
                .map(|&(p, n)| (p.to_string(), n))
                .collect(),
        });
        Ok(id)
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Looks up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Looks up an instance by name.
    pub fn instance_by_name(&self, name: &str) -> Option<InstanceId> {
        self.instance_names.get(name).copied()
    }

    /// The net's name.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.nets[id.raw() as usize].name
    }

    /// Number of instance pins attached to `net`.
    pub fn fanout(&self, net: NetId) -> usize {
        self.instances
            .iter()
            .flat_map(|i| &i.connections)
            .filter(|(_, n)| *n == net)
            .count()
    }

    /// Instance count per kind, sorted by kind name — the "module count"
    /// measure of experiment E1.
    pub fn kind_histogram(&self) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for i in &self.instances {
            *h.entry(i.kind.clone()).or_insert(0) += 1;
        }
        h
    }

    /// A canonical signature for structural comparison (LVS-lite): labels
    /// nets and instances by iterated neighbourhood refinement **to a
    /// fixpoint** and returns the sorted multiset of instance labels. Two
    /// netlists with equal signatures are structurally identical up to
    /// renaming for all practical layouts (the refinement is not a
    /// complete isomorphism test, but distinguishes everything the
    /// extractor produces, including long chains whose ends a
    /// fixed-round refinement cannot see).
    pub fn isomorphic_signature(&self) -> Vec<String> {
        self.refined_signature(None)
    }

    /// Label refinement driving [`isomorphic_signature`]. Each round
    /// relabels instances from their nets' labels and nets from their
    /// instances' labels, chaining the previous label so classes only
    /// ever split; labels are compressed to fixed-size content hashes so
    /// round cost stays linear. With `rounds: None` refinement runs until
    /// the partition stops splitting (at most `nets + instances` rounds);
    /// `Some(k)` stops after exactly `k` rounds (used by tests to pin the
    /// shallow-refinement failure mode).
    ///
    /// [`isomorphic_signature`]: Netlist::isomorphic_signature
    fn refined_signature(&self, rounds: Option<usize>) -> Vec<String> {
        fn compress(raw: &str) -> String {
            let mut h = FpHasher::new();
            h.write_str(raw);
            h.finish().to_hex()
        }
        fn class_count(labels: &[String]) -> usize {
            labels.iter().collect::<HashSet<_>>().len()
        }
        // Initial net labels: sorted multiset of (kind, port) pins.
        let mut net_labels: Vec<String> = vec![String::new(); self.nets.len()];
        for (ni, label) in net_labels.iter_mut().enumerate() {
            let mut pins: Vec<String> = self
                .instances
                .iter()
                .flat_map(|inst| {
                    inst.connections
                        .iter()
                        .filter(|(_, n)| n.raw() as usize == ni)
                        .map(|(p, _)| format!("{}:{}", inst.kind, p))
                })
                .collect();
            pins.sort();
            *label = compress(&pins.join(","));
        }
        let max_rounds = rounds.unwrap_or(self.nets.len() + self.instances.len() + 1);
        let mut inst_labels: Vec<String> = vec![String::new(); self.instances.len()];
        let mut prev_classes = 0;
        for _ in 0..max_rounds {
            for (ii, inst) in self.instances.iter().enumerate() {
                let mut parts: Vec<String> = inst
                    .connections
                    .iter()
                    .map(|(p, n)| format!("{p}={}", net_labels[n.raw() as usize]))
                    .collect();
                parts.sort();
                let raw = format!("{}|{}({})", inst_labels[ii], inst.kind, parts.join(";"));
                inst_labels[ii] = compress(&raw);
            }
            let mut next_nets = net_labels.clone();
            for (ni, label) in next_nets.iter_mut().enumerate() {
                let mut pins: Vec<String> = Vec::new();
                for (ii, inst) in self.instances.iter().enumerate() {
                    for (p, n) in &inst.connections {
                        if n.raw() as usize == ni {
                            pins.push(format!("{}@{}", p, inst_labels[ii]));
                        }
                    }
                }
                pins.sort();
                *label = compress(&format!("{}|{}", net_labels[ni], pins.join(",")));
            }
            net_labels = next_nets;
            if rounds.is_none() {
                // Chained labels mean classes only split; an unchanged
                // count is therefore a stable partition, and a stable
                // round can never be followed by a splitting one.
                let classes = class_count(&inst_labels) + class_count(&net_labels);
                if classes == prev_classes {
                    break;
                }
                prev_classes = classes;
            }
        }
        inst_labels.sort();
        inst_labels
    }

    /// Structural equality up to renaming, via
    /// [`isomorphic_signature`](Netlist::isomorphic_signature).
    pub fn structurally_matches(&self, other: &Netlist) -> bool {
        self.instances.len() == other.instances.len()
            && self.nets_with_pins() == other.nets_with_pins()
            && self.isomorphic_signature() == other.isomorphic_signature()
    }

    fn nets_with_pins(&self) -> usize {
        (0..self.nets.len())
            .filter(|&ni| self.fanout(NetId(ni as u32)) > 0)
            .count()
    }
}

impl Fingerprint for Netlist {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.name);
        h.write_len(self.nets.len());
        for net in &self.nets {
            h.write_str(&net.name);
        }
        h.write_len(self.instances.len());
        for inst in &self.instances {
            h.write_str(&inst.name);
            h.write_str(&inst.kind);
            h.write_len(inst.connections.len());
            for (port, net) in &inst.connections {
                h.write_str(port);
                h.write_u32(net.raw());
            }
        }
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist {} ({} instances, {} nets)",
            self.name,
            self.instances.len(),
            self.nets.len()
        )?;
        for inst in &self.instances {
            write!(f, "  {} {}(", inst.name, inst.kind)?;
            for (i, (p, n)) in inst.connections.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}={}", self.net_name(*n))?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter_pair(names: [&str; 4]) -> Netlist {
        // Two chained inverters built from pull-up/pull-down pairs.
        let mut n = Netlist::new("buf");
        let a = n.add_net(names[0]);
        let mid = n.add_net(names[1]);
        let q = n.add_net(names[2]);
        let vdd = n.add_net(names[3]);
        n.add_instance("pu1", "pullup", &[("out", mid), ("vdd", vdd)])
            .unwrap();
        n.add_instance("pd1", "enh", &[("gate", a), ("drn", mid)])
            .unwrap();
        n.add_instance("pu2", "pullup", &[("out", q), ("vdd", vdd)])
            .unwrap();
        n.add_instance("pd2", "enh", &[("gate", mid), ("drn", q)])
            .unwrap();
        n
    }

    #[test]
    fn nets_merge_by_name() {
        let mut n = Netlist::new("t");
        let a = n.add_net("a");
        let a2 = n.add_net("a");
        assert_eq!(a, a2);
        assert_eq!(n.nets().len(), 1);
    }

    #[test]
    fn duplicate_instance_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_net("a");
        n.add_instance("i1", "inv", &[("in", a)]).unwrap();
        assert!(matches!(
            n.add_instance("i1", "inv", &[("in", a)]),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn foreign_net_rejected() {
        let mut other = Netlist::new("other");
        let foreign = other.add_net("x");
        let _ = foreign;
        let mut n = Netlist::new("t");
        // NetId from `other` with raw index 0 is valid here only if n has
        // a net; n has none.
        assert!(matches!(
            n.add_instance("i", "inv", &[("in", foreign)]),
            Err(NetlistError::UnknownNet { .. })
        ));
    }

    #[test]
    fn fanout_counts_pins() {
        let n = inverter_pair(["a", "mid", "q", "vdd"]);
        // mid carries pu1.out, pd1.drn and pd2.gate.
        let mid = n.net_by_name("mid").unwrap();
        assert_eq!(n.fanout(mid), 3);
        let vdd = n.net_by_name("vdd").unwrap();
        assert_eq!(n.fanout(vdd), 2);
    }

    #[test]
    fn histogram_by_kind() {
        let n = inverter_pair(["a", "mid", "q", "vdd"]);
        let h = n.kind_histogram();
        assert_eq!(h["pullup"], 2);
        assert_eq!(h["enh"], 2);
    }

    #[test]
    fn isomorphism_ignores_names() {
        let a = inverter_pair(["a", "mid", "q", "vdd"]);
        let b = inverter_pair(["x", "y", "z", "power"]);
        assert!(a.structurally_matches(&b));
        assert_eq!(a.isomorphic_signature(), b.isomorphic_signature());
    }

    #[test]
    fn isomorphism_detects_differences() {
        let a = inverter_pair(["a", "mid", "q", "vdd"]);
        // Same instance counts, but rewire: second gate driven by input
        // instead of mid — structurally different.
        let mut b = Netlist::new("buf");
        let x = b.add_net("a");
        let mid = b.add_net("mid");
        let q = b.add_net("q");
        let vdd = b.add_net("vdd");
        b.add_instance("pu1", "pullup", &[("out", mid), ("vdd", vdd)])
            .unwrap();
        b.add_instance("pd1", "enh", &[("gate", x), ("drn", mid)])
            .unwrap();
        b.add_instance("pu2", "pullup", &[("out", q), ("vdd", vdd)])
            .unwrap();
        b.add_instance("pd2", "enh", &[("gate", x), ("drn", q)])
            .unwrap();
        assert!(!a.structurally_matches(&b));
    }

    /// Two disjoint chains of `buf` instances: `in -> b0 -> ... -> out`
    /// per length in `lens`.
    fn buf_chains(lens: &[usize]) -> Netlist {
        let mut n = Netlist::new("chains");
        for (ci, &len) in lens.iter().enumerate() {
            let mut prev = n.add_net(format!("c{ci}_n0"));
            for i in 0..len {
                let next = n.add_net(format!("c{ci}_n{}", i + 1));
                n.add_instance(format!("c{ci}_b{i}"), "buf", &[("a", prev), ("y", next)])
                    .unwrap();
                prev = next;
            }
        }
        n
    }

    #[test]
    fn fixpoint_distinguishes_what_shallow_refinement_conflates() {
        // 10+10 vs 8+12: same instance count (20), same pinned-net count
        // (22), and identical radius-4 neighbourhood multisets, so a
        // refinement cut off after 3 rounds (the old behaviour) calls
        // them isomorphic. Run to a fixpoint they differ: only the 12
        // chain has instances 5 hops from the nearest end.
        let a = buf_chains(&[10, 10]);
        let b = buf_chains(&[8, 12]);
        assert_eq!(a.instances().len(), b.instances().len());
        assert_eq!(a.nets_with_pins(), b.nets_with_pins());
        assert_eq!(
            a.refined_signature(Some(3)),
            b.refined_signature(Some(3)),
            "pair must reproduce the shallow-refinement conflation"
        );
        assert_ne!(a.isomorphic_signature(), b.isomorphic_signature());
        assert!(!a.structurally_matches(&b));
    }

    #[test]
    fn fixpoint_still_matches_isomorphic_chains() {
        let a = buf_chains(&[8, 12]);
        let b = buf_chains(&[12, 8]);
        assert!(a.structurally_matches(&b));
    }

    #[test]
    fn netlist_fingerprint_tracks_content() {
        let a = inverter_pair(["a", "mid", "q", "vdd"]);
        let b = inverter_pair(["a", "mid", "q", "vdd"]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let renamed = inverter_pair(["a2", "mid", "q", "vdd"]);
        assert_ne!(a.fingerprint(), renamed.fingerprint());
    }

    #[test]
    fn display_dumps_connections() {
        let n = inverter_pair(["a", "mid", "q", "vdd"]);
        let s = n.to_string();
        assert!(s.contains("pd1 enh(gate=a, drn=mid)"));
        assert!(s.contains("4 instances"));
    }
}
