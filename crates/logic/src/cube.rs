use crate::LogicError;
use std::fmt;

/// One position of a cube: the literal of a single input variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lit {
    /// The variable appears complemented (input must be 0).
    Zero,
    /// The variable appears uncomplemented (input must be 1).
    One,
    /// The variable does not appear (either value accepted).
    DontCare,
}

impl Lit {
    /// The text form used by the PLA format.
    pub const fn to_char(self) -> char {
        match self {
            Lit::Zero => '0',
            Lit::One => '1',
            Lit::DontCare => '-',
        }
    }

    /// Parses a PLA-format literal character.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ParseCube`] for anything but `0`, `1`, `-`.
    pub fn from_char(c: char) -> Result<Lit, LogicError> {
        match c {
            '0' => Ok(Lit::Zero),
            '1' => Ok(Lit::One),
            '-' | '2' => Ok(Lit::DontCare),
            _ => Err(LogicError::ParseCube { found: c }),
        }
    }
}

/// A product term over `n` inputs: a conjunction of literals.
///
/// Cubes are the atoms of two-level logic: a PLA row is a cube, and a
/// cover (sum of products) is a set of cubes.
///
/// # Example
///
/// ```
/// use silc_logic::Cube;
/// let c = Cube::parse("1-0")?;   // a AND NOT c
/// assert!(c.covers_minterm(0b100));
/// assert!(c.covers_minterm(0b110));
/// assert!(!c.covers_minterm(0b101));
/// # Ok::<(), silc_logic::LogicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    lits: Vec<Lit>,
}

impl Cube {
    /// The universal cube (all don't-cares) over `n` inputs.
    pub fn universe(n: usize) -> Cube {
        Cube {
            lits: vec![Lit::DontCare; n],
        }
    }

    /// Creates a cube from explicit literals.
    pub fn from_lits(lits: Vec<Lit>) -> Cube {
        Cube { lits }
    }

    /// The cube matching exactly one minterm. Bit `n-1-i` of `minterm`...
    /// no: input 0 is the **most significant** bit, matching the PLA text
    /// convention where the leftmost column is input 0.
    pub fn from_minterm(n: usize, minterm: u64) -> Cube {
        let lits = (0..n)
            .map(|i| {
                if (minterm >> (n - 1 - i)) & 1 == 1 {
                    Lit::One
                } else {
                    Lit::Zero
                }
            })
            .collect();
        Cube { lits }
    }

    /// Parses the PLA text form, e.g. `"1-0"`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ParseCube`] for invalid characters.
    pub fn parse(s: &str) -> Result<Cube, LogicError> {
        let lits = s.chars().map(Lit::from_char).collect::<Result<_, _>>()?;
        Ok(Cube { lits })
    }

    /// Number of inputs.
    pub fn width(&self) -> usize {
        self.lits.len()
    }

    /// The literal at input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn lit(&self, i: usize) -> Lit {
        self.lits[i]
    }

    /// All literals.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Returns a copy with input `i` set to `lit`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn with_lit(&self, i: usize, lit: Lit) -> Cube {
        let mut lits = self.lits.clone();
        lits[i] = lit;
        Cube { lits }
    }

    /// Number of specified (non-don't-care) literals — the number of
    /// transistors the term costs in a PLA AND plane.
    pub fn literal_count(&self) -> usize {
        self.lits.iter().filter(|&&l| l != Lit::DontCare).count()
    }

    /// True when the cube accepts the given minterm (input 0 = MSB).
    pub fn covers_minterm(&self, minterm: u64) -> bool {
        let n = self.lits.len();
        self.lits.iter().enumerate().all(|(i, &l)| {
            let bit = (minterm >> (n - 1 - i)) & 1;
            match l {
                Lit::Zero => bit == 0,
                Lit::One => bit == 1,
                Lit::DontCare => true,
            }
        })
    }

    /// True when every minterm of `other` is also in `self`.
    pub fn covers_cube(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.width(), other.width());
        self.lits
            .iter()
            .zip(&other.lits)
            .all(|(&a, &b)| a == Lit::DontCare || a == b)
    }

    /// Intersection of two cubes, or `None` when they conflict in some
    /// literal.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.width(), other.width());
        let mut lits = Vec::with_capacity(self.lits.len());
        for (&a, &b) in self.lits.iter().zip(&other.lits) {
            let l = match (a, b) {
                (Lit::DontCare, x) => x,
                (x, Lit::DontCare) => x,
                (x, y) if x == y => x,
                _ => return None,
            };
            lits.push(l);
        }
        Some(Cube { lits })
    }

    /// The number of inputs where the cubes require opposite values.
    pub fn conflict_count(&self, other: &Cube) -> usize {
        debug_assert_eq!(self.width(), other.width());
        self.lits
            .iter()
            .zip(&other.lits)
            .filter(|(&a, &b)| matches!((a, b), (Lit::Zero, Lit::One) | (Lit::One, Lit::Zero)))
            .count()
    }

    /// Quine–McCluskey merge: if the cubes differ in exactly one input
    /// where both are specified and opposite, and agree everywhere else,
    /// returns the merged cube with that input freed.
    pub fn merge_adjacent(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.width(), other.width());
        let mut diff = None;
        for (i, (&a, &b)) in self.lits.iter().zip(&other.lits).enumerate() {
            if a == b {
                continue;
            }
            match (a, b) {
                (Lit::Zero, Lit::One) | (Lit::One, Lit::Zero) => {
                    if diff.is_some() {
                        return None;
                    }
                    diff = Some(i);
                }
                _ => return None, // one specified, one don't-care: no merge
            }
        }
        diff.map(|i| self.with_lit(i, Lit::DontCare))
    }

    /// Smallest cube containing both (the supercube).
    pub fn supercube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.width(), other.width());
        let lits = self
            .lits
            .iter()
            .zip(&other.lits)
            .map(|(&a, &b)| if a == b { a } else { Lit::DontCare })
            .collect();
        Cube { lits }
    }

    /// Iterates over every minterm the cube covers (exponential in free
    /// literals; callers gate on width).
    pub fn minterms(&self) -> Vec<u64> {
        let n = self.lits.len();
        let free: Vec<usize> = (0..n).filter(|&i| self.lits[i] == Lit::DontCare).collect();
        let base: u64 = (0..n)
            .filter(|&i| self.lits[i] == Lit::One)
            .map(|i| 1u64 << (n - 1 - i))
            .sum();
        (0..(1u64 << free.len()))
            .map(|mask| {
                let mut m = base;
                for (j, &i) in free.iter().enumerate() {
                    if (mask >> j) & 1 == 1 {
                        m |= 1u64 << (n - 1 - i);
                    }
                }
                m
            })
            .collect()
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &l in &self.lits {
            write!(f, "{}", l.to_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["", "0", "1", "-", "10-1", "----"] {
            assert_eq!(Cube::parse(s).unwrap().to_string(), s);
        }
        assert!(Cube::parse("10x").is_err());
    }

    #[test]
    fn minterm_cube_msb_convention() {
        // Input 0 is leftmost / MSB: minterm 0b10 over 2 inputs is "10".
        assert_eq!(Cube::from_minterm(2, 0b10).to_string(), "10");
        assert_eq!(Cube::from_minterm(3, 0b001).to_string(), "001");
    }

    #[test]
    fn covers_minterm_matches_parse() {
        let c = Cube::parse("1-0").unwrap();
        assert!(c.covers_minterm(0b100));
        assert!(c.covers_minterm(0b110));
        assert!(!c.covers_minterm(0b000));
        assert!(!c.covers_minterm(0b101));
    }

    #[test]
    fn cube_containment() {
        let big = Cube::parse("1--").unwrap();
        let small = Cube::parse("101").unwrap();
        assert!(big.covers_cube(&small));
        assert!(!small.covers_cube(&big));
        assert!(big.covers_cube(&big));
    }

    #[test]
    fn intersection() {
        let a = Cube::parse("1-0").unwrap();
        let b = Cube::parse("-10").unwrap();
        assert_eq!(a.intersect(&b).unwrap().to_string(), "110");
        let c = Cube::parse("0--").unwrap();
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn merge_adjacent_rules() {
        let a = Cube::parse("101").unwrap();
        let b = Cube::parse("100").unwrap();
        assert_eq!(a.merge_adjacent(&b).unwrap().to_string(), "10-");
        // Two differences: no merge.
        let c = Cube::parse("110").unwrap();
        assert!(a.merge_adjacent(&c).is_none());
        // Difference against a don't-care: no merge.
        let d = Cube::parse("10-").unwrap();
        assert!(a.merge_adjacent(&d).is_none());
    }

    #[test]
    fn supercube_contains_both() {
        let a = Cube::parse("101").unwrap();
        let b = Cube::parse("001").unwrap();
        let s = a.supercube(&b);
        assert_eq!(s.to_string(), "-01");
        assert!(s.covers_cube(&a));
        assert!(s.covers_cube(&b));
    }

    #[test]
    fn minterm_expansion() {
        let c = Cube::parse("1-").unwrap();
        let mut m = c.minterms();
        m.sort_unstable();
        assert_eq!(m, vec![0b10, 0b11]);
        assert_eq!(Cube::universe(3).minterms().len(), 8);
        assert_eq!(Cube::parse("101").unwrap().minterms(), vec![0b101]);
    }

    #[test]
    fn literal_count() {
        assert_eq!(Cube::parse("1-0-").unwrap().literal_count(), 2);
        assert_eq!(Cube::universe(5).literal_count(), 0);
    }

    #[test]
    fn conflicts() {
        let a = Cube::parse("10-").unwrap();
        let b = Cube::parse("01-").unwrap();
        assert_eq!(a.conflict_count(&b), 2);
        assert_eq!(a.conflict_count(&a), 0);
    }

    fn arb_cube(n: usize) -> impl Strategy<Value = Cube> {
        prop::collection::vec(0u8..3, n).prop_map(|v| {
            Cube::from_lits(
                v.into_iter()
                    .map(|x| match x {
                        0 => Lit::Zero,
                        1 => Lit::One,
                        _ => Lit::DontCare,
                    })
                    .collect(),
            )
        })
    }

    proptest! {
        #[test]
        fn intersect_agrees_with_minterms(a in arb_cube(5), b in arb_cube(5)) {
            let am: std::collections::HashSet<_> = a.minterms().into_iter().collect();
            let bm: std::collections::HashSet<_> = b.minterms().into_iter().collect();
            let expected: std::collections::HashSet<_> = am.intersection(&bm).copied().collect();
            match a.intersect(&b) {
                Some(c) => {
                    let cm: std::collections::HashSet<_> = c.minterms().into_iter().collect();
                    prop_assert_eq!(cm, expected);
                }
                None => prop_assert!(expected.is_empty()),
            }
        }

        #[test]
        fn covers_cube_agrees_with_minterms(a in arb_cube(4), b in arb_cube(4)) {
            let am: std::collections::HashSet<_> = a.minterms().into_iter().collect();
            let covers = b.minterms().iter().all(|m| am.contains(m));
            prop_assert_eq!(a.covers_cube(&b), covers);
        }

        #[test]
        fn supercube_is_minimal_in_size(a in arb_cube(4), b in arb_cube(4)) {
            let s = a.supercube(&b);
            prop_assert!(s.covers_cube(&a) && s.covers_cube(&b));
            // Every specified literal of s is forced: freeing it must stay
            // a cover, specialization must not.
            for i in 0..4 {
                if s.lit(i) != Lit::DontCare {
                    // s is as specified as possible: both a and b agree there.
                    prop_assert_eq!(a.lit(i), s.lit(i));
                    prop_assert_eq!(b.lit(i), s.lit(i));
                }
            }
        }
    }
}
