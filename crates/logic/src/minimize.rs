use crate::{Cover, Cube, LogicError};
use std::collections::HashSet;

/// Maximum input count accepted by the exact (minterm-enumerating)
/// algorithms.
const MAX_EXACT_INPUTS: usize = 14;

/// Computes all prime implicants of the function `on ∪ dc` that cover at
/// least one ON-set minterm, by the Quine–McCluskey iterated-consensus
/// procedure.
///
/// # Errors
///
/// Returns [`LogicError::TooWideForExact`] beyond 14 inputs.
///
/// # Example
///
/// ```
/// use silc_logic::{prime_implicants, Cover};
/// let on = Cover::from_minterms(2, &[0b01, 0b11, 0b10]);
/// let primes = prime_implicants(&on, &Cover::empty(2))?;
/// // Primes of a+b are exactly {1-, -1}.
/// assert_eq!(primes.len(), 2);
/// # Ok::<(), silc_logic::LogicError>(())
/// ```
pub fn prime_implicants(on: &Cover, dc: &Cover) -> Result<Vec<Cube>, LogicError> {
    let n = on.num_inputs();
    if n > MAX_EXACT_INPUTS {
        return Err(LogicError::TooWideForExact {
            inputs: n,
            max: MAX_EXACT_INPUTS,
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let on_minterms: HashSet<u64> = on.minterms().into_iter().collect();
    let mut current: HashSet<Cube> = on_minterms
        .iter()
        .chain(dc.minterms().iter())
        .map(|&m| Cube::from_minterm(n, m))
        .collect();
    let mut primes: Vec<Cube> = Vec::new();

    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().cloned().collect();
        let mut merged_flag = vec![false; cubes.len()];
        let mut next: HashSet<Cube> = HashSet::new();
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(m) = cubes[i].merge_adjacent(&cubes[j]) {
                    merged_flag[i] = true;
                    merged_flag[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, cube) in cubes.iter().enumerate() {
            if !merged_flag[i] {
                primes.push(cube.clone());
            }
        }
        current = next;
    }

    // Keep only primes that cover at least one ON minterm (pure-DC primes
    // are useless in a cover).
    primes.retain(|p| p.minterms().iter().any(|m| on_minterms.contains(m)));
    // Deduplicate (merging from different pairs can produce repeats).
    let mut seen = HashSet::new();
    primes.retain(|p| seen.insert(p.clone()));
    Ok(primes)
}

/// Exact two-level minimization: Quine–McCluskey primes followed by
/// branch-and-bound minimum covering. The result has the minimum possible
/// number of product terms (ties broken toward fewer literals).
///
/// `dc` lists don't-care minterms that the result may, but need not,
/// cover.
///
/// # Errors
///
/// Returns [`LogicError::TooWideForExact`] beyond 14 inputs.
pub fn minimize_exact(on: &Cover, dc: &Cover) -> Result<Cover, LogicError> {
    let n = on.num_inputs();
    let primes = prime_implicants(on, dc)?;
    let on_minterms: Vec<u64> = on.minterms();
    if on_minterms.is_empty() {
        return Ok(Cover::empty(n));
    }

    // Coverage sets: for each ON minterm, which primes cover it.
    let cover_sets: Vec<Vec<usize>> = on_minterms
        .iter()
        .map(|&m| {
            (0..primes.len())
                .filter(|&p| primes[p].covers_minterm(m))
                .collect()
        })
        .collect();

    let mut best: Option<Vec<usize>> = None;
    let mut chosen: Vec<usize> = Vec::new();
    branch(
        &cover_sets,
        &primes,
        &mut vec![false; on_minterms.len()],
        &mut chosen,
        &mut best,
    );
    // Every ON minterm is covered by at least one prime, so branch-and-
    // bound must find some selection; if it did not, an internal cover
    // invariant was violated and the caller gets a real error rather than
    // a worker-killing panic.
    let selection = best.ok_or_else(|| LogicError::CoverInvariant {
        detail: "exact covering found no selection: an ON minterm has no covering prime"
            .to_string(),
    })?;
    let cubes = selection.into_iter().map(|i| primes[i].clone()).collect();
    Cover::from_cubes(n, cubes)
}

/// Recursive branch-and-bound over the covering problem.
fn branch(
    cover_sets: &[Vec<usize>],
    primes: &[Cube],
    covered: &mut Vec<bool>,
    chosen: &mut Vec<usize>,
    best: &mut Option<Vec<usize>>,
) {
    // Prune: already no better than best.
    if let Some(b) = best {
        if chosen.len() >= b.len() {
            return;
        }
    }
    // Find first uncovered minterm.
    let next = match covered.iter().position(|&c| !c) {
        Some(i) => i,
        None => {
            let better = match best {
                Some(b) => {
                    chosen.len() < b.len()
                        || (chosen.len() == b.len()
                            && literal_cost(chosen, primes) < literal_cost(b, primes))
                }
                None => true,
            };
            if better {
                *best = Some(chosen.clone());
            }
            return;
        }
    };
    // Branch over every prime covering it (most-coverage first for better
    // early bounds).
    let mut candidates = cover_sets[next].clone();
    candidates.sort_by_key(|&p| {
        std::cmp::Reverse(
            cover_sets
                .iter()
                .zip(covered.iter())
                .filter(|(set, &cov)| !cov && set.contains(&p))
                .count(),
        )
    });
    for p in candidates {
        let newly: Vec<usize> = cover_sets
            .iter()
            .enumerate()
            .filter(|(i, set)| !covered[*i] && set.contains(&p))
            .map(|(i, _)| i)
            .collect();
        for &i in &newly {
            covered[i] = true;
        }
        chosen.push(p);
        branch(cover_sets, primes, covered, chosen, best);
        chosen.pop();
        for &i in &newly {
            covered[i] = false;
        }
    }
}

fn literal_cost(selection: &[usize], primes: &[Cube]) -> usize {
    selection.iter().map(|&i| primes[i].literal_count()).sum()
}

/// Espresso-style heuristic minimization: iterated EXPAND (free literals
/// while the enlarged cube stays inside `on ∪ dc`) and IRREDUNDANT (drop
/// cubes covered by the rest of the cover plus `dc`), until the term count
/// stops improving.
///
/// Unlike [`minimize_exact`] this never enumerates minterms, so it works
/// at any width; the result is a valid, irredundant (though not always
/// minimum) cover.
///
/// # Errors
///
/// Returns [`LogicError::WidthMismatch`] when `on` and `dc` widths differ.
///
/// # Example
///
/// ```
/// use silc_logic::{minimize_heuristic, Cover, Cube};
/// let on = Cover::from_cubes(2, vec![
///     Cube::parse("01")?, Cube::parse("11")?, Cube::parse("10")?,
/// ])?;
/// let min = minimize_heuristic(&on, &Cover::empty(2))?;
/// assert_eq!(min.len(), 2); // a + b
/// # Ok::<(), silc_logic::LogicError>(())
/// ```
pub fn minimize_heuristic(on: &Cover, dc: &Cover) -> Result<Cover, LogicError> {
    let n = on.num_inputs();
    if dc.num_inputs() != n {
        return Err(LogicError::WidthMismatch {
            expected: n,
            found: dc.num_inputs(),
        });
    }
    // The permissible function: anything inside on ∪ dc.
    let mut permitted = on.clone();
    for c in dc.cubes() {
        permitted.push(c.clone())?;
    }

    let mut current = on.clone();
    current.remove_single_cube_contained();
    let mut last_len = usize::MAX;
    while current.len() < last_len {
        last_len = current.len();
        current = expand(&current, &permitted);
        current = irredundant(&current, dc, on)?;
    }
    Ok(current)
}

/// EXPAND: grow each cube literal-by-literal while it remains inside the
/// permitted function, then drop cubes newly contained in a grown one.
fn expand(cover: &Cover, permitted: &Cover) -> Cover {
    let n = cover.num_inputs();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Expand small cubes first: they benefit most.
    cubes.sort_by_key(|c| std::cmp::Reverse(c.literal_count()));
    let mut out: Vec<Cube> = Vec::with_capacity(cubes.len());
    for cube in cubes {
        let mut grown = cube;
        for i in 0..n {
            if grown.lit(i) == crate::Lit::DontCare {
                continue;
            }
            let candidate = grown.with_lit(i, crate::Lit::DontCare);
            if permitted.covers_cube(&candidate) {
                grown = candidate;
            }
        }
        if !out.iter().any(|k: &Cube| k.covers_cube(&grown)) {
            out.retain(|k| !grown.covers_cube(k));
            out.push(grown);
        }
    }
    Cover::from_cubes(n, out).expect("widths preserved")
}

/// IRREDUNDANT: remove cubes that the rest of the cover plus the don't-care
/// set already covers. Scans cubes largest-first so big redundant cubes go
/// before the small ones they shadow.
fn irredundant(cover: &Cover, dc: &Cover, on: &Cover) -> Result<Cover, LogicError> {
    let n = cover.num_inputs();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    cubes.sort_by_key(Cube::literal_count);
    let mut keep = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        keep[i] = false;
        let mut rest = Cover::empty(n);
        for (j, c) in cubes.iter().enumerate() {
            if keep[j] {
                rest.push(c.clone())?;
            }
        }
        for c in dc.cubes() {
            rest.push(c.clone())?;
        }
        // The cube is redundant only if removing it still covers ON.
        if !rest.covers_cube(&cubes[i]) {
            keep[i] = true;
        }
    }
    let kept: Vec<Cube> = cubes
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(c, _)| c)
        .collect();
    let result = Cover::from_cubes(n, kept)?;
    debug_assert!(result_covers_on(&result, dc, on));
    Ok(result)
}

fn result_covers_on(result: &Cover, dc: &Cover, on: &Cover) -> bool {
    let mut with_dc = result.clone();
    for c in dc.cubes() {
        if with_dc.push(c.clone()).is_err() {
            return false;
        }
    }
    with_dc.covers(on)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cover(n: usize, cubes: &[&str]) -> Cover {
        Cover::from_cubes(n, cubes.iter().map(|s| Cube::parse(s).unwrap()).collect()).unwrap()
    }

    #[test]
    fn primes_of_or() {
        let on = Cover::from_minterms(2, &[0b01, 0b10, 0b11]);
        let mut primes: Vec<String> = prime_implicants(&on, &Cover::empty(2))
            .unwrap()
            .iter()
            .map(|c| c.to_string())
            .collect();
        primes.sort();
        assert_eq!(primes, vec!["-1", "1-"]);
    }

    #[test]
    fn exact_minimizes_or() {
        let on = cover(2, &["01", "11", "10"]);
        let min = minimize_exact(&on, &Cover::empty(2)).unwrap();
        assert_eq!(min.len(), 2);
        assert!(min.equivalent(&cover(2, &["1-", "-1"])));
    }

    #[test]
    fn exact_uses_dont_cares() {
        // f on = {1}, dc = {3}: with dc the single cube -1 suffices.
        let on = Cover::from_minterms(2, &[0b01]);
        let dc = Cover::from_minterms(2, &[0b11]);
        let min = minimize_exact(&on, &dc).unwrap();
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].to_string(), "-1");
    }

    #[test]
    fn exact_on_empty_function() {
        let min = minimize_exact(&Cover::empty(3), &Cover::empty(3)).unwrap();
        assert!(min.is_empty());
    }

    #[test]
    fn exact_on_tautology() {
        let on = Cover::from_minterms(2, &[0, 1, 2, 3]);
        let min = minimize_exact(&on, &Cover::empty(2)).unwrap();
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].literal_count(), 0);
    }

    #[test]
    fn exact_classic_qm_example() {
        // The textbook example: f(a,b,c,d) = Σ(4,8,10,11,12,15), dc(9,14).
        let on = Cover::from_minterms(4, &[4, 8, 10, 11, 12, 15]);
        let dc = Cover::from_minterms(4, &[9, 14]);
        let min = minimize_exact(&on, &dc).unwrap();
        // The don't-cares admit a 3-term minimum, e.g. -100 + 10-- + 1-1-.
        assert_eq!(min.len(), 3, "got {min}");
        for m in on.minterms() {
            assert!(min.eval(m), "minterm {m} lost");
        }
        for m in 0..16u64 {
            if min.eval(m) {
                assert!(on.eval(m) || dc.eval(m), "minterm {m} invented");
            }
        }
    }

    #[test]
    fn too_wide_rejected() {
        let on = Cover::empty(20);
        assert!(matches!(
            prime_implicants(&on, &Cover::empty(20)),
            Err(LogicError::TooWideForExact { .. })
        ));
    }

    #[test]
    fn heuristic_minimizes_or() {
        let on = cover(2, &["01", "11", "10"]);
        let min = minimize_heuristic(&on, &Cover::empty(2)).unwrap();
        assert_eq!(min.len(), 2);
        assert!(min.equivalent(&cover(2, &["1-", "-1"])));
    }

    #[test]
    fn heuristic_removes_redundant_middle_cube() {
        // ab + a'c + bc: bc is the classic redundant consensus term.
        let on = cover(3, &["11-", "0-1", "-11"]);
        let min = minimize_heuristic(&on, &Cover::empty(3)).unwrap();
        assert!(min.len() <= 2, "got {min}");
        assert!(min.equivalent(&cover(3, &["11-", "0-1"])));
    }

    #[test]
    fn heuristic_respects_width_mismatch() {
        let on = Cover::empty(3);
        let dc = Cover::empty(2);
        assert!(minimize_heuristic(&on, &dc).is_err());
    }

    fn arb_minterms(n: usize) -> impl Strategy<Value = Vec<u64>> {
        prop::collection::btree_set(0u64..(1 << n), 0..(1 << n))
            .prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn exact_result_is_equivalent_and_no_bigger(ms in arb_minterms(4)) {
            let on = Cover::from_minterms(4, &ms);
            let min = minimize_exact(&on, &Cover::empty(4)).unwrap();
            prop_assert!(min.equivalent(&on));
            prop_assert!(min.len() <= on.len());
        }

        #[test]
        fn heuristic_result_is_equivalent(ms in arb_minterms(4)) {
            let on = Cover::from_minterms(4, &ms);
            let min = minimize_heuristic(&on, &Cover::empty(4)).unwrap();
            prop_assert!(min.equivalent(&on));
            prop_assert!(min.len() <= on.len().max(1));
        }

        #[test]
        fn heuristic_never_beats_exact_by_validity(
            on_ms in arb_minterms(4), dc_ms in arb_minterms(4),
        ) {
            // With don't-cares, both must stay within on ∪ dc and cover on.
            let dc_only: Vec<u64> = dc_ms.iter().copied()
                .filter(|m| !on_ms.contains(m)).collect();
            let on = Cover::from_minterms(4, &on_ms);
            let dc = Cover::from_minterms(4, &dc_only);
            let exact = minimize_exact(&on, &dc).unwrap();
            let heur = minimize_heuristic(&on, &dc).unwrap();
            for m in 0..16u64 {
                if on.eval(m) {
                    prop_assert!(exact.eval(m));
                    prop_assert!(heur.eval(m));
                } else if !dc.eval(m) {
                    prop_assert!(!exact.eval(m));
                    prop_assert!(!heur.eval(m));
                }
            }
            // Exact is truly minimum, so never larger than the heuristic.
            prop_assert!(exact.len() <= heur.len());
        }
    }
}
