//! # silc-logic — two-level logic for regular-block programming
//!
//! The paper's key observation about regular blocks — "memories and PLAs
//! are *programmed* for specific functions" — needs a logic substrate: a
//! representation for two-level (AND-OR) logic and minimizers to keep the
//! programmed planes small. This crate provides:
//!
//! * [`Cube`] and [`Cover`] — the cube calculus: cofactors, tautology
//!   checking, containment, single-cube containment.
//! * [`TruthTable`] — multi-output function specifications, with a reader
//!   and writer for the Berkeley/espresso PLA text format.
//! * [`minimize_exact`] — Quine–McCluskey prime generation plus
//!   branch-and-bound covering (minimum cube count, for small inputs).
//! * [`minimize_heuristic`] — an espresso-style EXPAND/IRREDUNDANT loop
//!   that scales to larger functions.
//! * [`functions`] — the benchmark functions experiments E4/E5 sweep
//!   (majority, parity, decoders, BCD-to-seven-segment, adder slices, the
//!   traffic-light controller FSM).
//!
//! # Example
//!
//! ```
//! use silc_logic::{Cover, Cube, minimize_exact};
//!
//! // f = a'b + ab + ab'  minimizes to  a + b.
//! let cover = Cover::from_cubes(2, vec![
//!     Cube::parse("01")?, Cube::parse("11")?, Cube::parse("10")?,
//! ])?;
//! let min = minimize_exact(&cover, &Cover::empty(2))?;
//! assert_eq!(min.len(), 2);
//! # Ok::<(), silc_logic::LogicError>(())
//! ```

mod cover;
mod cube;
mod error;
pub mod functions;
mod minimize;
mod truth_table;

pub use cover::Cover;
pub use cube::{Cube, Lit};
pub use error::LogicError;
pub use minimize::{minimize_exact, minimize_heuristic, prime_implicants};
pub use truth_table::{OutBit, TruthTable};
