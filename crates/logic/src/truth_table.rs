use crate::{Cover, Cube, LogicError};
use std::fmt;
use std::fmt::Write as _;

/// One output position of a truth-table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutBit {
    /// The row forces this output low (`0` in PLA format).
    Off,
    /// The row forces this output high (`1`).
    On,
    /// The row leaves this output unconstrained (`-` / `~`).
    DontCare,
}

impl OutBit {
    /// PLA text character.
    pub const fn to_char(self) -> char {
        match self {
            OutBit::Off => '0',
            OutBit::On => '1',
            OutBit::DontCare => '-',
        }
    }

    /// Parses a PLA output character.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ParseCube`] on an unknown character.
    pub fn from_char(c: char) -> Result<OutBit, LogicError> {
        match c {
            '0' => Ok(OutBit::Off),
            '1' | '4' => Ok(OutBit::On),
            '-' | '~' | '2' | '3' => Ok(OutBit::DontCare),
            _ => Err(LogicError::ParseCube { found: c }),
        }
    }
}

/// A multi-output function specification: the programming document for a
/// PLA or ROM.
///
/// Rows pair an input [`Cube`] with one [`OutBit`] per output, exactly as
/// in the Berkeley PLA text format that [`TruthTable::parse_pla`] reads
/// and [`TruthTable::to_pla_string`] writes.
///
/// # Example
///
/// ```
/// use silc_logic::TruthTable;
/// let t = TruthTable::parse_pla(".i 2\n.o 1\n11 1\n10 1\n.e\n")?;
/// assert_eq!(t.num_inputs(), 2);
/// let on = t.on_cover(0)?;
/// assert!(on.eval(0b10) && on.eval(0b11) && !on.eval(0b01));
/// # Ok::<(), silc_logic::LogicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    num_inputs: usize,
    num_outputs: usize,
    input_names: Vec<String>,
    output_names: Vec<String>,
    rows: Vec<(Cube, Vec<OutBit>)>,
}

impl TruthTable {
    /// Creates an empty table with default signal names (`x0…`, `y0…`).
    pub fn new(num_inputs: usize, num_outputs: usize) -> TruthTable {
        TruthTable {
            num_inputs,
            num_outputs,
            input_names: (0..num_inputs).map(|i| format!("x{i}")).collect(),
            output_names: (0..num_outputs).map(|i| format!("y{i}")).collect(),
            rows: Vec::new(),
        }
    }

    /// Builds a fully specified table by evaluating `f` on every minterm.
    /// `f` returns one [`OutBit`] per output. Rows whose outputs are all
    /// `Off` are omitted (they are the implicit default).
    ///
    /// # Panics
    ///
    /// Panics when `num_inputs > 24` or `f` returns the wrong arity.
    pub fn from_fn(
        num_inputs: usize,
        num_outputs: usize,
        f: impl Fn(u64) -> Vec<OutBit>,
    ) -> TruthTable {
        assert!(num_inputs <= 24, "from_fn enumerates all minterms");
        let mut t = TruthTable::new(num_inputs, num_outputs);
        for m in 0..(1u64 << num_inputs) {
            let outs = f(m);
            assert_eq!(outs.len(), num_outputs, "output arity mismatch");
            if outs.iter().any(|&o| o != OutBit::Off) {
                t.rows.push((Cube::from_minterm(num_inputs, m), outs));
            }
        }
        t
    }

    /// Renames the signals (for readable PLA files and generated layouts).
    ///
    /// # Panics
    ///
    /// Panics if either slice length mismatches the table arity.
    pub fn with_names(mut self, inputs: &[&str], outputs: &[&str]) -> TruthTable {
        assert_eq!(inputs.len(), self.num_inputs);
        assert_eq!(outputs.len(), self.num_outputs);
        self.input_names = inputs.iter().map(|s| s.to_string()).collect();
        self.output_names = outputs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Input signal names.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output signal names.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// The rows.
    pub fn rows(&self) -> &[(Cube, Vec<OutBit>)] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::WidthMismatch`] if the cube or output vector
    /// has the wrong arity.
    pub fn push_row(&mut self, cube: Cube, outs: Vec<OutBit>) -> Result<(), LogicError> {
        if cube.width() != self.num_inputs {
            return Err(LogicError::WidthMismatch {
                expected: self.num_inputs,
                found: cube.width(),
            });
        }
        if outs.len() != self.num_outputs {
            return Err(LogicError::WidthMismatch {
                expected: self.num_outputs,
                found: outs.len(),
            });
        }
        self.rows.push((cube, outs));
        Ok(())
    }

    /// The ON-set cover of output `o`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadInputIndex`] for an out-of-range output.
    pub fn on_cover(&self, o: usize) -> Result<Cover, LogicError> {
        self.select(o, OutBit::On)
    }

    /// The don't-care cover of output `o`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadInputIndex`] for an out-of-range output.
    pub fn dc_cover(&self, o: usize) -> Result<Cover, LogicError> {
        self.select(o, OutBit::DontCare)
    }

    fn select(&self, o: usize, want: OutBit) -> Result<Cover, LogicError> {
        if o >= self.num_outputs {
            return Err(LogicError::BadInputIndex {
                index: o,
                inputs: self.num_outputs,
            });
        }
        let cubes = self
            .rows
            .iter()
            .filter(|(_, outs)| outs[o] == want)
            .map(|(c, _)| c.clone())
            .collect();
        Cover::from_cubes(self.num_inputs, cubes)
    }

    /// Evaluates output `o` on a minterm: `Some(true)` if an ON row
    /// matches, `None` if only don't-care rows match, `Some(false)`
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::BadInputIndex`] for an out-of-range output.
    pub fn eval(&self, o: usize, minterm: u64) -> Result<Option<bool>, LogicError> {
        let on = self.on_cover(o)?;
        if on.eval(minterm) {
            return Ok(Some(true));
        }
        if self.dc_cover(o)?.eval(minterm) {
            return Ok(None);
        }
        Ok(Some(false))
    }

    /// Parses the Berkeley PLA text format (`.i`, `.o`, `.ilb`, `.ob`,
    /// `.p`, term rows, `.e`).
    ///
    /// The declared shape is enforced: re-declaring `.i`, `.o`, `.ilb`,
    /// `.ob` or `.p` is an error (a second `.i` would silently reinterpret
    /// every term row already read), `.ilb`/`.ob` name counts must match
    /// `.i`/`.o`, and a `.p` product-term count must match the number of
    /// term rows actually present.
    ///
    /// # Errors
    ///
    /// [`LogicError::ParsePla`] with the offending line number.
    pub fn parse_pla(text: &str) -> Result<TruthTable, LogicError> {
        let mut num_inputs: Option<usize> = None;
        let mut num_outputs: Option<usize> = None;
        // Names and term count carry the line they were declared on so
        // cross-checks at end of parse can still point at a line.
        let mut input_names: Option<(Vec<String>, usize)> = None;
        let mut output_names: Option<(Vec<String>, usize)> = None;
        let mut term_count: Option<(usize, usize)> = None;
        let mut rows: Vec<(Cube, Vec<OutBit>)> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: &str| LogicError::ParsePla {
                line: lineno + 1,
                message: message.to_string(),
            };
            if let Some(rest) = line.strip_prefix('.') {
                let mut parts = rest.split_whitespace();
                match parts.next() {
                    Some("i") => {
                        let value = parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("bad .i directive"))?;
                        if num_inputs.replace(value).is_some() {
                            return Err(err("duplicate .i directive"));
                        }
                    }
                    Some("o") => {
                        let value = parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("bad .o directive"))?;
                        if num_outputs.replace(value).is_some() {
                            return Err(err("duplicate .o directive"));
                        }
                    }
                    Some("ilb") => {
                        let names = parts.map(str::to_string).collect();
                        if input_names.replace((names, lineno + 1)).is_some() {
                            return Err(err("duplicate .ilb directive"));
                        }
                    }
                    Some("ob") => {
                        let names = parts.map(str::to_string).collect();
                        if output_names.replace((names, lineno + 1)).is_some() {
                            return Err(err("duplicate .ob directive"));
                        }
                    }
                    Some("p") => {
                        let value = parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("bad .p directive"))?;
                        if term_count.replace((value, lineno + 1)).is_some() {
                            return Err(err("duplicate .p directive"));
                        }
                    }
                    Some("e") | Some("end") => {}
                    Some(other) => {
                        return Err(err(&format!("unknown directive .{other}")));
                    }
                    None => return Err(err("empty directive")),
                }
                continue;
            }
            // A term row: input part then output part.
            let ni = num_inputs.ok_or_else(|| err("term row before .i"))?;
            let no = num_outputs.ok_or_else(|| err("term row before .o"))?;
            let compact: String = line.split_whitespace().collect();
            if compact.len() != ni + no {
                return Err(err(&format!(
                    "row has {} characters, expected {}",
                    compact.len(),
                    ni + no
                )));
            }
            let cube = Cube::parse(&compact[..ni]).map_err(|e| err(&e.to_string()))?;
            let outs = compact[ni..]
                .chars()
                .map(OutBit::from_char)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| err(&e.to_string()))?;
            rows.push((cube, outs));
        }

        let ni = num_inputs.ok_or(LogicError::ParsePla {
            line: 0,
            message: "missing .i directive".into(),
        })?;
        let no = num_outputs.ok_or(LogicError::ParsePla {
            line: 0,
            message: "missing .o directive".into(),
        })?;
        if let Some((count, line)) = term_count {
            if count != rows.len() {
                return Err(LogicError::ParsePla {
                    line,
                    message: format!(
                        ".p declares {count} product terms but {} term rows follow",
                        rows.len()
                    ),
                });
            }
        }
        let mut t = TruthTable::new(ni, no);
        if let Some((names, line)) = input_names {
            if names.len() != ni {
                return Err(LogicError::ParsePla {
                    line,
                    message: format!(".ilb names {} inputs but .i declares {ni}", names.len()),
                });
            }
            t.input_names = names;
        }
        if let Some((names, line)) = output_names {
            if names.len() != no {
                return Err(LogicError::ParsePla {
                    line,
                    message: format!(".ob names {} outputs but .o declares {no}", names.len()),
                });
            }
            t.output_names = names;
        }
        t.rows = rows;
        Ok(t)
    }

    /// Writes the table in PLA text format.
    pub fn to_pla_string(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, ".i {}", self.num_inputs);
        let _ = writeln!(s, ".o {}", self.num_outputs);
        let _ = writeln!(s, ".ilb {}", self.input_names.join(" "));
        let _ = writeln!(s, ".ob {}", self.output_names.join(" "));
        let _ = writeln!(s, ".p {}", self.rows.len());
        for (cube, outs) in &self.rows {
            let o: String = outs.iter().map(|b| b.to_char()).collect();
            let _ = writeln!(s, "{cube} {o}");
        }
        s.push_str(".e\n");
        s
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "truth table ({} in, {} out, {} rows)",
            self.num_inputs,
            self.num_outputs,
            self.rows.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pla_roundtrip() {
        let text = ".i 3\n.o 2\n.ilb a b c\n.ob f g\n.p 2\n1-0 10\n-11 01\n.e\n";
        let t = TruthTable::parse_pla(text).unwrap();
        assert_eq!(t.num_inputs(), 3);
        assert_eq!(t.num_outputs(), 2);
        assert_eq!(t.input_names(), ["a", "b", "c"]);
        assert_eq!(t.rows().len(), 2);
        let again = TruthTable::parse_pla(&t.to_pla_string()).unwrap();
        assert_eq!(t, again);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n.i 1\n.o 1\n\n1 1  # term\n.e\n";
        let t = TruthTable::parse_pla(text).unwrap();
        assert_eq!(t.rows().len(), 1);
    }

    #[test]
    fn bad_rows_diagnosed_with_line() {
        let text = ".i 2\n.o 1\n111 1\n";
        let err = TruthTable::parse_pla(text).unwrap_err();
        assert!(matches!(err, LogicError::ParsePla { line: 3, .. }), "{err}");
    }

    #[test]
    fn missing_directives_rejected() {
        assert!(TruthTable::parse_pla("11 1\n").is_err());
        assert!(TruthTable::parse_pla(".i 2\n").is_err());
    }

    #[test]
    fn covers_by_output() {
        let text = ".i 2\n.o 2\n11 10\n10 -1\n01 01\n.e\n";
        let t = TruthTable::parse_pla(text).unwrap();
        let on0 = t.on_cover(0).unwrap();
        assert_eq!(on0.len(), 1);
        // Output 1 is On in rows 2 and 3; output 0 is DontCare in row 2.
        let on1 = t.on_cover(1).unwrap();
        assert_eq!(on1.len(), 2);
        let dc0 = t.dc_cover(0).unwrap();
        assert_eq!(dc0.len(), 1);
        assert!(t.dc_cover(1).unwrap().is_empty());
        assert!(t.on_cover(2).is_err());
    }

    #[test]
    fn eval_three_states() {
        let text = ".i 2\n.o 1\n11 1\n10 -\n.e\n";
        let t = TruthTable::parse_pla(text).unwrap();
        assert_eq!(t.eval(0, 0b11).unwrap(), Some(true));
        assert_eq!(t.eval(0, 0b10).unwrap(), None);
        assert_eq!(t.eval(0, 0b00).unwrap(), Some(false));
    }

    #[test]
    fn from_fn_builds_parity() {
        let t = TruthTable::from_fn(3, 1, |m| {
            vec![if m.count_ones() % 2 == 1 {
                OutBit::On
            } else {
                OutBit::Off
            }]
        });
        // Odd-parity of 3 inputs has 4 ON minterms.
        assert_eq!(t.rows().len(), 4);
        assert_eq!(t.eval(0, 0b111).unwrap(), Some(true));
        assert_eq!(t.eval(0, 0b110).unwrap(), Some(false));
    }

    #[test]
    fn push_row_validates() {
        let mut t = TruthTable::new(2, 1);
        assert!(t
            .push_row(Cube::parse("111").unwrap(), vec![OutBit::On])
            .is_err());
        assert!(t
            .push_row(Cube::parse("11").unwrap(), vec![OutBit::On, OutBit::On])
            .is_err());
        assert!(t
            .push_row(Cube::parse("11").unwrap(), vec![OutBit::On])
            .is_ok());
    }

    #[test]
    fn p_count_mismatch_rejected() {
        let text = ".i 2\n.o 1\n.p 3\n11 1\n10 1\n.e\n";
        let err = TruthTable::parse_pla(text).unwrap_err();
        assert!(matches!(err, LogicError::ParsePla { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("3 product terms"));
        // A correct .p count still parses.
        let ok = ".i 2\n.o 1\n.p 2\n11 1\n10 1\n.e\n";
        assert_eq!(TruthTable::parse_pla(ok).unwrap().rows().len(), 2);
    }

    #[test]
    fn ilb_ob_arity_mismatch_rejected() {
        let bad_ilb = ".i 3\n.o 1\n.ilb a b\n1-0 1\n.e\n";
        let err = TruthTable::parse_pla(bad_ilb).unwrap_err();
        assert!(matches!(err, LogicError::ParsePla { line: 3, .. }), "{err}");
        assert!(err.to_string().contains(".ilb"));
        let bad_ob = ".i 2\n.o 1\n.ob f g\n11 1\n.e\n";
        let err = TruthTable::parse_pla(bad_ob).unwrap_err();
        assert!(matches!(err, LogicError::ParsePla { line: 3, .. }), "{err}");
        assert!(err.to_string().contains(".ob"));
    }

    #[test]
    fn duplicate_directives_rejected() {
        for (text, what) in [
            (".i 2\n.i 3\n.o 1\n11 1\n.e\n", ".i"),
            (".i 2\n.o 1\n.o 2\n11 1\n.e\n", ".o"),
            (".i 2\n.o 1\n.ilb a b\n.ilb c d\n11 1\n.e\n", ".ilb"),
            (".i 2\n.o 1\n.ob f\n.ob g\n11 1\n.e\n", ".ob"),
            (".i 2\n.o 1\n.p 1\n.p 1\n11 1\n.e\n", ".p"),
        ] {
            let err = TruthTable::parse_pla(text).unwrap_err();
            assert!(
                err.to_string().contains(&format!("duplicate {what}")),
                "{text:?}: {err}"
            );
        }
    }

    #[test]
    fn bad_p_directive_rejected() {
        let err = TruthTable::parse_pla(".i 1\n.o 1\n.p many\n1 1\n.e\n").unwrap_err();
        assert!(matches!(err, LogicError::ParsePla { line: 3, .. }), "{err}");
    }

    #[test]
    fn names_applied() {
        let t = TruthTable::new(2, 1).with_names(&["a", "b"], &["f"]);
        assert_eq!(t.output_names(), ["f"]);
        assert!(t.to_pla_string().contains(".ilb a b"));
    }
}
