//! Benchmark functions for the PLA-programming experiments (E4/E5).
//!
//! These are the kinds of "regular blocks programmed for specific
//! functions" the paper describes: combinational utility functions, code
//! converters and the next-state logic of a small controller — the
//! Mead–Conway traffic-light machine, the canonical 1978 PLA example.

use crate::{OutBit, TruthTable};

fn bit(b: bool) -> OutBit {
    if b {
        OutBit::On
    } else {
        OutBit::Off
    }
}

/// Extracts input `i` (0 = MSB) of an `n`-input minterm.
fn input(m: u64, n: usize, i: usize) -> bool {
    (m >> (n - 1 - i)) & 1 == 1
}

/// Majority function of `n` inputs: high when more than half are high.
///
/// # Panics
///
/// Panics when `n == 0` or `n > 16`.
pub fn majority(n: usize) -> TruthTable {
    assert!(n > 0 && n <= 16);
    TruthTable::from_fn(n, 1, |m| vec![bit(m.count_ones() as usize * 2 > n)]).with_names(
        &(0..n)
            .map(|i| format!("a{i}"))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
        &["maj"],
    )
}

/// Odd-parity function of `n` inputs.
///
/// # Panics
///
/// Panics when `n == 0` or `n > 16`.
pub fn parity(n: usize) -> TruthTable {
    assert!(n > 0 && n <= 16);
    TruthTable::from_fn(n, 1, |m| vec![bit(m.count_ones() % 2 == 1)])
}

/// Full `n`-to-2ⁿ one-hot decoder.
///
/// # Panics
///
/// Panics when `n == 0` or `n > 8`.
pub fn decoder(n: usize) -> TruthTable {
    assert!(n > 0 && n <= 8);
    let outs = 1usize << n;
    TruthTable::from_fn(n, outs, move |m| {
        (0..outs).map(|o| bit(o as u64 == m)).collect()
    })
}

/// BCD to seven-segment decoder (segments `a`..`g`, active high), with the
/// six unused codes 10–15 as don't-cares — the textbook don't-care
/// exploitation example.
pub fn bcd_to_seven_segment() -> TruthTable {
    // Segment patterns for digits 0-9: (a, b, c, d, e, f, g).
    const SEGMENTS: [u8; 10] = [
        0b1111110, // 0
        0b0110000, // 1
        0b1101101, // 2
        0b1111001, // 3
        0b0110011, // 4
        0b1011011, // 5
        0b1011111, // 6
        0b1110000, // 7
        0b1111111, // 8
        0b1111011, // 9
    ];
    TruthTable::from_fn(4, 7, |m| {
        if m < 10 {
            let pat = SEGMENTS[m as usize];
            (0..7).map(|s| bit((pat >> (6 - s)) & 1 == 1)).collect()
        } else {
            vec![OutBit::DontCare; 7]
        }
    })
    .with_names(
        &["b3", "b2", "b1", "b0"],
        &["sa", "sb", "sc", "sd", "se", "sf", "sg"],
    )
}

/// Ripple-carry adder slice array flattened into two-level logic:
/// `2n + 1` inputs (`a[n-1..0]`, `b[n-1..0]`, `cin`) and `n + 1` outputs
/// (`cout`, `sum[n-1..0]`).
///
/// # Panics
///
/// Panics when `n == 0` or `2n + 1 > 16`.
pub fn adder(n: usize) -> TruthTable {
    assert!(n > 0 && 2 * n < 16);
    let ni = 2 * n + 1;
    TruthTable::from_fn(ni, n + 1, move |m| {
        // Inputs (MSB first): a[n-1] .. a[0], b[n-1] .. b[0], cin.
        let mut a = 0u64;
        let mut b = 0u64;
        for i in 0..n {
            if input(m, ni, i) {
                a |= 1 << (n - 1 - i);
            }
            if input(m, ni, n + i) {
                b |= 1 << (n - 1 - i);
            }
        }
        let cin = u64::from(input(m, ni, 2 * n));
        let total = a + b + cin;
        let mut outs = Vec::with_capacity(n + 1);
        outs.push(bit(total >> n & 1 == 1)); // cout
        for i in (0..n).rev() {
            outs.push(bit(total >> i & 1 == 1));
        }
        outs
    })
}

/// The Mead–Conway traffic-light controller: next-state and output logic
/// of a four-state Moore/Mealy hybrid FSM for a highway/farm-road
/// intersection.
///
/// Inputs (MSB first): `c` (car on farm road), `tl` (long-timer expired),
/// `ts` (short-timer expired), `s1 s0` (current state).
/// Outputs: `ns1 ns0` (next state), `st` (start timer), `h1 h0` (highway
/// light), `f1 f0` (farm light). Light encoding: green 00, yellow 01,
/// red 10. States: HG=00, HY=01, FG=11, FY=10.
pub fn traffic_light() -> TruthTable {
    const GREEN: u64 = 0b00;
    const YELLOW: u64 = 0b01;
    const RED: u64 = 0b10;
    const HG: u64 = 0b00;
    const HY: u64 = 0b01;
    const FG: u64 = 0b11;
    const FY: u64 = 0b10;
    TruthTable::from_fn(5, 7, |m| {
        let c = input(m, 5, 0);
        let tl = input(m, 5, 1);
        let ts = input(m, 5, 2);
        let state = (u64::from(input(m, 5, 3)) << 1) | u64::from(input(m, 5, 4));
        let (next, st) = match state {
            HG => {
                if c && tl {
                    (HY, true)
                } else {
                    (HG, false)
                }
            }
            HY => {
                if ts {
                    (FG, true)
                } else {
                    (HY, false)
                }
            }
            FG => {
                if !c || tl {
                    (FY, true)
                } else {
                    (FG, false)
                }
            }
            FY => {
                if ts {
                    (HG, true)
                } else {
                    (FY, false)
                }
            }
            _ => unreachable!(),
        };
        let (h, f) = match state {
            HG => (GREEN, RED),
            HY => (YELLOW, RED),
            FG => (RED, GREEN),
            FY => (RED, YELLOW),
            _ => unreachable!(),
        };
        vec![
            bit(next >> 1 & 1 == 1),
            bit(next & 1 == 1),
            bit(st),
            bit(h >> 1 & 1 == 1),
            bit(h & 1 == 1),
            bit(f >> 1 & 1 == 1),
            bit(f & 1 == 1),
        ]
    })
    .with_names(
        &["c", "tl", "ts", "s1", "s0"],
        &["ns1", "ns0", "st", "h1", "h0", "f1", "f0"],
    )
}

/// The standard benchmark suite swept by experiment E4, as
/// `(name, table)` pairs.
pub fn benchmark_suite() -> Vec<(&'static str, TruthTable)> {
    vec![
        ("maj5", majority(5)),
        ("parity4", parity(4)),
        ("decoder3", decoder(3)),
        ("bcd7seg", bcd_to_seven_segment()),
        ("adder2", adder(2)),
        ("traffic", traffic_light()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimize_exact;

    #[test]
    fn majority_is_symmetric() {
        let t = majority(3);
        assert_eq!(t.eval(0, 0b110).unwrap(), Some(true));
        assert_eq!(t.eval(0, 0b101).unwrap(), Some(true));
        assert_eq!(t.eval(0, 0b011).unwrap(), Some(true));
        assert_eq!(t.eval(0, 0b100).unwrap(), Some(false));
        assert_eq!(t.eval(0, 0b111).unwrap(), Some(true));
        assert_eq!(t.eval(0, 0b000).unwrap(), Some(false));
    }

    #[test]
    fn majority3_minimizes_to_three_terms() {
        let t = majority(3);
        let min = minimize_exact(&t.on_cover(0).unwrap(), &t.dc_cover(0).unwrap()).unwrap();
        assert_eq!(min.len(), 3); // ab + ac + bc
    }

    #[test]
    fn parity_has_no_minimization() {
        // Parity is the worst case for two-level logic: already minimal.
        let t = parity(4);
        let on = t.on_cover(0).unwrap();
        let min = minimize_exact(&on, &t.dc_cover(0).unwrap()).unwrap();
        assert_eq!(min.len(), 8);
        assert_eq!(on.len(), 8);
    }

    #[test]
    fn decoder_outputs_are_one_hot() {
        let t = decoder(3);
        assert_eq!(t.num_outputs(), 8);
        for m in 0..8u64 {
            for o in 0..8usize {
                assert_eq!(
                    t.eval(o, m).unwrap(),
                    Some(o as u64 == m),
                    "decoder({o}) at {m}"
                );
            }
        }
    }

    #[test]
    fn bcd7seg_has_dont_cares() {
        let t = bcd_to_seven_segment();
        // Digit 8 lights all segments.
        for s in 0..7usize {
            assert_eq!(t.eval(s, 8).unwrap(), Some(true));
        }
        // Digit 1 lights only b and c.
        assert_eq!(t.eval(0, 1).unwrap(), Some(false));
        assert_eq!(t.eval(1, 1).unwrap(), Some(true));
        assert_eq!(t.eval(2, 1).unwrap(), Some(true));
        // Codes above 9 are unconstrained.
        assert_eq!(t.eval(0, 12).unwrap(), None);
    }

    #[test]
    fn adder_is_correct() {
        let t = adder(2);
        // a=3 (11), b=1 (01), cin=1 -> 5 = cout 1, sum 01.
        #[allow(clippy::unusual_byte_groupings)] // grouped as a|b|cin fields
        let m = 0b11_01_1u64;
        assert_eq!(t.eval(0, m).unwrap(), Some(true)); // cout
        assert_eq!(t.eval(1, m).unwrap(), Some(false)); // sum1
        assert_eq!(t.eval(2, m).unwrap(), Some(true)); // sum0
    }

    #[test]
    fn traffic_light_transitions() {
        let t = traffic_light();
        // In HG with car and long timer: go to HY, start timer.
        // Inputs c=1 tl=1 ts=0 s=00 -> minterm 11000.
        let m = 0b11000u64;
        assert_eq!(t.eval(0, m).unwrap(), Some(false)); // ns1
        assert_eq!(t.eval(1, m).unwrap(), Some(true)); // ns0 -> HY
        assert_eq!(t.eval(2, m).unwrap(), Some(true)); // st
                                                       // Highway green (00), farm red (10) while in HG.
        assert_eq!(t.eval(3, m).unwrap(), Some(false));
        assert_eq!(t.eval(4, m).unwrap(), Some(false));
        assert_eq!(t.eval(5, m).unwrap(), Some(true));
        assert_eq!(t.eval(6, m).unwrap(), Some(false));
        // In HG without car: stay.
        let m = 0b01000u64;
        assert_eq!(t.eval(0, m).unwrap(), Some(false));
        assert_eq!(t.eval(1, m).unwrap(), Some(false));
        assert_eq!(t.eval(2, m).unwrap(), Some(false));
    }

    #[test]
    fn suite_is_nonempty_and_named() {
        let suite = benchmark_suite();
        assert!(suite.len() >= 6);
        for (name, t) in &suite {
            assert!(!name.is_empty());
            assert!(t.num_inputs() > 0);
            assert!(!t.rows().is_empty());
        }
    }
}
