use std::error::Error;
use std::fmt;

/// Error produced by logic-manipulation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A cube's width did not match the cover it was used with.
    WidthMismatch {
        /// Width the cover expects.
        expected: usize,
        /// Width that was supplied.
        found: usize,
    },
    /// A cube string contained a character other than `0`, `1`, `-`.
    ParseCube {
        /// The offending character.
        found: char,
    },
    /// A PLA-format file was malformed.
    ParsePla {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Exact minimization was asked for a function too wide to enumerate.
    TooWideForExact {
        /// Number of inputs requested.
        inputs: usize,
        /// Maximum supported.
        max: usize,
    },
    /// An input index was out of range.
    BadInputIndex {
        /// The index used.
        index: usize,
        /// Number of inputs available.
        inputs: usize,
    },
    /// An internal cover invariant was violated (for example, exact
    /// covering found an ON minterm with no covering prime). Surfaced as
    /// an error so a malformed cover degrades a request instead of
    /// panicking a worker.
    CoverInvariant {
        /// Which invariant failed.
        detail: String,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::WidthMismatch { expected, found } => {
                write!(
                    f,
                    "cube width {found} does not match cover width {expected}"
                )
            }
            LogicError::ParseCube { found } => {
                write!(f, "invalid cube character `{found}` (expected 0, 1 or -)")
            }
            LogicError::ParsePla { line, message } => {
                write!(f, "PLA parse error on line {line}: {message}")
            }
            LogicError::TooWideForExact { inputs, max } => {
                write!(
                    f,
                    "exact minimization supports at most {max} inputs, got {inputs}"
                )
            }
            LogicError::BadInputIndex { index, inputs } => {
                write!(f, "input index {index} out of range for {inputs} inputs")
            }
            LogicError::CoverInvariant { detail } => {
                write!(f, "cover invariant violated: {detail}")
            }
        }
    }
}

impl Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_have_detail() {
        let e = LogicError::WidthMismatch {
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LogicError>();
    }
}
