use crate::{Cube, Lit, LogicError};
use std::fmt;

/// A sum of products: a set of [`Cube`]s over a fixed number of inputs.
///
/// Covers are the function representation the PLA generator programs into
/// silicon, and the object the minimizers shrink. All cubes in a cover
/// share the cover's width (validated at construction).
///
/// # Example
///
/// ```
/// use silc_logic::{Cover, Cube};
/// let f = Cover::from_cubes(2, vec![Cube::parse("1-")?, Cube::parse("-1")?])?;
/// assert!(f.eval(0b10));
/// assert!(f.eval(0b01));
/// assert!(!f.eval(0b00));
/// # Ok::<(), silc_logic::LogicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    num_inputs: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant false) over `n` inputs.
    pub fn empty(n: usize) -> Cover {
        Cover {
            num_inputs: n,
            cubes: Vec::new(),
        }
    }

    /// The universal cover (constant true) over `n` inputs.
    pub fn tautology_cover(n: usize) -> Cover {
        Cover {
            num_inputs: n,
            cubes: vec![Cube::universe(n)],
        }
    }

    /// Creates a cover from cubes, validating widths.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::WidthMismatch`] if any cube's width differs
    /// from `n`.
    pub fn from_cubes(n: usize, cubes: Vec<Cube>) -> Result<Cover, LogicError> {
        for c in &cubes {
            if c.width() != n {
                return Err(LogicError::WidthMismatch {
                    expected: n,
                    found: c.width(),
                });
            }
        }
        Ok(Cover {
            num_inputs: n,
            cubes,
        })
    }

    /// Builds a cover from a list of minterms.
    pub fn from_minterms(n: usize, minterms: &[u64]) -> Cover {
        Cover {
            num_inputs: n,
            cubes: minterms.iter().map(|&m| Cube::from_minterm(n, m)).collect(),
        }
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of product terms.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True for the constant-false cover.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The product terms.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Adds a cube.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::WidthMismatch`] on width disagreement.
    pub fn push(&mut self, cube: Cube) -> Result<(), LogicError> {
        if cube.width() != self.num_inputs {
            return Err(LogicError::WidthMismatch {
                expected: self.num_inputs,
                found: cube.width(),
            });
        }
        self.cubes.push(cube);
        Ok(())
    }

    /// Total specified literals across all cubes — proportional to PLA
    /// AND-plane transistor count.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Evaluates the function on a minterm.
    pub fn eval(&self, minterm: u64) -> bool {
        self.cubes.iter().any(|c| c.covers_minterm(minterm))
    }

    /// The cofactor of the cover with respect to `cube`: the function
    /// restricted to the subspace where `cube`'s literals hold, expressed
    /// over the remaining (freed) inputs.
    pub fn cofactor(&self, cube: &Cube) -> Cover {
        let mut out = Vec::new();
        'next: for c in &self.cubes {
            let mut lits = Vec::with_capacity(self.num_inputs);
            for i in 0..self.num_inputs {
                let (a, b) = (c.lit(i), cube.lit(i));
                match (a, b) {
                    (Lit::Zero, Lit::One) | (Lit::One, Lit::Zero) => continue 'next,
                    (_, Lit::Zero) | (_, Lit::One) => lits.push(Lit::DontCare),
                    (x, Lit::DontCare) => lits.push(x),
                }
            }
            out.push(Cube::from_lits(lits));
        }
        Cover {
            num_inputs: self.num_inputs,
            cubes: out,
        }
    }

    /// True when the cover is a tautology (covers every minterm), by
    /// recursive Shannon expansion on the most binate variable with unate
    /// short-cuts.
    pub fn is_tautology(&self) -> bool {
        // Quick exits.
        if self.cubes.iter().any(|c| c.literal_count() == 0) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        match self.most_binate_variable() {
            Some(i) => {
                let one = self.cofactor(&Cube::universe(self.num_inputs).with_lit(i, Lit::One));
                if !one.is_tautology() {
                    return false;
                }
                let zero = self.cofactor(&Cube::universe(self.num_inputs).with_lit(i, Lit::Zero));
                zero.is_tautology()
            }
            None => {
                // Unate cover: tautology iff it contains the universal
                // cube, which the quick exit above already checked.
                false
            }
        }
    }

    /// The variable appearing most often in both polarities, if any.
    fn most_binate_variable(&self) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (count, index)
        for i in 0..self.num_inputs {
            let zeros = self.cubes.iter().filter(|c| c.lit(i) == Lit::Zero).count();
            let ones = self.cubes.iter().filter(|c| c.lit(i) == Lit::One).count();
            if zeros > 0 && ones > 0 {
                let count = zeros + ones;
                if best.is_none_or(|(c, _)| count > c) {
                    best = Some((count, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// True when the cover covers every minterm of `cube` (single-cube
    /// containment): the cofactor with respect to the cube is a tautology.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        self.cofactor(cube).is_tautology()
    }

    /// True when `self` covers every minterm of `other`.
    pub fn covers(&self, other: &Cover) -> bool {
        other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// Functional equivalence.
    pub fn equivalent(&self, other: &Cover) -> bool {
        self.covers(other) && other.covers(self)
    }

    /// Removes cubes contained in a single other cube (cheap cleanup, not
    /// full irredundancy).
    pub fn remove_single_cube_contained(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        // Larger cubes first so small ones get absorbed.
        let mut sorted = cubes;
        sorted.sort_by_key(|c| c.literal_count());
        for c in sorted {
            if !kept.iter().any(|k| k.covers_cube(&c)) {
                kept.push(c);
            }
        }
        self.cubes = kept;
    }

    /// All minterms of the function, for small `n`.
    ///
    /// # Panics
    ///
    /// Panics when `num_inputs > 24` (4 M minterm scan) to protect callers
    /// from accidental exponential blowups.
    pub fn minterms(&self) -> Vec<u64> {
        assert!(
            self.num_inputs <= 24,
            "minterm enumeration is limited to 24 inputs"
        );
        (0..(1u64 << self.num_inputs))
            .filter(|&m| self.eval(m))
            .collect()
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover, taking the width from the first cube
    /// (an empty iterator gives a zero-input constant-false cover).
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let n = cubes.first().map_or(0, Cube::width);
        Cover {
            num_inputs: n,
            cubes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cover(n: usize, cubes: &[&str]) -> Cover {
        Cover::from_cubes(n, cubes.iter().map(|s| Cube::parse(s).unwrap()).collect()).unwrap()
    }

    #[test]
    fn width_validation() {
        assert!(Cover::from_cubes(3, vec![Cube::parse("10").unwrap()]).is_err());
        let mut c = Cover::empty(2);
        assert!(c.push(Cube::parse("101").unwrap()).is_err());
        assert!(c.push(Cube::parse("10").unwrap()).is_ok());
    }

    #[test]
    fn eval_matches_cubes() {
        let f = cover(3, &["1--", "-11"]);
        assert!(f.eval(0b100));
        assert!(f.eval(0b011));
        assert!(!f.eval(0b010));
    }

    #[test]
    fn tautology_base_cases() {
        assert!(Cover::tautology_cover(3).is_tautology());
        assert!(!Cover::empty(3).is_tautology());
        // x + x' is a tautology.
        assert!(cover(1, &["0", "1"]).is_tautology());
        // x + y is not.
        assert!(!cover(2, &["1-", "-1"]).is_tautology());
    }

    #[test]
    fn tautology_needs_shannon() {
        // a'b' + a'b + ab' + ab = 1 : requires recursion, no universal cube.
        assert!(cover(2, &["00", "01", "10", "11"]).is_tautology());
        // Missing one minterm: not a tautology.
        assert!(!cover(2, &["00", "01", "10"]).is_tautology());
        // Classic 3-var: a + a'b + a'b' = 1.
        assert!(cover(3, &["1--", "01-", "00-"]).is_tautology());
    }

    #[test]
    fn cofactor_restricts() {
        let f = cover(3, &["1-0", "01-"]);
        // Cofactor by a=1: first cube survives with a freed; second drops.
        let fa = f.cofactor(&Cube::parse("1--").unwrap());
        assert_eq!(fa.len(), 1);
        assert_eq!(fa.cubes()[0].to_string(), "--0");
    }

    #[test]
    fn covers_cube_by_multiple_cubes() {
        // f = ab + ab' covers the cube a (no single cube does).
        let f = cover(2, &["11", "10"]);
        assert!(f.covers_cube(&Cube::parse("1-").unwrap()));
        assert!(!f.covers_cube(&Cube::parse("-1").unwrap()));
    }

    #[test]
    fn equivalence() {
        let f = cover(2, &["11", "10"]);
        let g = cover(2, &["1-"]);
        assert!(f.equivalent(&g));
        let h = cover(2, &["-1"]);
        assert!(!f.equivalent(&h));
    }

    #[test]
    fn single_cube_containment_cleanup() {
        let mut f = cover(3, &["1--", "110", "101", "0-1"]);
        f.remove_single_cube_contained();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn minterm_listing() {
        let f = cover(2, &["1-"]);
        assert_eq!(f.minterms(), vec![0b10, 0b11]);
        assert_eq!(Cover::empty(2).minterms(), Vec::<u64>::new());
    }

    #[test]
    fn from_minterms_roundtrip() {
        let f = Cover::from_minterms(3, &[0b000, 0b101, 0b111]);
        assert_eq!(f.minterms(), vec![0b000, 0b101, 0b111]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(cover(2, &["1-", "01"]).to_string(), "1- + 01");
        assert_eq!(Cover::empty(2).to_string(), "0");
    }

    fn arb_cover(n: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
        prop::collection::vec(prop::collection::vec(0u8..3, n), 0..max_cubes).prop_map(
            move |cubes| {
                Cover::from_cubes(
                    n,
                    cubes
                        .into_iter()
                        .map(|v| {
                            Cube::from_lits(
                                v.into_iter()
                                    .map(|x| match x {
                                        0 => Lit::Zero,
                                        1 => Lit::One,
                                        _ => Lit::DontCare,
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                )
                .unwrap()
            },
        )
    }

    proptest! {
        #[test]
        fn tautology_matches_enumeration(f in arb_cover(4, 8)) {
            let brute = (0..16u64).all(|m| f.eval(m));
            prop_assert_eq!(f.is_tautology(), brute);
        }

        #[test]
        fn covers_matches_enumeration(f in arb_cover(4, 6), g in arb_cover(4, 6)) {
            let brute = (0..16u64).all(|m| !g.eval(m) || f.eval(m));
            prop_assert_eq!(f.covers(&g), brute);
        }

        #[test]
        fn containment_cleanup_preserves_function(f in arb_cover(4, 8)) {
            let mut g = f.clone();
            g.remove_single_cube_contained();
            prop_assert!(f.equivalent(&g));
            prop_assert!(g.len() <= f.len());
        }
    }
}
