//! Exhaustive guarantees on small function spaces: for *every* 3-input
//! boolean function, the exact minimizer's cover is truly minimum (checked
//! against brute-force search over prime subsets), and the heuristic's is
//! valid.

use silc_logic::{minimize_exact, minimize_heuristic, prime_implicants, Cover};

/// Brute-force minimum cover size: try all subsets of primes by
/// increasing size until one covers the ON-set.
fn brute_minimum(on: &Cover) -> usize {
    let primes = prime_implicants(on, &Cover::empty(on.num_inputs())).unwrap();
    let minterms = on.minterms();
    if minterms.is_empty() {
        return 0;
    }
    let n = primes.len();
    for k in 1..=n {
        // Iterate all k-subsets via bitmasks (n is small for 3 vars).
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let covers_all = minterms
                .iter()
                .all(|&m| (0..n).any(|p| mask >> p & 1 == 1 && primes[p].covers_minterm(m)));
            if covers_all {
                return k;
            }
        }
    }
    n
}

#[test]
fn every_three_variable_function_minimizes_exactly() {
    for truth in 0u32..256 {
        let minterms: Vec<u64> = (0..8u64).filter(|&m| truth >> m & 1 == 1).collect();
        let on = Cover::from_minterms(3, &minterms);
        let exact = minimize_exact(&on, &Cover::empty(3)).unwrap();
        assert!(
            exact.equivalent(&on),
            "function {truth:08b}: exact cover wrong"
        );
        let best = brute_minimum(&on);
        assert_eq!(
            exact.len(),
            best,
            "function {truth:08b}: exact found {} terms, minimum is {best}",
            exact.len()
        );
        let heur = minimize_heuristic(&on, &Cover::empty(3)).unwrap();
        assert!(
            heur.equivalent(&on),
            "function {truth:08b}: heuristic wrong"
        );
        assert!(heur.len() >= best, "function {truth:08b}");
    }
}

#[test]
fn four_variable_sample_with_dont_cares() {
    // A structured sample of 4-variable functions with don't-care sets:
    // exact must stay within on ∪ dc and cover on, and never exceed the
    // heuristic.
    for seed in 0u64..40 {
        let on_mask = seed.wrapping_mul(0x9E3779B97F4A7C15) & 0xFFFF;
        let dc_mask = (seed.wrapping_mul(0xBF58476D1CE4E5B9) >> 16) & 0xFFFF & !on_mask;
        let on: Vec<u64> = (0..16).filter(|&m| on_mask >> m & 1 == 1).collect();
        let dc: Vec<u64> = (0..16).filter(|&m| dc_mask >> m & 1 == 1).collect();
        let on = Cover::from_minterms(4, &on);
        let dc = Cover::from_minterms(4, &dc);
        let exact = minimize_exact(&on, &dc).unwrap();
        let heur = minimize_heuristic(&on, &dc).unwrap();
        for m in 0..16u64 {
            if on.eval(m) {
                assert!(exact.eval(m), "seed {seed} minterm {m}");
                assert!(heur.eval(m), "seed {seed} minterm {m}");
            } else if !dc.eval(m) {
                assert!(!exact.eval(m), "seed {seed} minterm {m} invented");
                assert!(!heur.eval(m), "seed {seed} minterm {m} invented");
            }
        }
        assert!(exact.len() <= heur.len(), "seed {seed}");
    }
}
