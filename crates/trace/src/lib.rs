//! # silc-trace — pipeline observability
//!
//! Gray's paper frames silicon compilation as a *programming environment*,
//! and a production compiler environment must tell its users where time
//! and area go. This crate is the measurement substrate for the whole
//! SILC pipeline: lightweight hierarchical **spans** (RAII wall-time
//! guards named like `"drc.spacing"`), monotonic **counters** (rects
//! indexed, PLA terms, cells elaborated, DRC violations, …), and
//! pluggable **sinks** that render a finished trace as a human summary
//! table or as a machine-readable JSONL event stream.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** A [`Tracer`] is an enum with a
//!    `Disabled` variant; every operation on the disabled path is a tag
//!    check and an immediate return — no clock read, no allocation, no
//!    lock. Pipeline stages therefore take a `&Tracer` unconditionally
//!    and the hot paths PR 2 optimized are unaffected.
//! 2. **Thread-safe.** Stages parallelised with rayon record events from
//!    worker threads; the enabled state sits behind a `Mutex` that is
//!    locked only at span *close* and counter flush, never inside
//!    per-rectangle loops (callers accumulate locally and flush in bulk).
//! 3. **Deterministic output.** Events are ordered by start time, then
//!    by name; counters are sorted by name. Two runs of the same design
//!    produce the same table modulo wall-clock jitter.
//!
//! # Example
//!
//! ```
//! use silc_trace::{span, Tracer};
//!
//! let tracer = Tracer::enabled();
//! {
//!     let _guard = span!(tracer, "drc.spacing");
//!     tracer.add("drc.spacing.queries", 42);
//! } // span closes here, recording its wall time
//! let report = tracer.finish();
//! assert_eq!(report.counter("drc.spacing.queries"), Some(42));
//! assert_eq!(report.spans().len(), 1);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Well-known counter names recorded by pipeline stages. Centralised so
/// producers (`silc-incr`) and consumers (the CLI's `--stats` smoke
/// tests, CI) agree on spelling.
pub mod names {
    /// Queries answered from cache (memory or disk) by `silc-incr`.
    pub const INCR_HIT: &str = "incr.hit";
    /// Queries that had to recompute.
    pub const INCR_MISS: &str = "incr.miss";
    /// Hits served by the in-memory store.
    pub const INCR_MEM_HIT: &str = "incr.mem_hit";
    /// Hits served by the persistent on-disk cache.
    pub const INCR_DISK_HIT: &str = "incr.disk_hit";
    /// Bytes written to the persistent cache.
    pub const INCR_STORE_BYTES: &str = "incr.store_bytes";
    /// In-memory entries evicted to respect the capacity bound.
    pub const INCR_EVICTIONS: &str = "incr.evictions";
    /// Disk-tier entries promoted (pinned) into the memory tier after
    /// crossing the touch threshold.
    pub const INCR_PROMOTED: &str = "incr.promoted";
    /// Connections accepted by `silc serve`.
    pub const SERVE_ACCEPT: &str = "serve.accept";
    /// Requests parsed and answered (any outcome) by `silc serve`.
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// High-water mark of the compute queue depth (max gauge).
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Requests that exceeded their deadline.
    pub const SERVE_TIMEOUT: &str = "serve.timeout";
    /// Requests rejected with `overloaded` because the queue was full.
    pub const SERVE_REJECTED: &str = "serve.rejected";
    /// Lines that failed to parse as a request.
    pub const SERVE_BAD_REQUEST: &str = "serve.bad_request";
    /// Jobs a worker stole from another worker's deque.
    pub const SERVE_STEAL: &str = "serve.steal";
    /// Requests routed to a worker already warm for their source hash.
    pub const SERVE_AFFINITY_HIT: &str = "serve.affinity_hit";
    /// Requests enqueued on the interactive lane.
    pub const SERVE_LANE_INTERACTIVE: &str = "serve.lane_interactive";
    /// Requests enqueued on the batch lane.
    pub const SERVE_LANE_BATCH: &str = "serve.lane_batch";
}

/// Opens a [`Span`] on a tracer: `span!(tracer, "stage.pass")`. The
/// returned RAII guard records wall time from the macro site to the end
/// of the enclosing scope (or an explicit `drop`).
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr) => {
        $tracer.span($name)
    };
}

/// A handle to the trace collector, threaded through every pipeline
/// stage. Cloning is cheap (an `Arc` bump when enabled, a tag copy when
/// disabled); clones share the same event stream.
#[derive(Debug, Clone, Default)]
pub enum Tracer {
    /// Collect nothing; every operation is a near-no-op.
    #[default]
    Disabled,
    /// Collect spans and counters into a shared buffer.
    Enabled(Arc<Collector>),
}

/// The shared mutable state behind an enabled [`Tracer`].
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    state: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanEvent>,
    counters: BTreeMap<&'static str, u64>,
}

/// One closed span: a named stretch of pipeline wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Dotted stage path, e.g. `"drc.spacing"`. The dots *are* the
    /// hierarchy: `"drc.spacing"` is a child of any `"drc"` span.
    pub name: &'static str,
    /// Start offset from the tracer's creation, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration, in microseconds.
    pub dur_us: u64,
    /// Numeric attributes attached while the span was open.
    pub attrs: Vec<(&'static str, u64)>,
}

impl Tracer {
    /// A tracer that records nothing. All operations return immediately.
    pub fn disabled() -> Tracer {
        Tracer::Disabled
    }

    /// A tracer that records spans and counters until [`finish`].
    ///
    /// [`finish`]: Tracer::finish
    pub fn enabled() -> Tracer {
        Tracer::Enabled(Arc::new(Collector {
            epoch: Instant::now(),
            state: Mutex::new(State::default()),
        }))
    }

    /// True when this tracer collects events.
    pub fn is_enabled(&self) -> bool {
        matches!(self, Tracer::Enabled(_))
    }

    /// Opens a named span. The guard records wall time when dropped.
    /// On a disabled tracer this does not even read the clock.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        match self {
            Tracer::Disabled => Span {
                collector: None,
                name,
                start: None,
                attrs: Vec::new(),
            },
            Tracer::Enabled(c) => Span {
                collector: Some(c),
                name,
                start: Some(Instant::now()),
                attrs: Vec::new(),
            },
        }
    }

    /// Adds `delta` to the monotonic counter `name`. Call with bulk
    /// totals after a loop, not per iteration — each call takes the
    /// collector lock when enabled.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Tracer::Enabled(c) = self {
            let mut state = c.state.lock().expect("trace state poisoned");
            *state.counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Records `value` into gauge `name`, keeping the maximum seen.
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        if let Tracer::Enabled(c) = self {
            let mut state = c.state.lock().expect("trace state poisoned");
            let slot = state.counters.entry(name).or_insert(0);
            *slot = (*slot).max(value);
        }
    }

    /// Snapshots everything recorded so far into a [`TraceReport`].
    /// Spans still open are not included. A disabled tracer yields an
    /// empty report.
    pub fn finish(&self) -> TraceReport {
        match self {
            Tracer::Disabled => TraceReport::default(),
            Tracer::Enabled(c) => {
                let state = c.state.lock().expect("trace state poisoned");
                let mut spans = state.spans.clone();
                spans.sort_by(|a, b| (a.start_us, a.name).cmp(&(b.start_us, b.name)));
                TraceReport {
                    spans,
                    counters: state.counters.iter().map(|(&k, &v)| (k, v)).collect(),
                }
            }
        }
    }
}

/// RAII span guard returned by [`Tracer::span`] / [`span!`]. Records a
/// [`SpanEvent`] when dropped (if the tracer was enabled).
#[must_use = "a span records nothing unless it lives across the timed region"]
#[derive(Debug)]
pub struct Span<'t> {
    collector: Option<&'t Arc<Collector>>,
    name: &'static str,
    start: Option<Instant>,
    attrs: Vec<(&'static str, u64)>,
}

impl Span<'_> {
    /// Attaches a numeric attribute to this span (e.g. how many rects a
    /// pass examined). No-op on a disabled tracer.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.collector.is_some() {
            self.attrs.push((key, value));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let (Some(c), Some(start)) = (self.collector, self.start) else {
            return;
        };
        let event = SpanEvent {
            name: self.name,
            start_us: start.duration_since(c.epoch).as_micros() as u64,
            dur_us: start.elapsed().as_micros() as u64,
            attrs: std::mem::take(&mut self.attrs),
        };
        c.state
            .lock()
            .expect("trace state poisoned")
            .spans
            .push(event);
    }
}

/// A finished, immutable trace: ordered span events plus final counter
/// values. Produced by [`Tracer::finish`], consumed by [`Sink`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    spans: Vec<SpanEvent>,
    counters: Vec<(&'static str, u64)>,
}

impl TraceReport {
    /// All closed spans, ordered by start time.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// The value of one counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Total wall time across spans whose name equals `name` or starts
    /// with `name.` — i.e. a stage and all its sub-passes.
    pub fn stage_us(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us)
            .sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Renders the human `--stats` summary: one row per distinct span
    /// name (aggregated over calls, ordered by first start), then the
    /// counters.
    pub fn stats_table(&self) -> String {
        let mut order: Vec<&'static str> = Vec::new();
        let mut calls: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            if !calls.contains_key(s.name) {
                order.push(s.name);
            }
            let slot = calls.entry(s.name).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += s.dur_us;
        }
        let name_w = order
            .iter()
            .map(|n| n.len())
            .chain(self.counters.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(5)
            .max("stage".len());

        let mut out = String::new();
        let _ = writeln!(out, "{:<name_w$}  {:>7}  {:>12}", "stage", "calls", "wall");
        for name in &order {
            let (n, us) = calls[name];
            let _ = writeln!(out, "{name:<name_w$}  {n:>7}  {:>12}", fmt_us(us));
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<name_w$}  {:>7}  {:>12}", "counter", "", "value");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{k:<name_w$}  {:>7}  {v:>12}", "");
            }
        }
        out
    }

    /// Renders the machine-readable JSONL stream: one JSON object per
    /// span event (`{"event":"span",...}`) and per counter
    /// (`{"event":"counter",...}`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = write!(
                out,
                "{{\"event\":\"span\",\"stage\":\"{}\",\"start_us\":{},\"dur_us\":{}",
                s.name, s.start_us, s.dur_us
            );
            for (k, v) in &s.attrs {
                let _ = write!(out, ",\"{k}\":{v}");
            }
            out.push_str("}\n");
        }
        for (k, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"event\":\"counter\",\"name\":\"{k}\",\"value\":{v}}}"
            );
        }
        out
    }

    /// Streams this report into `sink`.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn emit(&self, sink: &mut dyn Sink) -> io::Result<()> {
        sink.emit(self)
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} us")
    }
}

/// A destination for a finished trace. Implementations decide the
/// rendering; [`StatsSink`] and [`JsonlSink`] cover the CLI's `--stats`
/// and `--trace` flags, and tests plug in their own.
pub trait Sink {
    /// Writes the report to the sink's destination.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, if any.
    fn emit(&mut self, report: &TraceReport) -> io::Result<()>;
}

/// Human-readable summary-table sink (the `--stats` format).
pub struct StatsSink<W: io::Write> {
    writer: W,
}

impl<W: io::Write> StatsSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> StatsSink<W> {
        StatsSink { writer }
    }
}

impl<W: io::Write> Sink for StatsSink<W> {
    fn emit(&mut self, report: &TraceReport) -> io::Result<()> {
        self.writer.write_all(report.stats_table().as_bytes())
    }
}

/// JSONL event-stream sink (the `--trace <file>` format).
pub struct JsonlSink<W: io::Write> {
    writer: W,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink { writer }
    }
}

impl<W: io::Write> Sink for JsonlSink<W> {
    fn emit(&mut self, report: &TraceReport) -> io::Result<()> {
        self.writer.write_all(report.to_jsonl().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        {
            let mut s = span!(t, "a.b");
            s.attr("k", 1);
            t.add("c", 5);
        }
        assert!(t.finish().is_empty());
    }

    #[test]
    fn spans_nest_and_order_by_start() {
        let t = Tracer::enabled();
        {
            let _outer = span!(t, "drc");
            let _inner = span!(t, "drc.width");
        }
        let report = t.finish();
        let names: Vec<&str> = report.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["drc", "drc.width"]);
        // The parent span covers its child.
        assert!(report.stage_us("drc") >= report.stage_us("drc.width"));
    }

    #[test]
    fn counters_accumulate_and_gauges_max() {
        let t = Tracer::enabled();
        t.add("rects", 3);
        t.add("rects", 4);
        t.gauge_max("peak", 10);
        t.gauge_max("peak", 7);
        let report = t.finish();
        assert_eq!(report.counter("rects"), Some(7));
        assert_eq!(report.counter("peak"), Some(10));
        assert_eq!(report.counter("absent"), None);
    }

    #[test]
    fn clones_share_the_collector() {
        let t = Tracer::enabled();
        let u = t.clone();
        u.add("shared", 1);
        drop(span!(u, "stage"));
        let report = t.finish();
        assert_eq!(report.counter("shared"), Some(1));
        assert_eq!(report.spans().len(), 1);
    }

    #[test]
    fn spans_record_from_worker_threads() {
        let t = Tracer::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    let _s = span!(t, "par.unit");
                    t.add("par.work", 1);
                });
            }
        });
        let report = t.finish();
        assert_eq!(report.spans().len(), 4);
        assert_eq!(report.counter("par.work"), Some(4));
    }

    #[test]
    fn stats_table_aggregates_calls() {
        let t = Tracer::enabled();
        drop(span!(t, "cif.write"));
        drop(span!(t, "cif.write"));
        t.add("cif.bytes", 1234);
        let table = t.finish().stats_table();
        assert!(table.contains("stage"), "{table}");
        assert!(table.contains("cif.write"), "{table}");
        assert!(table.contains("cif.bytes"), "{table}");
        let row = table.lines().find(|l| l.contains("cif.write")).unwrap();
        assert!(row.contains('2'), "two calls aggregated: {row}");
    }

    #[test]
    fn jsonl_is_one_object_per_event() {
        let t = Tracer::enabled();
        {
            let mut s = span!(t, "lang.parse");
            s.attr("tokens", 99);
        }
        t.add("lang.cells", 2);
        let jsonl = t.finish().to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(jsonl.contains("\"stage\":\"lang.parse\""), "{jsonl}");
        assert!(jsonl.contains("\"tokens\":99"), "{jsonl}");
        assert!(jsonl.contains("\"event\":\"counter\""), "{jsonl}");
    }

    #[test]
    fn sinks_write_their_formats() {
        let t = Tracer::enabled();
        drop(span!(t, "stage.one"));
        let report = t.finish();
        let mut stats = Vec::new();
        StatsSink::new(&mut stats).emit(&report).unwrap();
        assert!(String::from_utf8(stats).unwrap().contains("stage.one"));
        let mut jsonl = Vec::new();
        JsonlSink::new(&mut jsonl).emit(&report).unwrap();
        assert!(String::from_utf8(jsonl).unwrap().starts_with('{'));
    }

    #[test]
    fn stage_us_sums_repeated_spans() {
        let t = Tracer::enabled();
        drop(span!(t, "x"));
        drop(span!(t, "x"));
        let report = t.finish();
        let total: u64 = report.spans().iter().map(|s| s.dur_us).sum();
        assert_eq!(report.stage_us("x"), total);
    }
}
