//! The compiled engine against the interpreter on the real workload: a
//! PDP-8 program running on the ISP behavioral description. Every
//! architectural register, all 4K of core, the state name, the cycle
//! count and the run report must match byte for byte.

use silc_exec::CompiledSim;
use silc_pdp8::{assemble, isp_machine, load_program_into_isl};
use silc_rtl::Simulator;

#[test]
fn pdp8_multiply_is_byte_identical_across_engines() {
    let program = assemble(
        "*200
                 cla cll
         loop,   tad product
                 tad six
                 dca product
                 isz count
                 jmp loop
                 cla
                 tad product
                 hlt
         six,    0006
         count,  7771          / -7
         product,0000",
    )
    .expect("assembles");

    let machine = isp_machine().expect("parses");
    let mut interp = Simulator::new(&machine);
    load_program_into_isl(&mut interp, &program);

    let mut comp = CompiledSim::from_machine(&machine);
    let mut image = vec![0u64; 4096];
    for &(addr, word) in &program.words {
        image[addr as usize] = u64::from(word);
    }
    comp.load_mem("m", &image).unwrap();
    comp.set_reg("pc", u64::from(program.start)).unwrap();

    let ra = interp.run(10_000).unwrap();
    let rb = comp.run(10_000).unwrap();
    assert_eq!(ra, rb);
    assert!(rb.halted, "program must reach HLT");

    for reg in ["pc", "ac", "l", "ir", "ma", "page"] {
        assert_eq!(interp.reg(reg), comp.reg(reg), "register {reg}");
    }
    assert_eq!(comp.reg("ac"), Some(42), "6 x 7");
    assert_eq!(interp.state_name(), comp.state_name());
    assert_eq!(interp.cycle(), comp.cycle());
    for addr in 0..4096u64 {
        assert_eq!(
            interp.mem_word("m", addr),
            comp.mem_word("m", addr),
            "core word {addr:o}"
        );
    }
}

#[test]
fn pdp8_switch_register_pokes_agree() {
    // OSR reads the console switches: poke them identically mid-run.
    let program = assemble("*200\ncla\nosr\nhlt\n").expect("assembles");
    let machine = isp_machine().expect("parses");

    let mut interp = Simulator::new(&machine);
    load_program_into_isl(&mut interp, &program);
    interp.set_input("sr", 0o1234).unwrap();

    let mut comp = CompiledSim::from_machine(&machine);
    let mut image = vec![0u64; 4096];
    for &(addr, word) in &program.words {
        image[addr as usize] = u64::from(word);
    }
    comp.load_mem("m", &image).unwrap();
    comp.set_reg("pc", u64::from(program.start)).unwrap();
    comp.set_input("sr", 0o1234).unwrap();

    assert_eq!(interp.run(100).unwrap(), comp.run(100).unwrap());
    assert_eq!(comp.reg("ac"), Some(0o1234));
    assert_eq!(interp.reg("ac"), comp.reg("ac"));
}
