//! Compiled-vs-interpreter trace equivalence.
//!
//! The interpreter ([`silc_rtl::Simulator`]) is the semantic oracle; the
//! compiled engine ([`silc_exec::CompiledSim`]) must be byte-identical to
//! it on every observable: run reports, registers, outputs, memory words,
//! state names, cycle counts, halt flags — and errors. A seeded generator
//! builds random-but-valid ISL machines, then both engines are driven with
//! identical stimulus (run segments interleaved with `set_input` /
//! `set_reg` / `load_mem` pokes), including machines that halt and
//! machines whose register-addressed memory operations trip
//! `AddressOutOfRange` at runtime.

use proptest::prelude::*;
use proptest::strategy::TestRng;
use silc_exec::CompiledSim;
use silc_rtl::{parse, Simulator};

/// The declarations of a generated machine, kept so the driver can poke
/// ports and compare every architectural element afterwards.
struct Spec {
    regs: Vec<(String, u32)>,
    inputs: Vec<(String, u32)>,
    outputs: Vec<(String, u32)>,
    mems: Vec<(String, u64)>,
    states: Vec<String>,
}

/// Deterministic machine/stimulus generator over a splitmix64 stream.
struct Gen {
    rng: TestRng,
}

const WIDTHS: [u32; 10] = [1, 2, 3, 4, 7, 8, 12, 16, 32, 63];
const BIN_OPS: [&str; 15] = [
    "+", "-", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=", ">", ">=", "&&", "||",
];

impl Gen {
    fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    fn width(&mut self) -> u32 {
        WIDTHS[self.below(WIDTHS.len() as u64) as usize]
    }

    fn reg<'a>(&mut self, s: &'a Spec) -> &'a (String, u32) {
        &s.regs[self.below(s.regs.len() as u64) as usize]
    }

    /// A literal or signal read.
    fn leaf(&mut self, s: &Spec) -> String {
        match self.below(4) {
            0 => {
                if self.chance(1, 2) {
                    format!("{}", self.below(10))
                } else {
                    format!("{}", self.below(1 << 16))
                }
            }
            1 if !s.inputs.is_empty() => s.inputs[self.below(s.inputs.len() as u64) as usize]
                .0
                .clone(),
            _ => self.reg(s).0.clone(),
        }
    }

    /// A memory address expression. Never a bare literal (the parser
    /// reads `m[3]` as a bit slice), and biased toward small values so
    /// most accesses land in range — but raw register forms stay in the
    /// mix so `AddressOutOfRange` genuinely fires at runtime.
    fn addr(&mut self, s: &Spec) -> String {
        match self.below(4) {
            0 => self.reg(s).0.clone(),
            1 => {
                let r = self.reg(s).0.clone();
                format!("({r} + {})", self.below(4))
            }
            2 => {
                let (name, w) = self.reg(s).clone();
                format!("{name}[{}:0]", 2.min(w - 1))
            }
            _ => format!("({})", self.below(8)),
        }
    }

    /// A concat part: always a slice no wider than 16 bits, so the total
    /// never reaches the 64-bit shift that both engines refuse. The base
    /// is OR-ed with zero so the parser cannot collapse it to a bare
    /// ident (whose slice bounds validation would then reject).
    fn concat_part(&mut self, s: &Spec, depth: u32) -> String {
        let lo = self.below(8) as u32;
        let hi = lo + self.below(12) as u32;
        let base = self.expr(s, depth);
        format!("({base} | 0)[{hi}:{lo}]")
    }

    fn expr(&mut self, s: &Spec, depth: u32) -> String {
        if depth == 0 || self.chance(1, 4) {
            return self.leaf(s);
        }
        match self.below(10) {
            0 => {
                let op = ["~", "-", "!"][self.below(3) as usize];
                format!("({op}{})", self.expr(s, depth - 1))
            }
            1..=4 => {
                let op = BIN_OPS[self.below(BIN_OPS.len() as u64) as usize];
                let a = self.expr(s, depth - 1);
                let b = self.expr(s, depth - 1);
                format!("({a} {op} {b})")
            }
            5 => {
                let (name, w) = self.reg(s).clone();
                let hi = self.below(u64::from(w)) as u32;
                let lo = self.below(u64::from(hi) + 1) as u32;
                format!("{name}[{hi}:{lo}]")
            }
            6 => {
                let lo = self.below(8) as u32;
                let hi = lo + self.below(12) as u32;
                format!("({} | 0)[{hi}:{lo}]", self.expr(s, depth - 1))
            }
            7 => {
                let mut parts = vec![self.concat_part(s, depth - 1)];
                for _ in 0..=self.below(2) {
                    parts.push(self.concat_part(s, depth - 1));
                }
                format!("{{{}}}", parts.join(", "))
            }
            8 if !s.mems.is_empty() => {
                let m = s.mems[self.below(s.mems.len() as u64) as usize].0.clone();
                format!("{m}[{}]", self.addr(s))
            }
            _ => {
                let (name, w) = self.reg(s).clone();
                format!("{name}[{}]", self.below(u64::from(w)))
            }
        }
    }

    fn assign(&mut self, s: &Spec, out: &mut String, ind: &str) {
        let value = self.expr(s, 3);
        match self.below(8) {
            4 => {
                let (name, w) = self.reg(s).clone();
                let hi = self.below(u64::from(w)) as u32;
                let lo = self.below(u64::from(hi) + 1) as u32;
                out.push_str(&format!("{ind}{name}[{hi}:{lo}] := {value};\n"));
            }
            5 if !s.outputs.is_empty() => {
                let o = s.outputs[self.below(s.outputs.len() as u64) as usize]
                    .0
                    .clone();
                out.push_str(&format!("{ind}{o} := {value};\n"));
            }
            6 | 7 if !s.mems.is_empty() => {
                let m = s.mems[self.below(s.mems.len() as u64) as usize].0.clone();
                let addr = self.addr(s);
                out.push_str(&format!("{ind}{m}[{addr}] := {value};\n"));
            }
            _ => {
                let r = self.reg(s).0.clone();
                out.push_str(&format!("{ind}{r} := {value};\n"));
            }
        }
    }

    fn stmt(&mut self, s: &Spec, depth: u32, out: &mut String, ind: &str) {
        match self.below(12) {
            6..=8 if depth > 0 => {
                let cond = self.expr(s, depth);
                out.push_str(&format!("{ind}if {cond} {{\n"));
                let deeper = format!("{ind}    ");
                for _ in 0..=self.below(2) {
                    self.stmt(s, depth - 1, out, &deeper);
                }
                if self.chance(1, 2) {
                    out.push_str(&format!("{ind}}} else {{\n"));
                    for _ in 0..=self.below(2) {
                        self.stmt(s, depth - 1, out, &deeper);
                    }
                }
                out.push_str(&format!("{ind}}}\n"));
            }
            9 => {
                let st = s.states[self.below(s.states.len() as u64) as usize].clone();
                out.push_str(&format!("{ind}goto {st};\n"));
            }
            10 => out.push_str(&format!("{ind}halt;\n")),
            _ => self.assign(s, out, ind),
        }
    }

    /// Generates a valid-by-construction ISL machine.
    fn machine(&mut self) -> (String, Spec) {
        let mut spec = Spec {
            regs: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            mems: Vec::new(),
            states: Vec::new(),
        };
        let mut src = String::from("machine fuzz {\n");
        for i in 0..1 + self.below(4) {
            let w = self.width();
            let init = self.below(1 << w.min(8));
            let name = format!("r{i}");
            src.push_str(&format!("    reg {name}[{w}] init {init};\n"));
            spec.regs.push((name, w));
        }
        for i in 0..self.below(3) {
            let w = self.width();
            let name = format!("i{i}");
            src.push_str(&format!("    port input {name}[{w}];\n"));
            spec.inputs.push((name, w));
        }
        for i in 0..self.below(3) {
            let w = self.width();
            let name = format!("o{i}");
            src.push_str(&format!("    port output {name}[{w}];\n"));
            spec.outputs.push((name, w));
        }
        for i in 0..[0, 1, 1, 2][self.below(4) as usize] {
            let words = 1 + self.below(8);
            let w = self.width();
            let name = format!("m{i}");
            src.push_str(&format!("    mem {name}[{words}][{w}];\n"));
            spec.mems.push((name, words));
        }
        for i in 0..1 + self.below(3) {
            spec.states.push(format!("s{i}"));
        }
        for i in 0..spec.states.len() {
            src.push_str(&format!("    state s{i} {{\n"));
            for _ in 0..1 + self.below(4) {
                self.stmt(&spec, 2, &mut src, "        ");
            }
            src.push_str("    }\n");
        }
        src.push_str("}\n");
        (src, spec)
    }
}

/// Compares every architectural element the two engines expose.
fn assert_same(
    spec: &Spec,
    src: &str,
    interp: &Simulator,
    comp: &CompiledSim,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(interp.cycle(), comp.cycle(), "cycle diverged\n{}", src);
    prop_assert_eq!(
        interp.is_halted(),
        comp.is_halted(),
        "halt diverged\n{}",
        src
    );
    prop_assert_eq!(
        interp.state_name(),
        comp.state_name(),
        "state diverged\n{}",
        src
    );
    for (name, _) in &spec.regs {
        prop_assert_eq!(
            interp.reg(name),
            comp.reg(name),
            "reg {} diverged\n{}",
            name,
            src
        );
    }
    for (name, _) in &spec.outputs {
        prop_assert_eq!(
            interp.output(name),
            comp.output(name),
            "output {} diverged\n{}",
            name,
            src
        );
    }
    for (name, words) in &spec.mems {
        for addr in 0..*words {
            prop_assert_eq!(
                interp.mem_word(name, addr),
                comp.mem_word(name, addr),
                "mem {}[{}] diverged\n{}",
                name,
                addr,
                src
            );
        }
    }
    Ok(())
}

/// One full trace-equivalence scenario from a seed: generate a machine,
/// then alternate pokes and run segments on both engines, comparing
/// results (including `Err` cases) and full state after every move.
fn check(seed: u64) -> Result<(), TestCaseError> {
    let mut g = Gen {
        rng: TestRng::new(seed),
    };
    let (src, spec) = g.machine();
    let machine = match parse(&src) {
        Ok(m) => m,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "generator produced invalid ISL: {e}\n{src}"
            )))
        }
    };
    let mut interp = Simulator::new(&machine);
    let mut comp = CompiledSim::from_machine(&machine);
    assert_same(&spec, &src, &interp, &comp)?;

    for _segment in 0..4 {
        // Pokes: identical on both sides, results compared (unknown names
        // and oversized images must fail identically too).
        for (name, w) in &spec.inputs.clone() {
            if g.chance(1, 2) {
                let v = g.below(1u64 << (w + 2).min(63));
                prop_assert_eq!(interp.set_input(name, v), comp.set_input(name, v));
            }
        }
        if g.chance(1, 4) && !spec.regs.is_empty() {
            let (name, w) = g.reg(&spec).clone();
            let v = g.below(1u64 << (w + 1).min(63));
            prop_assert_eq!(interp.set_reg(&name, v), comp.set_reg(&name, v));
        }
        if g.chance(1, 4) && !spec.mems.is_empty() {
            let (name, words) = spec.mems[g.below(spec.mems.len() as u64) as usize].clone();
            let data: Vec<u64> = (0..g.below(words + 3)).map(|_| g.below(1 << 16)).collect();
            prop_assert_eq!(interp.load_mem(&name, &data), comp.load_mem(&name, &data));
        }
        if g.chance(1, 8) {
            prop_assert_eq!(interp.set_input("nope", 1), comp.set_input("nope", 1));
        }

        // A run segment, then a few single steps.
        let budget = g.below(200);
        let ra = interp.run(budget);
        let rb = comp.run(budget);
        prop_assert_eq!(&ra, &rb, "run({}) diverged\n{}", budget, src);
        assert_same(&spec, &src, &interp, &comp)?;
        for _ in 0..g.below(4) {
            let sa = interp.step();
            let sb = comp.step();
            prop_assert_eq!(&sa, &sb, "step diverged\n{}", src);
        }
        assert_same(&spec, &src, &interp, &comp)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline oracle test: random machines, random stimulus,
    /// mid-run pokes — every observable byte-identical between engines.
    #[test]
    fn compiled_engine_matches_interpreter(seed in 0u64..u64::MAX) {
        check(seed)?;
    }
}

/// A machine that settles must fast-forward under the compiled engine and
/// still agree with the interpreter grinding through every cycle.
#[test]
fn quiescent_machine_agrees_over_long_budgets() {
    let src = "
        machine settle {
            reg a[8] init 3;
            reg b[8];
            state s {
                b := a + 1;
                a := a;
            }
        }";
    let machine = parse(src).unwrap();
    let mut interp = Simulator::new(&machine);
    let mut comp = CompiledSim::from_machine(&machine);
    let ra = interp.run(30_000).unwrap();
    let rb = comp.run(30_000).unwrap();
    assert_eq!(ra, rb);
    assert_eq!(interp.reg("b"), comp.reg("b"));
    assert_eq!(interp.cycle(), comp.cycle());
    assert!(
        comp.fast_forwarded() > 0,
        "compiled engine should skip quiescent cycles"
    );
}

/// Halt semantics: the halting cycle still commits its transfers, and
/// both engines agree on the exact halt cycle.
#[test]
fn halt_cycle_commits_identically() {
    let src = "
        machine gcd {
            reg a[8] init 48;
            reg b[8] init 18;
            state step {
                if a == b { halt; }
                else if a > b { a := a - b; }
                else { b := b - a; }
            }
        }";
    let machine = parse(src).unwrap();
    let mut interp = Simulator::new(&machine);
    let mut comp = CompiledSim::from_machine(&machine);
    let ra = interp.run(1000).unwrap();
    let rb = comp.run(1000).unwrap();
    assert_eq!(ra, rb);
    assert!(rb.halted);
    assert_eq!(comp.reg("a"), Some(6));
    assert_eq!(interp.cycle(), comp.cycle());
}

/// Runtime address errors surface identically: same error value, same
/// cycle, and the failing cycle commits nothing on either engine.
#[test]
fn address_errors_match_exactly() {
    let src = "
        machine oob {
            reg a[8] init 0;
            mem m[4][8];
            state s {
                m[(a + 0)] := 7;
                a := a + 1;
            }
        }";
    let machine = parse(src).unwrap();
    let mut interp = Simulator::new(&machine);
    let mut comp = CompiledSim::from_machine(&machine);
    let ra = interp.run(100);
    let rb = comp.run(100);
    assert_eq!(ra, rb);
    assert!(ra.is_err(), "walking store must fall off the end: {ra:?}");
    assert_eq!(interp.cycle(), comp.cycle());
    assert_eq!(interp.reg("a"), comp.reg("a"));
    for addr in 0..4 {
        assert_eq!(interp.mem_word("m", addr), comp.mem_word("m", addr));
    }
}
