//! Word-parallel compiled switch-level evaluation of extracted nMOS
//! netlists.
//!
//! [`silc_extract::switch_level_eval`] settles one input pattern per
//! call by fixed-point iteration over per-net `Level`s. This module
//! compiles the same transistor graph once ([`compile_switch`]) and then
//! evaluates **64 input patterns at a time**: every net's level is a
//! pair of bit-words (`one`, `zero`), lane *j* of each word holding
//! pattern *j*'s value, and conduction, driver reachability and the
//! ratioed pulldown-wins rule all become bitwise word operations. The
//! lanes are mutually independent, so each lane computes exactly what
//! the scalar oracle computes for its pattern — including the
//! instability bound — which the crate's tests exploit by diffing whole
//! truth tables against the oracle.

use silc_extract::SwitchError;
use silc_netlist::Netlist;

/// The settled levels of one net across 64 lanes: bit *j* of `one`
/// (resp. `zero`) is set when lane *j* settled high (resp. low); a lane
/// with neither bit is floating/unknown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetWord {
    /// Lanes pulled up to VDD.
    pub one: u64,
    /// Lanes pulled to ground (ratioed: pulldown wins).
    pub zero: u64,
}

struct Fet {
    depletion: bool,
    gate: usize,
    src: usize,
    drn: usize,
}

/// A transistor netlist compiled for word-parallel evaluation.
pub struct CompiledSwitch {
    n_nets: usize,
    names: Vec<String>,
    fets: Vec<Fet>,
    /// Net ids of the declared inputs, in call order.
    input_ids: Vec<usize>,
    vdd: usize,
    gnd: usize,
    /// Same fixed-point bound as the scalar oracle.
    bound: usize,
}

/// Compiles a netlist for repeated word-parallel evaluation. `inputs`
/// names the externally driven nets, in the order
/// [`CompiledSwitch::eval_word`] expects its pattern words.
///
/// # Errors
///
/// * [`SwitchError::UnknownNet`] — an input or rail name is absent;
/// * [`SwitchError::NotATransistor`] — a non-`enh`/`dep` instance.
pub fn compile_switch(
    netlist: &Netlist,
    inputs: &[&str],
    vdd: &str,
    gnd: &str,
) -> Result<CompiledSwitch, SwitchError> {
    let need = |name: &str| {
        netlist
            .net_by_name(name)
            .map(|id| id.raw() as usize)
            .ok_or_else(|| SwitchError::UnknownNet {
                name: name.to_string(),
            })
    };
    let vdd_id = need(vdd)?;
    let gnd_id = need(gnd)?;
    let input_ids = inputs.iter().map(|n| need(n)).collect::<Result<_, _>>()?;
    let mut fets = Vec::with_capacity(netlist.instances().len());
    for inst in netlist.instances() {
        let depletion = match inst.kind.as_str() {
            "enh" => false,
            "dep" => true,
            _ => {
                return Err(SwitchError::NotATransistor {
                    instance: inst.name.clone(),
                })
            }
        };
        let pin = |p: &str| {
            inst.connections
                .iter()
                .find(|(n, _)| n == p)
                .map(|(_, id)| id.raw() as usize)
                .ok_or_else(|| SwitchError::NotATransistor {
                    instance: inst.name.clone(),
                })
        };
        fets.push(Fet {
            depletion,
            gate: pin("gate")?,
            src: pin("src")?,
            drn: pin("drn")?,
        });
    }
    let n_nets = netlist.nets().len();
    Ok(CompiledSwitch {
        n_nets,
        names: netlist.nets().iter().map(|n| n.name.clone()).collect(),
        fets,
        input_ids,
        vdd: vdd_id,
        gnd: gnd_id,
        bound: 2 * n_nets + 8,
    })
}

/// The result of one 64-lane evaluation.
pub struct SwitchWord {
    /// Per-net settled lanes, indexed like the netlist's nets.
    pub nets: Vec<NetWord>,
    /// Lanes that failed to settle within the oracle's iteration bound
    /// (the scalar evaluator reports [`SwitchError::Unstable`] for
    /// exactly these patterns); their `nets` lanes are meaningless.
    pub unstable: u64,
}

impl CompiledSwitch {
    /// Number of nets (the length of [`SwitchWord::nets`]).
    pub fn net_count(&self) -> usize {
        self.n_nets
    }

    /// Net name by id.
    pub fn net_name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Finds a net id by name.
    pub fn net_id(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Evaluates 64 input patterns at once. `patterns[k]` carries input
    /// *k*'s value for every lane: bit *j* is its level in pattern *j*.
    /// All 64 lanes are always computed; callers enumerating fewer
    /// patterns simply ignore the surplus lanes.
    ///
    /// # Panics
    ///
    /// Panics when `patterns.len()` differs from the compiled input
    /// count.
    pub fn eval_word(&self, patterns: &[u64]) -> SwitchWord {
        assert_eq!(
            patterns.len(),
            self.input_ids.len(),
            "one pattern word per compiled input"
        );
        let n = self.n_nets;
        // Forced polarity per net: rails in every lane, inputs per lane.
        let mut forced_one = vec![0u64; n];
        let mut forced_zero = vec![0u64; n];
        let mut forced_any = vec![0u64; n];
        forced_one[self.vdd] = u64::MAX;
        forced_zero[self.gnd] = u64::MAX;
        forced_any[self.vdd] = u64::MAX;
        forced_any[self.gnd] = u64::MAX;
        for (k, &id) in self.input_ids.iter().enumerate() {
            forced_one[id] = patterns[k];
            forced_zero[id] = !patterns[k];
            forced_any[id] = u64::MAX;
        }

        let mut one: Vec<u64> = forced_one.clone();
        let mut zero: Vec<u64> = forced_zero.clone();
        let reach = |want_src: &[u64], one: &[u64]| -> Vec<u64> {
            // Lane-wise driver reachability: a lane flows out of a net
            // only if the net is a source there or unforced (drivers are
            // low impedance); it flows through a channel lane where the
            // transistor conducts (dep always, enh when its gate is 1).
            let mut seen = want_src.to_vec();
            loop {
                let mut changed = false;
                for f in &self.fets {
                    let cond = if f.depletion { u64::MAX } else { one[f.gate] };
                    for (from, to) in [(f.src, f.drn), (f.drn, f.src)] {
                        let flow = (want_src[from] | (seen[from] & !forced_any[from])) & cond;
                        let new = seen[to] | flow;
                        if new != seen[to] {
                            seen[to] = new;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    return seen;
                }
            }
        };

        // A lane is settled once an iteration leaves it unchanged (a
        // fixed point persists); the scalar oracle reports `Unstable`
        // for exactly the lanes that never settle within the bound.
        let mut settled_mask = 0u64;
        for _ in 0..self.bound {
            if settled_mask == u64::MAX {
                break;
            }
            let down = reach(&forced_zero, &one);
            let up = reach(&forced_one, &one);
            let mut changed_lanes = 0u64;
            for i in 0..n {
                let (next_one, next_zero) = if forced_any[i] == u64::MAX {
                    (forced_one[i], forced_zero[i])
                } else {
                    // Ratioed nMOS: a pulldown path wins over a pullup.
                    (up[i] & !down[i], down[i])
                };
                changed_lanes |= (next_one ^ one[i]) | (next_zero ^ zero[i]);
                one[i] = next_one;
                zero[i] = next_zero;
            }
            settled_mask |= !changed_lanes;
        }
        let unstable = !settled_mask;
        let nets = one
            .iter()
            .zip(&zero)
            .map(|(&o, &z)| NetWord { one: o, zero: z })
            .collect();
        SwitchWord { nets, unstable }
    }
}

/// The standard truth-table lane assignment: word *k* of the result
/// drives input *k* with bit *j* = bit *k* of lane index *j*, so the 64
/// lanes enumerate all patterns of up to 6 inputs (and cycle beyond).
pub fn exhaustive_patterns(n_inputs: usize) -> Vec<u64> {
    (0..n_inputs)
        .map(|k| {
            let mut w = 0u64;
            for lane in 0..64 {
                if (lane >> (k % 64)) & 1 == 1 {
                    w |= 1 << lane;
                }
            }
            w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_extract::{switch_level_eval, Level};

    fn inverter() -> Netlist {
        let mut n = Netlist::new("inv");
        let inn = n.add_net("in");
        let out = n.add_net("out");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("pu", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();
        n.add_instance("pd", "enh", &[("gate", inn), ("src", gnd), ("drn", out)])
            .unwrap();
        n
    }

    /// Diffs every lane of a word-parallel evaluation against the scalar
    /// oracle over all 2^k input patterns.
    fn cross_check(netlist: &Netlist, inputs: &[&str]) {
        let cs = compile_switch(netlist, inputs, "vdd", "gnd").unwrap();
        let patterns = exhaustive_patterns(inputs.len());
        let word = cs.eval_word(&patterns);
        for lane in 0..(1usize << inputs.len()) {
            let scalar_inputs: Vec<(&str, bool)> = inputs
                .iter()
                .enumerate()
                .map(|(k, &name)| (name, (lane >> k) & 1 == 1))
                .collect();
            let oracle = switch_level_eval(netlist, &scalar_inputs, "vdd", "gnd");
            match oracle {
                Err(e) => {
                    assert!(matches!(e, SwitchError::Unstable), "{e}");
                    assert_ne!(word.unstable & (1 << lane), 0, "lane {lane}");
                }
                Ok(levels) => {
                    assert_eq!(word.unstable & (1 << lane), 0, "lane {lane}");
                    for id in 0..cs.net_count() {
                        let got = match (
                            word.nets[id].one >> lane & 1,
                            word.nets[id].zero >> lane & 1,
                        ) {
                            (1, 0) => Level::One,
                            (0, 1) => Level::Zero,
                            (0, 0) => Level::Unknown,
                            _ => panic!("net both high and low"),
                        };
                        assert_eq!(
                            got,
                            levels[cs.net_name(id)],
                            "lane {lane} net {}",
                            cs.net_name(id)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn inverter_matches_oracle_both_lanes() {
        cross_check(&inverter(), &["in"]);
    }

    #[test]
    fn nand_truth_table_matches_oracle() {
        let mut n = Netlist::new("nand");
        let a = n.add_net("a");
        let b = n.add_net("b");
        let out = n.add_net("out");
        let mid = n.add_net("mid");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("pu", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();
        n.add_instance("p1", "enh", &[("gate", a), ("src", mid), ("drn", out)])
            .unwrap();
        n.add_instance("p2", "enh", &[("gate", b), ("src", gnd), ("drn", mid)])
            .unwrap();
        cross_check(&n, &["a", "b"]);
        // And the classic check in plain terms: out == !(a && b).
        let cs = compile_switch(&n, &["a", "b"], "vdd", "gnd").unwrap();
        let w = cs.eval_word(&exhaustive_patterns(2));
        let out_id = cs.net_id("out").unwrap();
        for lane in 0..4u64 {
            let expect = !((lane & 1 == 1) && (lane & 2 == 2));
            assert_eq!(w.nets[out_id].one >> lane & 1 == 1, expect);
        }
    }

    #[test]
    fn pass_transistor_floats_in_the_right_lanes() {
        let mut n = Netlist::new("pass");
        let g = n.add_net("g");
        let d = n.add_net("d");
        let q = n.add_net("q");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("pd", "enh", &[("gate", d), ("src", gnd), ("drn", vdd)])
            .unwrap();
        n.add_instance("t", "enh", &[("gate", g), ("src", d), ("drn", q)])
            .unwrap();
        cross_check(&n, &["g", "d"]);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let n = inverter();
        assert!(matches!(
            compile_switch(&n, &["nope"], "vdd", "gnd"),
            Err(SwitchError::UnknownNet { .. })
        ));
        assert!(matches!(
            compile_switch(&n, &[], "vcc", "gnd"),
            Err(SwitchError::UnknownNet { .. })
        ));
    }

    #[test]
    fn ring_oscillator_lanes_flag_unstable() {
        // A single inverter fed back on itself oscillates when enabled.
        let mut n = Netlist::new("ring");
        let en = n.add_net("en");
        let x = n.add_net("x");
        let y = n.add_net("y");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("pu", "dep", &[("gate", x), ("src", x), ("drn", vdd)])
            .unwrap();
        // x pulled low when (en && x): inverter in feedback.
        n.add_instance("p1", "enh", &[("gate", en), ("src", y), ("drn", x)])
            .unwrap();
        n.add_instance("p2", "enh", &[("gate", x), ("src", gnd), ("drn", y)])
            .unwrap();
        cross_check(&n, &["en"]);
    }
}
