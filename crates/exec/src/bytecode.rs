//! The compiled form of an ISL machine: a register-based bytecode over a
//! flat `Vec<u64>` state arena.
//!
//! # Format
//!
//! Every register, input port and output port owns one **slot** in the
//! arena; memories occupy contiguous word ranges after the signals. Each
//! control state compiles to one straight-line op sequence (`if` lowers
//! to [`Op::Jz`]/[`Op::Jmp`]) that reads pre-cycle slots, evaluates the
//! state's combinational logic in levelized (operands-before-users)
//! order through a scratch temp file, and records its writes; the
//! executor commits all writes together at the end of the cycle, exactly
//! like the tree-walking [`silc_rtl::Simulator`].
//!
//! Width semantics are baked in at compile time: every op that can carry
//! bits above its result width stores the mask to clamp with, so the
//! executor never consults declarations.

use silc_rtl::BinaryOp;
use std::collections::HashMap;

/// Bit mask of a width (`>= 64` saturates to all ones), mirroring the
/// interpreter's masking rule.
pub(crate) fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// One bytecode instruction. `dst`/`a`/`b`/`src`/`addr`/`cond` index the
/// scratch temp file; `slot` indexes the signal arena; `mem` indexes
/// [`CompiledMachine::mems`]; jump targets are resolved op indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// `t[dst] = value`.
    Const { dst: u32, value: u64 },
    /// `t[dst] = arena[slot]` — a pre-cycle signal read.
    Load { dst: u32, slot: u32 },
    /// `t[dst] = mem[t[addr]]`, bounds-checked (errors like the
    /// interpreter's `MemRead`).
    LoadMem { dst: u32, mem: u32, addr: u32 },
    /// `t[dst] = !t[a] & mask`.
    Not { dst: u32, a: u32, mask: u64 },
    /// `t[dst] = t[a].wrapping_neg() & mask`.
    Neg { dst: u32, a: u32, mask: u64 },
    /// `t[dst] = (t[a] == 0) as u64` — logical not.
    IsZero { dst: u32, a: u32 },
    /// `t[dst] = t[a] <op> t[b]`, masked where the operator wraps.
    Bin {
        dst: u32,
        op: BinaryOp,
        a: u32,
        b: u32,
        mask: u64,
    },
    /// `t[dst] = (t[a] >> lo) & mask` — a bit-slice read.
    Slice {
        dst: u32,
        a: u32,
        lo: u32,
        mask: u64,
    },
    /// `t[dst] = (t[acc] << shift) | (t[part] & mask)` — one step of a
    /// concatenation fold, MSB-first.
    Fold {
        dst: u32,
        acc: u32,
        part: u32,
        shift: u32,
        mask: u64,
    },
    /// Jump to `target` when `t[cond] == 0`.
    Jz { cond: u32, target: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Buffer a full signal write: `slot <- t[src] & mask`.
    StoreFull { slot: u32, src: u32, mask: u64 },
    /// Buffer a sliced signal write (read-modify-write against the
    /// pending value if one exists, else the pre-cycle value).
    StoreSlice {
        slot: u32,
        src: u32,
        lo: u32,
        mask: u64,
    },
    /// Buffer a memory word write, bounds-checked at execution.
    StoreMem {
        mem: u32,
        addr: u32,
        src: u32,
        mask: u64,
    },
    /// Buffer the next control state (`goto`; last one wins).
    SetState { index: u32 },
    /// Buffer a halt (takes effect at end of cycle).
    Halt,
}

/// What a signal slot is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SigKind {
    /// A register with its reset value.
    Reg { init: u64 },
    /// An input port (reset to 0, driven externally).
    Input,
    /// An output port (reset to 0).
    Output,
}

/// Per-slot metadata.
#[derive(Debug, Clone)]
pub(crate) struct SigInfo {
    /// Kept for disassembly/debug dumps even though lookups go through
    /// the name index.
    #[allow(dead_code)]
    pub name: String,
    pub width: u32,
    pub kind: SigKind,
}

/// Per-memory metadata: a contiguous arena range.
#[derive(Debug, Clone)]
pub(crate) struct MemInfo {
    pub name: String,
    /// First arena word of this memory.
    pub base: usize,
    pub words: u64,
    /// `mask(width)`.
    pub mask: u64,
}

/// One compiled control state.
#[derive(Debug, Clone)]
pub(crate) struct CompiledState {
    pub name: String,
    pub ops: Vec<Op>,
    /// Sensitivity bitset over signal slots: which slots the body reads.
    /// The event scheduler re-executes the state only when one of these
    /// (or a read memory) changed.
    pub read_sigs: Vec<u64>,
    /// Sensitivity bitset over memories.
    pub read_mems: Vec<u64>,
}

/// Compile-time statistics, surfaced as `exec.*` trace counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// States compiled.
    pub states: u64,
    /// Ops emitted (after optimization).
    pub ops: u64,
    /// Expressions folded to constants at compile time.
    pub folded: u64,
    /// Common-subexpression hits (ops not emitted twice).
    pub cse: u64,
    /// Ops removed as dead code.
    pub dead: u64,
}

/// An ISL machine lowered to bytecode; produced by [`crate::compile`]
/// and executed by [`crate::CompiledSim`].
#[derive(Debug, Clone)]
pub struct CompiledMachine {
    pub(crate) name: String,
    pub(crate) sigs: Vec<SigInfo>,
    pub(crate) mems: Vec<MemInfo>,
    pub(crate) states: Vec<CompiledState>,
    /// Scratch temp file size (max over states).
    pub(crate) n_temps: u32,
    /// Total arena words (signals + memory storage).
    pub(crate) arena_len: usize,
    /// Signal name -> slot.
    pub(crate) sig_index: HashMap<String, u32>,
    /// Memory name -> index into `mems`.
    pub(crate) mem_index: HashMap<String, u32>,
    pub(crate) stats: CompileStats,
}

impl CompiledMachine {
    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Compile-time statistics (op counts, folds, CSE and DCE tallies).
    pub fn stats(&self) -> CompileStats {
        self.stats
    }
}
