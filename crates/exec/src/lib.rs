//! # silc-exec — compiled-code simulation
//!
//! The paper sells behavioral descriptions on "verification by
//! simulation", and simulation is the hottest verb the pipeline serves —
//! so this crate removes the tree-walking tax. An elaborated ISL
//! [`Machine`](silc_rtl::Machine) is [`compile`]d once into a compact
//! register-based bytecode: constant-folded, value-numbered,
//! dead-code-eliminated, and levelized so each cycle's combinational
//! logic runs as straight-line ops over a flat `Vec<u64>` bit-packed
//! arena. A two-list event scheduler watches which state elements
//! actually changed and skips cycles it can prove are no-ops — sparse
//! activity costs nothing, dense activity runs at bytecode speed.
//!
//! [`CompiledSim`] mirrors [`silc_rtl::Simulator`]'s API and observable
//! behavior *byte for byte* — same `RunReport`s, same register/output/
//! memory reads, same errors on the same cycle — and the interpreter
//! stays on as the randomized-equivalence oracle (see the crate's
//! proptests).
//!
//! Extracted transistor netlists get the same treatment in [`gates`]:
//! the switch-level graph compiles to a word-parallel evaluator that
//! settles 64 input patterns per pass, oracled against
//! [`silc_extract::switch_level_eval`].
//!
//! # Example
//!
//! ```
//! use silc_exec::{compile, CompiledSim};
//! use silc_rtl::{parse, Simulator};
//!
//! let m = parse("
//!     machine counter {
//!         reg count[8];
//!         state run { count := count + 1; if count == 3 { halt; } }
//!     }
//! ")?;
//! let compiled = compile(&m);
//! let mut fast = CompiledSim::new(&compiled);
//! let mut slow = Simulator::new(&m);
//! assert_eq!(fast.run(100)?, slow.run(100)?);
//! assert_eq!(fast.reg("count"), slow.reg("count"));
//! # Ok::<(), silc_rtl::RtlError>(())
//! ```

mod bytecode;
mod compile;
pub mod gates;
mod run;

pub use bytecode::{CompileStats, CompiledMachine};
pub use compile::compile;
pub use gates::{compile_switch, exhaustive_patterns, CompiledSwitch, NetWord, SwitchWord};
pub use run::CompiledSim;

use std::fmt;
use std::str::FromStr;

/// Which simulation engine services a `sim` request. The compiled
/// engine is the default everywhere; the interpreter remains available
/// as the oracle and for debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimEngine {
    /// Bytecode execution via [`CompiledSim`].
    #[default]
    Compiled,
    /// Tree-walking interpretation via [`silc_rtl::Simulator`].
    Interp,
}

impl SimEngine {
    /// Stable tag for fingerprint keying (cache entries must not alias
    /// across engines).
    pub fn tag(self) -> u8 {
        match self {
            SimEngine::Compiled => 0,
            SimEngine::Interp => 1,
        }
    }

    /// The canonical names, as accepted by `--engine`.
    pub const NAMES: &'static str = "`compiled` or `interp`";
}

impl fmt::Display for SimEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimEngine::Compiled => "compiled",
            SimEngine::Interp => "interp",
        })
    }
}

impl FromStr for SimEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<SimEngine, String> {
        match s {
            "compiled" => Ok(SimEngine::Compiled),
            "interp" => Ok(SimEngine::Interp),
            other => Err(format!("unknown engine `{other}` (use {})", Self::NAMES)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_round_trip() {
        for e in [SimEngine::Compiled, SimEngine::Interp] {
            assert_eq!(e.to_string().parse::<SimEngine>(), Ok(e));
        }
        assert!("fast".parse::<SimEngine>().unwrap_err().contains("fast"));
        assert_eq!(SimEngine::default(), SimEngine::Compiled);
        assert_ne!(SimEngine::Compiled.tag(), SimEngine::Interp.tag());
    }
}
