//! Lowering an elaborated [`Machine`] to bytecode.
//!
//! Each state body is walked once in the interpreter's evaluation order,
//! emitting ops through three optimizations:
//!
//! * **constant folding** — pure ops over known constants evaluate at
//!   compile time with the interpreter's exact width/wrap rules;
//! * **local value numbering** — a pure op with the same operands as an
//!   earlier one in a dominating position reuses its temp (memory reads
//!   are pre-cycle, so even they are CSE-able; their bounds check keeps
//!   the first occurrence alive);
//! * **dead-code elimination** — a backward pass drops pure ops whose
//!   results feed no store, jump or control effect.
//!
//! Emission order is evaluation order, so the compiled program raises
//! the same [`silc_rtl::RtlError`] on the same cycle as the interpreter.

use crate::bytecode::*;
use silc_rtl::{BinaryOp, Expr, Machine, Stmt, Target, UnaryOp};
use std::collections::HashMap;

/// Compiles a parse-validated machine to bytecode.
///
/// # Panics
///
/// Panics on names not declared in the machine, like
/// [`silc_rtl::Simulator`] — parse-validated machines never trigger
/// this.
pub fn compile(machine: &Machine) -> CompiledMachine {
    let mut sigs = Vec::new();
    let mut sig_index = HashMap::new();
    for r in &machine.regs {
        sig_index.insert(r.name.clone(), sigs.len() as u32);
        sigs.push(SigInfo {
            name: r.name.clone(),
            width: r.width,
            kind: SigKind::Reg {
                init: r.init & mask(r.width),
            },
        });
    }
    for p in &machine.outputs {
        sig_index.insert(p.name.clone(), sigs.len() as u32);
        sigs.push(SigInfo {
            name: p.name.clone(),
            width: p.width,
            kind: SigKind::Output,
        });
    }
    for p in &machine.inputs {
        sig_index.insert(p.name.clone(), sigs.len() as u32);
        sigs.push(SigInfo {
            name: p.name.clone(),
            width: p.width,
            kind: SigKind::Input,
        });
    }
    let mut mems = Vec::new();
    let mut mem_index = HashMap::new();
    let mut base = sigs.len();
    for m in &machine.mems {
        mem_index.insert(m.name.clone(), mems.len() as u32);
        mems.push(MemInfo {
            name: m.name.clone(),
            base,
            words: m.words,
            mask: mask(m.width),
        });
        base += m.words as usize;
    }

    let mut stats = CompileStats {
        states: machine.states.len() as u64,
        ..CompileStats::default()
    };
    let mut states = Vec::with_capacity(machine.states.len());
    let mut n_temps = 0;
    let n_sig_words = sigs.len().div_ceil(64).max(1);
    let n_mem_words = mems.len().div_ceil(64).max(1);
    for st in &machine.states {
        let mut cc = StateCompiler {
            machine,
            sig_index: &sig_index,
            mem_index: &mem_index,
            ops: Vec::new(),
            labels: Vec::new(),
            vn: Vec::new(),
            temp_width: Vec::new(),
            temp_const: Vec::new(),
            stats: &mut stats,
        };
        cc.block(&st.body);
        let ops = cc.finish();
        n_temps = n_temps.max(cc.temp_width.len() as u32);

        let mut read_sigs = vec![0u64; n_sig_words];
        let mut read_mems = vec![0u64; n_mem_words];
        for op in &ops {
            match *op {
                Op::Load { slot, .. } => read_sigs[slot as usize / 64] |= 1 << (slot % 64),
                Op::LoadMem { mem, .. } => read_mems[mem as usize / 64] |= 1 << (mem % 64),
                _ => {}
            }
        }
        stats.ops += ops.len() as u64;
        states.push(CompiledState {
            name: st.name.clone(),
            ops,
            read_sigs,
            read_mems,
        });
    }

    CompiledMachine {
        name: machine.name.clone(),
        sigs,
        mems,
        states,
        n_temps,
        arena_len: base,
        sig_index,
        mem_index,
        stats,
    }
}

/// Value-numbering key: identifies a pure op up to operands. Constants
/// carry their width because width propagates into downstream masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VnKey {
    Const(u64, u32),
    Load(u32),
    LoadMem(u32, u32),
    Un(UnaryOp, u32),
    Bin(BinaryOp, u32, u32),
    Slice(u32, u32, u32),
    Fold(u32, u32, u32),
}

struct StateCompiler<'a> {
    machine: &'a Machine,
    sig_index: &'a HashMap<String, u32>,
    mem_index: &'a HashMap<String, u32>,
    /// Jump targets are label ids until `finish` resolves them.
    ops: Vec<Op>,
    /// Label id -> op index (position of the op the label precedes).
    labels: Vec<u32>,
    /// Scoped association list: truncated when leaving a branch, so an
    /// entry is only reused from positions its op dominates.
    vn: Vec<(VnKey, u32)>,
    temp_width: Vec<u32>,
    temp_const: Vec<Option<u64>>,
    stats: &'a mut CompileStats,
}

impl StateCompiler<'_> {
    fn fresh(&mut self, width: u32, cval: Option<u64>) -> u32 {
        let t = self.temp_width.len() as u32;
        self.temp_width.push(width);
        self.temp_const.push(cval);
        t
    }

    fn width(&self, t: u32) -> u32 {
        self.temp_width[t as usize]
    }

    fn cval(&self, t: u32) -> Option<u64> {
        self.temp_const[t as usize]
    }

    /// Interns a constant (already masked) of the given width.
    fn const_temp(&mut self, value: u64, width: u32) -> u32 {
        self.keyed(VnKey::Const(value, width), width, Some(value), |dst| {
            Op::Const { dst, value }
        })
    }

    /// Emits `make(dst)` unless an equivalent dominating op exists.
    fn keyed(
        &mut self,
        key: VnKey,
        width: u32,
        cval: Option<u64>,
        make: impl FnOnce(u32) -> Op,
    ) -> u32 {
        if let Some(&(_, t)) = self.vn.iter().find(|(k, _)| *k == key) {
            if !matches!(key, VnKey::Const(..)) {
                self.stats.cse += 1;
            }
            return t;
        }
        let dst = self.fresh(width, cval);
        self.ops.push(make(dst));
        self.vn.push((key, dst));
        dst
    }

    /// A folded constant result (counted in the stats).
    fn folded(&mut self, value: u64, width: u32) -> u32 {
        self.stats.folded += 1;
        self.const_temp(value, width)
    }

    fn new_label(&mut self) -> u32 {
        self.labels.push(u32::MAX);
        self.labels.len() as u32 - 1
    }

    fn place(&mut self, label: u32) {
        self.labels[label as usize] = self.ops.len() as u32;
    }

    fn block(&mut self, body: &[Stmt]) {
        for stmt in body {
            match stmt {
                Stmt::Assign { target, value } => {
                    let v = self.expr(value);
                    self.assign(target, v);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let c = self.expr(cond);
                    if let Some(cv) = self.cval(c) {
                        // Static condition: compile only the taken branch
                        // (it executes unconditionally, so no new scope).
                        self.stats.folded += 1;
                        self.block(if cv != 0 { then_body } else { else_body });
                        continue;
                    }
                    let l_else = self.new_label();
                    let l_end = self.new_label();
                    self.ops.push(Op::Jz {
                        cond: c,
                        target: l_else,
                    });
                    let mark = self.vn.len();
                    self.block(then_body);
                    self.vn.truncate(mark);
                    self.ops.push(Op::Jmp { target: l_end });
                    self.place(l_else);
                    self.block(else_body);
                    self.vn.truncate(mark);
                    self.place(l_end);
                }
                Stmt::Goto(name) => {
                    let index = self.machine.state_index(name).expect("validated") as u32;
                    self.ops.push(Op::SetState { index });
                }
                Stmt::Halt => self.ops.push(Op::Halt),
            }
        }
    }

    fn assign(&mut self, target: &Target, v: u32) {
        match target {
            Target::Signal { name, slice } => {
                let slot = self.sig_index[name.as_str()];
                let width = if let Some(r) = self.machine.reg(name) {
                    r.width
                } else {
                    self.machine
                        .outputs
                        .iter()
                        .find(|p| p.name == *name)
                        .expect("validated")
                        .width
                };
                match slice {
                    None => self.ops.push(Op::StoreFull {
                        slot,
                        src: v,
                        mask: mask(width),
                    }),
                    Some((hi, lo)) => self.ops.push(Op::StoreSlice {
                        slot,
                        src: v,
                        lo: *lo,
                        mask: mask(hi - lo + 1),
                    }),
                }
            }
            Target::MemWord { name, addr } => {
                let a = self.expr(addr);
                let mem = self.mem_index[name.as_str()];
                let m = self.machine.mem(name).expect("validated");
                self.ops.push(Op::StoreMem {
                    mem,
                    addr: a,
                    src: v,
                    mask: mask(m.width),
                });
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> u32 {
        match e {
            Expr::Const { value, width } => {
                let w = width.unwrap_or(64);
                self.const_temp(value & mask(w), w)
            }
            Expr::Ident(name) => {
                let slot = self.sig_index[name.as_str()];
                let width = self
                    .machine
                    .regs
                    .iter()
                    .map(|r| (&r.name, r.width))
                    .chain(self.machine.inputs.iter().map(|p| (&p.name, p.width)))
                    .chain(self.machine.outputs.iter().map(|p| (&p.name, p.width)))
                    .find(|(n, _)| **n == *name)
                    .expect("validated")
                    .1;
                self.keyed(VnKey::Load(slot), width, None, |dst| Op::Load { dst, slot })
            }
            Expr::Slice { base, hi, lo } => {
                let a = self.expr(base);
                let w = hi - lo + 1;
                if *lo < 64 {
                    if let Some(v) = self.cval(a) {
                        return self.folded((v >> lo) & mask(w), w);
                    }
                }
                let lo = *lo;
                self.keyed(VnKey::Slice(a, lo, w), w, None, |dst| Op::Slice {
                    dst,
                    a,
                    lo,
                    mask: mask(w),
                })
            }
            Expr::MemRead { name, addr } => {
                let a = self.expr(addr);
                let mem = self.mem_index[name.as_str()];
                let width = self.machine.mem(name).expect("validated").width;
                // Never folded: the bounds check is a runtime effect.
                self.keyed(VnKey::LoadMem(mem, a), width, None, |dst| Op::LoadMem {
                    dst,
                    mem,
                    addr: a,
                })
            }
            Expr::Unary { op, expr } => {
                let a = self.expr(expr);
                let w = self.width(a);
                if let Some(v) = self.cval(a) {
                    let (out, ow) = match op {
                        UnaryOp::Not => ((!v) & mask(w), w),
                        UnaryOp::Neg => (v.wrapping_neg() & mask(w), w),
                        UnaryOp::LogicalNot => (u64::from(v == 0), 1),
                    };
                    return self.folded(out, ow);
                }
                let m = mask(w);
                match op {
                    UnaryOp::Not => self.keyed(VnKey::Un(*op, a), w, None, |dst| Op::Not {
                        dst,
                        a,
                        mask: m,
                    }),
                    UnaryOp::Neg => self.keyed(VnKey::Un(*op, a), w, None, |dst| Op::Neg {
                        dst,
                        a,
                        mask: m,
                    }),
                    UnaryOp::LogicalNot => {
                        self.keyed(VnKey::Un(*op, a), 1, None, |dst| Op::IsZero { dst, a })
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                let (wa, wb) = (self.width(a), self.width(b));
                let w = wa.max(wb);
                // Result width and wrap mask, exactly as the interpreter.
                let (ow, m) = match op {
                    BinaryOp::Add | BinaryOp::Sub => (w, mask(w)),
                    BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => (w, mask(w)),
                    BinaryOp::Shl | BinaryOp::Shr => (wa, mask(wa)),
                    _ => (1, 1),
                };
                if let (Some(x), Some(y)) = (self.cval(a), self.cval(b)) {
                    let v = match op {
                        BinaryOp::Add => x.wrapping_add(y) & mask(w),
                        BinaryOp::Sub => x.wrapping_sub(y) & mask(w),
                        BinaryOp::And => x & y,
                        BinaryOp::Or => x | y,
                        BinaryOp::Xor => x ^ y,
                        BinaryOp::Shl => {
                            if y >= 64 {
                                0
                            } else {
                                (x << y) & mask(wa)
                            }
                        }
                        BinaryOp::Shr => {
                            if y >= 64 {
                                0
                            } else {
                                x >> y
                            }
                        }
                        BinaryOp::Eq => u64::from(x == y),
                        BinaryOp::Ne => u64::from(x != y),
                        BinaryOp::Lt => u64::from(x < y),
                        BinaryOp::Le => u64::from(x <= y),
                        BinaryOp::Gt => u64::from(x > y),
                        BinaryOp::Ge => u64::from(x >= y),
                        BinaryOp::LogicalAnd => u64::from(x != 0 && y != 0),
                        BinaryOp::LogicalOr => u64::from(x != 0 || y != 0),
                    };
                    return self.folded(v, ow);
                }
                let op = *op;
                self.keyed(VnKey::Bin(op, a, b), ow, None, |dst| Op::Bin {
                    dst,
                    op,
                    a,
                    b,
                    mask: m,
                })
            }
            Expr::Concat(parts) => {
                let mut acc = self.const_temp(0, 0);
                let mut total: u32 = 0;
                for p in parts {
                    let part = self.expr(p);
                    let pw = self.width(part);
                    total = (total + pw).min(64);
                    if pw < 64 {
                        if let (Some(av), Some(pv)) = (self.cval(acc), self.cval(part)) {
                            acc = self.folded((av << pw) | (pv & mask(pw)), total);
                            continue;
                        }
                    }
                    let (a, m) = (acc, mask(pw));
                    acc = self.keyed(VnKey::Fold(a, part, pw), total, None, |dst| Op::Fold {
                        dst,
                        acc: a,
                        part,
                        shift: pw,
                        mask: m,
                    });
                }
                acc
            }
        }
    }

    /// Dead-code elimination and jump resolution: drops pure ops whose
    /// temps feed no effect, then rewrites label ids to op indices.
    fn finish(&mut self) -> Vec<Op> {
        let n = self.ops.len();
        let mut used = vec![false; self.temp_width.len()];
        let mut keep = vec![false; n];
        let mark = |t: u32, used: &mut Vec<bool>| used[t as usize] = true;
        for i in (0..n).rev() {
            let op = self.ops[i];
            let root = matches!(
                op,
                Op::LoadMem { .. }
                    | Op::Jz { .. }
                    | Op::Jmp { .. }
                    | Op::StoreFull { .. }
                    | Op::StoreSlice { .. }
                    | Op::StoreMem { .. }
                    | Op::SetState { .. }
                    | Op::Halt
            );
            let dst = match op {
                Op::Const { dst, .. }
                | Op::Load { dst, .. }
                | Op::LoadMem { dst, .. }
                | Op::Not { dst, .. }
                | Op::Neg { dst, .. }
                | Op::IsZero { dst, .. }
                | Op::Bin { dst, .. }
                | Op::Slice { dst, .. }
                | Op::Fold { dst, .. } => Some(dst),
                _ => None,
            };
            if !(root || dst.is_some_and(|d| used[d as usize])) {
                continue;
            }
            keep[i] = true;
            match op {
                Op::LoadMem { addr, .. } => mark(addr, &mut used),
                Op::Not { a, .. } | Op::Neg { a, .. } | Op::IsZero { a, .. } => mark(a, &mut used),
                Op::Bin { a, b, .. } => {
                    mark(a, &mut used);
                    mark(b, &mut used);
                }
                Op::Slice { a, .. } => mark(a, &mut used),
                Op::Fold { acc, part, .. } => {
                    mark(acc, &mut used);
                    mark(part, &mut used);
                }
                Op::Jz { cond, .. } => mark(cond, &mut used),
                Op::StoreFull { src, .. } | Op::StoreSlice { src, .. } => mark(src, &mut used),
                Op::StoreMem { addr, src, .. } => {
                    mark(addr, &mut used);
                    mark(src, &mut used);
                }
                _ => {}
            }
        }
        // Old index -> new index (for label remapping; index n maps to
        // the end of the compacted program).
        let mut new_idx = vec![0u32; n + 1];
        let mut c = 0u32;
        for i in 0..n {
            new_idx[i] = c;
            if keep[i] {
                c += 1;
            }
        }
        new_idx[n] = c;
        self.stats.dead += (n as u64) - u64::from(c);
        let labels: Vec<u32> = self
            .labels
            .iter()
            .map(|&pos| new_idx[pos as usize])
            .collect();
        self.ops
            .iter()
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, op)| match *op {
                Op::Jz { cond, target } => Op::Jz {
                    cond,
                    target: labels[target as usize],
                },
                Op::Jmp { target } => Op::Jmp {
                    target: labels[target as usize],
                },
                other => other,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_rtl::parse;

    fn compiled(src: &str) -> CompiledMachine {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn constant_expressions_fold() {
        let cm = compiled("machine f { reg a[8]; state s { a := 2 + 3; halt; } }");
        // One Const, one StoreFull, one Halt: the add happened at compile
        // time.
        assert_eq!(cm.states[0].ops.len(), 3);
        assert!(cm.stats.folded >= 1);
    }

    #[test]
    fn static_conditions_drop_the_dead_branch() {
        let cm = compiled(
            "machine f { reg a[8];
               state s { if 1 { a := 1; } else { a := 2; } halt; } }",
        );
        assert!(cm.states[0]
            .ops
            .iter()
            .all(|op| !matches!(op, Op::Jz { .. } | Op::Jmp { .. })));
    }

    #[test]
    fn common_subexpressions_are_shared() {
        let cm = compiled(
            "machine c { reg a[8]; reg x[8]; reg y[8];
               state s { x := a + 1; y := a + 1; halt; } }",
        );
        assert!(cm.stats.cse >= 1);
        let adds = cm.states[0]
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Bin { .. }))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn unused_results_are_eliminated() {
        // Folding `2 + 3` leaves the literal 2 and 3 ops dead; DCE
        // sweeps them.
        let cm = compiled("machine d { reg a[8]; state s { a := (2 + 3) + a; halt; } }");
        let consts = cm.states[0]
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Const { .. }))
            .count();
        assert_eq!(consts, 1);
        assert!(cm.stats.dead >= 2);
    }

    #[test]
    fn branch_scoped_cse_does_not_leak() {
        // The `a + 1` inside the taken branch must not satisfy the use
        // after the join (it may never execute).
        let cm = compiled(
            "machine b { reg a[8]; reg x[8]; reg y[8]; port input c[1];
               state s { if c { x := a + 1; } y := a + 1; halt; } }",
        );
        let adds = cm.states[0]
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Bin { .. }))
            .count();
        assert_eq!(adds, 2);
    }

    #[test]
    fn read_sets_cover_loads_only() {
        let cm = compiled(
            "machine r { reg a[8]; reg b[8]; mem m[4][8];
               state s { a := b; m[b] := 1; } }",
        );
        let st = &cm.states[0];
        let b_slot = cm.sig_index["b"];
        let a_slot = cm.sig_index["a"];
        assert_ne!(st.read_sigs[0] & (1 << b_slot), 0);
        assert_eq!(st.read_sigs[0] & (1 << a_slot), 0);
        // The memory is written but never read.
        assert_eq!(st.read_mems[0], 0);
    }

    #[test]
    fn memory_reads_survive_dce() {
        // The loaded value is unused, but the bounds check must still
        // fire at run time.
        let cm = compiled(
            "machine m { reg a[8] init 99; reg x[8]; mem ram[4][8];
               state s { x := ram[a] & 0; } }",
        );
        assert!(cm.states[0]
            .ops
            .iter()
            .any(|op| matches!(op, Op::LoadMem { .. })));
    }
}
