//! The bytecode executor: a drop-in for [`silc_rtl::Simulator`] with
//! byte-identical observable behavior.
//!
//! Each cycle runs the current state's straight-line ops over the arena
//! and a scratch temp file, buffering writes; the commit applies them
//! together and records **change events** (slots and memories whose
//! stored value actually changed). A two-list scheduler — last cycle's
//! events versus the ones being recorded — lets [`CompiledSim::step`]
//! prove a cycle is a no-op without running it: if the machine re-enters
//! the state it just executed and none of that state's read set changed,
//! the cycle must recompute and commit the very values already stored.
//! [`CompiledSim::run`] extends the proof inductively and fast-forwards
//! the whole remaining budget.

use crate::bytecode::*;
use crate::compile;
use silc_rtl::{BinaryOp, Machine, RtlError, RunReport};

fn bit_set(words: &mut [u64], i: u32) {
    words[i as usize / 64] |= 1 << (i % 64);
}

fn disjoint(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & y == 0)
}

/// Executes a [`CompiledMachine`]; mirrors the [`silc_rtl::Simulator`]
/// API and its observable semantics exactly.
///
/// # Example
///
/// ```
/// use silc_exec::CompiledSim;
/// use silc_rtl::parse;
/// let m = parse("
///     machine swap {
///         reg a[8] init 1;
///         reg b[8] init 2;
///         state s { a := b; b := a; halt; }
///     }
/// ")?;
/// let mut sim = CompiledSim::from_machine(&m);
/// sim.run(10)?;
/// assert_eq!(sim.reg("a"), Some(2));
/// assert_eq!(sim.reg("b"), Some(1));
/// # Ok::<(), silc_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSim {
    cm: CompiledMachine,
    /// Signal slots then memory words.
    arena: Vec<u64>,
    temps: Vec<u64>,
    /// Buffered signal writes: value, epoch stamp, first-write order.
    pending: Vec<u64>,
    pending_epoch: Vec<u64>,
    epoch: u64,
    write_list: Vec<u32>,
    /// Buffered memory writes (mem, addr, value), last write wins.
    mem_writes: Vec<(u32, u64, u64)>,
    /// Change events from the last committed cycle (list one).
    changed_sigs: Vec<u64>,
    changed_mems: Vec<u64>,
    /// Events being recorded by the current commit (list two).
    next_sigs: Vec<u64>,
    next_mems: Vec<u64>,
    /// State executed (not fast-forwarded) last cycle, if any.
    last_exec: Option<usize>,
    /// The last `step` proved itself a no-op via the event lists.
    quiescent: bool,
    /// Cycles skipped by the scheduler instead of executed.
    fast_cycles: u64,
    state: usize,
    cycle: u64,
    halted: bool,
}

impl CompiledSim {
    /// Creates an executor in the machine's reset configuration:
    /// registers at their `init` values, memories zeroed, first state
    /// current.
    pub fn new(cm: &CompiledMachine) -> CompiledSim {
        let n_sigs = cm.sigs.len();
        let mut arena = vec![0u64; cm.arena_len];
        for (i, s) in cm.sigs.iter().enumerate() {
            if let SigKind::Reg { init } = s.kind {
                arena[i] = init;
            }
        }
        let sig_words = n_sigs.div_ceil(64).max(1);
        let mem_words = cm.mems.len().div_ceil(64).max(1);
        CompiledSim {
            arena,
            temps: vec![0; cm.n_temps as usize],
            pending: vec![0; n_sigs],
            pending_epoch: vec![0; n_sigs],
            epoch: 0,
            write_list: Vec::new(),
            mem_writes: Vec::new(),
            changed_sigs: vec![0; sig_words],
            changed_mems: vec![0; mem_words],
            next_sigs: vec![0; sig_words],
            next_mems: vec![0; mem_words],
            last_exec: None,
            quiescent: false,
            fast_cycles: 0,
            state: 0,
            cycle: 0,
            halted: false,
            cm: cm.clone(),
        }
    }

    /// Compiles and instantiates in one step.
    pub fn from_machine(machine: &Machine) -> CompiledSim {
        CompiledSim::new(&compile(machine))
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True after `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Name of the current control state.
    pub fn state_name(&self) -> &str {
        &self.cm.states[self.state].name
    }

    /// Cycles the event scheduler proved quiescent and skipped.
    pub fn fast_forwarded(&self) -> u64 {
        self.fast_cycles
    }

    /// Reads a register.
    pub fn reg(&self, name: &str) -> Option<u64> {
        let &slot = self.cm.sig_index.get(name)?;
        matches!(self.cm.sigs[slot as usize].kind, SigKind::Reg { .. })
            .then(|| self.arena[slot as usize])
    }

    /// Reads an output port.
    pub fn output(&self, name: &str) -> Option<u64> {
        let &slot = self.cm.sig_index.get(name)?;
        matches!(self.cm.sigs[slot as usize].kind, SigKind::Output)
            .then(|| self.arena[slot as usize])
    }

    /// Reads a memory word.
    pub fn mem_word(&self, name: &str, addr: u64) -> Option<u64> {
        let &mem = self.cm.mem_index.get(name)?;
        let m = &self.cm.mems[mem as usize];
        (addr < m.words).then(|| self.arena[m.base + addr as usize])
    }

    /// Drives an input port (value is masked to the port width).
    ///
    /// # Errors
    ///
    /// [`RtlError::Undeclared`] naming an unknown port.
    pub fn set_input(&mut self, name: &str, value: u64) -> Result<(), RtlError> {
        let slot = match self.cm.sig_index.get(name) {
            Some(&s) if matches!(self.cm.sigs[s as usize].kind, SigKind::Input) => s,
            _ => {
                return Err(RtlError::Undeclared {
                    name: name.to_string(),
                })
            }
        };
        let v = value & mask(self.cm.sigs[slot as usize].width);
        if self.arena[slot as usize] != v {
            self.arena[slot as usize] = v;
            // Merge into the last-commit event list so the scheduler
            // re-executes states sensitive to this port.
            bit_set(&mut self.changed_sigs, slot);
        }
        self.quiescent = false;
        Ok(())
    }

    /// Overwrites a register (for test setup; value is masked).
    ///
    /// # Errors
    ///
    /// [`RtlError::Undeclared`] naming an unknown register.
    pub fn set_reg(&mut self, name: &str, value: u64) -> Result<(), RtlError> {
        let slot = match self.cm.sig_index.get(name) {
            Some(&s) if matches!(self.cm.sigs[s as usize].kind, SigKind::Reg { .. }) => s,
            _ => {
                return Err(RtlError::Undeclared {
                    name: name.to_string(),
                })
            }
        };
        let v = value & mask(self.cm.sigs[slot as usize].width);
        self.arena[slot as usize] = v;
        // A poke may desynchronize a register the quiescent state writes
        // but never reads; force a full execution to re-establish the
        // scheduler's invariant.
        self.last_exec = None;
        self.quiescent = false;
        Ok(())
    }

    /// Loads `data` into a memory starting at word 0 (for program
    /// loading). Words are masked to the memory width.
    ///
    /// # Errors
    ///
    /// [`RtlError::Undeclared`] for an unknown memory;
    /// [`RtlError::AddressOutOfRange`] when `data` overruns it.
    pub fn load_mem(&mut self, name: &str, data: &[u64]) -> Result<(), RtlError> {
        let Some(&mem) = self.cm.mem_index.get(name) else {
            return Err(RtlError::Undeclared {
                name: name.to_string(),
            });
        };
        let m = &self.cm.mems[mem as usize];
        if data.len() as u64 > m.words {
            return Err(RtlError::AddressOutOfRange {
                name: name.to_string(),
                addr: data.len() as u64 - 1,
                words: m.words,
            });
        }
        for (i, &v) in data.iter().enumerate() {
            self.arena[m.base + i] = v & m.mask;
        }
        self.last_exec = None;
        self.quiescent = false;
        Ok(())
    }

    /// Executes one cycle (a halted machine steps as a no-op).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::AddressOutOfRange`] on a bad memory access,
    /// leaving the cycle uncommitted — exactly like the interpreter.
    pub fn step(&mut self) -> Result<(), RtlError> {
        if self.halted {
            return Ok(());
        }
        if self.last_exec == Some(self.state) {
            let st = &self.cm.states[self.state];
            if disjoint(&self.changed_sigs, &st.read_sigs)
                && disjoint(&self.changed_mems, &st.read_mems)
            {
                // Same state, same reads: the cycle recomputes and
                // commits the values already stored.
                self.cycle += 1;
                self.fast_cycles += 1;
                self.quiescent = true;
                return Ok(());
            }
        }
        self.exec_cycle()
    }

    /// Runs until `halt` or until `max_cycles` have executed. Once a
    /// cycle proves quiescent the rest of the budget is fast-forwarded:
    /// with no external pokes possible mid-run, every remaining cycle is
    /// the same no-op.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledSim::step`] errors; running out of budget is
    /// *not* an error (the report's `halted` field says which happened).
    pub fn run(&mut self, max_cycles: u64) -> Result<RunReport, RtlError> {
        let mut cycles = 0;
        while !self.halted && cycles < max_cycles {
            self.step()?;
            cycles += 1;
            if self.quiescent {
                let rest = max_cycles - cycles;
                self.cycle += rest;
                self.fast_cycles += rest;
                cycles = max_cycles;
            }
        }
        Ok(RunReport {
            cycles,
            halted: self.halted,
        })
    }

    fn exec_cycle(&mut self) -> Result<(), RtlError> {
        self.epoch += 1;
        self.write_list.clear();
        self.mem_writes.clear();
        let mut next_state: Option<u32> = None;
        let mut halt = false;

        let n_ops = self.cm.states[self.state].ops.len();
        let mut pc = 0usize;
        while pc < n_ops {
            let op = self.cm.states[self.state].ops[pc];
            match op {
                Op::Const { dst, value } => self.temps[dst as usize] = value,
                Op::Load { dst, slot } => self.temps[dst as usize] = self.arena[slot as usize],
                Op::LoadMem { dst, mem, addr } => {
                    let a = self.temps[addr as usize];
                    let m = &self.cm.mems[mem as usize];
                    if a >= m.words {
                        return Err(RtlError::AddressOutOfRange {
                            name: m.name.clone(),
                            addr: a,
                            words: m.words,
                        });
                    }
                    self.temps[dst as usize] = self.arena[m.base + a as usize];
                }
                Op::Not { dst, a, mask } => {
                    self.temps[dst as usize] = !self.temps[a as usize] & mask;
                }
                Op::Neg { dst, a, mask } => {
                    self.temps[dst as usize] = self.temps[a as usize].wrapping_neg() & mask;
                }
                Op::IsZero { dst, a } => {
                    self.temps[dst as usize] = u64::from(self.temps[a as usize] == 0);
                }
                Op::Bin {
                    dst,
                    op,
                    a,
                    b,
                    mask,
                } => {
                    let x = self.temps[a as usize];
                    let y = self.temps[b as usize];
                    self.temps[dst as usize] = match op {
                        BinaryOp::Add => x.wrapping_add(y) & mask,
                        BinaryOp::Sub => x.wrapping_sub(y) & mask,
                        BinaryOp::And => x & y,
                        BinaryOp::Or => x | y,
                        BinaryOp::Xor => x ^ y,
                        BinaryOp::Shl => {
                            if y >= 64 {
                                0
                            } else {
                                (x << y) & mask
                            }
                        }
                        BinaryOp::Shr => {
                            if y >= 64 {
                                0
                            } else {
                                x >> y
                            }
                        }
                        BinaryOp::Eq => u64::from(x == y),
                        BinaryOp::Ne => u64::from(x != y),
                        BinaryOp::Lt => u64::from(x < y),
                        BinaryOp::Le => u64::from(x <= y),
                        BinaryOp::Gt => u64::from(x > y),
                        BinaryOp::Ge => u64::from(x >= y),
                        BinaryOp::LogicalAnd => u64::from(x != 0 && y != 0),
                        BinaryOp::LogicalOr => u64::from(x != 0 || y != 0),
                    };
                }
                Op::Slice { dst, a, lo, mask } => {
                    self.temps[dst as usize] = (self.temps[a as usize] >> lo) & mask;
                }
                Op::Fold {
                    dst,
                    acc,
                    part,
                    shift,
                    mask,
                } => {
                    self.temps[dst as usize] =
                        (self.temps[acc as usize] << shift) | (self.temps[part as usize] & mask);
                }
                Op::Jz { cond, target } => {
                    if self.temps[cond as usize] == 0 {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::Jmp { target } => {
                    pc = target as usize;
                    continue;
                }
                Op::StoreFull { slot, src, mask } => {
                    let v = self.temps[src as usize] & mask;
                    self.pend_sig(slot, v);
                }
                Op::StoreSlice {
                    slot,
                    src,
                    lo,
                    mask,
                } => {
                    let cur = if self.pending_epoch[slot as usize] == self.epoch {
                        self.pending[slot as usize]
                    } else {
                        self.arena[slot as usize]
                    };
                    let field = (self.temps[src as usize] & mask) << lo;
                    let keep = !(mask << lo);
                    self.pend_sig(slot, (cur & keep) | field);
                }
                Op::StoreMem {
                    mem,
                    addr,
                    src,
                    mask,
                } => {
                    let a = self.temps[addr as usize];
                    let m = &self.cm.mems[mem as usize];
                    if a >= m.words {
                        return Err(RtlError::AddressOutOfRange {
                            name: m.name.clone(),
                            addr: a,
                            words: m.words,
                        });
                    }
                    let v = self.temps[src as usize] & mask;
                    match self
                        .mem_writes
                        .iter_mut()
                        .find(|(wm, wa, _)| *wm == mem && *wa == a)
                    {
                        Some(w) => w.2 = v,
                        None => self.mem_writes.push((mem, a, v)),
                    }
                }
                Op::SetState { index } => next_state = Some(index),
                Op::Halt => halt = true,
            }
            pc += 1;
        }

        // Commit, recording change events into list two.
        self.next_sigs.iter_mut().for_each(|w| *w = 0);
        self.next_mems.iter_mut().for_each(|w| *w = 0);
        for i in 0..self.write_list.len() {
            let slot = self.write_list[i];
            let v = self.pending[slot as usize];
            if self.arena[slot as usize] != v {
                self.arena[slot as usize] = v;
                bit_set(&mut self.next_sigs, slot);
            }
        }
        for i in 0..self.mem_writes.len() {
            let (mem, a, v) = self.mem_writes[i];
            let idx = self.cm.mems[mem as usize].base + a as usize;
            if self.arena[idx] != v {
                self.arena[idx] = v;
                bit_set(&mut self.next_mems, mem);
            }
        }
        std::mem::swap(&mut self.changed_sigs, &mut self.next_sigs);
        std::mem::swap(&mut self.changed_mems, &mut self.next_mems);
        self.last_exec = Some(self.state);
        if let Some(next) = next_state {
            self.state = next as usize;
        }
        self.halted = halt;
        self.cycle += 1;
        self.quiescent = false;
        Ok(())
    }

    fn pend_sig(&mut self, slot: u32, value: u64) {
        if self.pending_epoch[slot as usize] != self.epoch {
            self.pending_epoch[slot as usize] = self.epoch;
            self.write_list.push(slot);
        }
        self.pending[slot as usize] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_rtl::parse;

    fn sim(src: &str) -> CompiledSim {
        CompiledSim::from_machine(&parse(src).unwrap())
    }

    #[test]
    fn counter_counts_and_halts() {
        let mut s = sim("machine c { reg n[8]; state r { n := n + 1; if n == 5 { halt; } } }");
        let report = s.run(100).unwrap();
        assert!(report.halted);
        assert_eq!(report.cycles, 6);
        assert_eq!(s.reg("n"), Some(6));
    }

    #[test]
    fn transfers_are_parallel() {
        let mut s = sim(
            "machine swap { reg a[8] init 3; reg b[8] init 9; state s { a := b; b := a; halt; } }",
        );
        s.run(10).unwrap();
        assert_eq!(s.reg("a"), Some(9));
        assert_eq!(s.reg("b"), Some(3));
    }

    #[test]
    fn quiescent_machine_fast_forwards() {
        // After the first cycle `a` stops changing; the scheduler must
        // skip the remaining budget instead of executing it.
        let mut s = sim("machine q { reg a[8]; state s { a := 7; } }");
        let report = s.run(1_000_000_000).unwrap();
        assert!(!report.halted);
        assert_eq!(report.cycles, 1_000_000_000);
        assert_eq!(s.cycle(), 1_000_000_000);
        assert_eq!(s.reg("a"), Some(7));
        assert!(s.fast_forwarded() >= 999_999_990);
    }

    #[test]
    fn input_poke_breaks_quiescence() {
        let mut s = sim("machine io { port input x[8]; reg a[8];
               state s { a := x + 1; } }");
        s.run(100).unwrap();
        assert_eq!(s.reg("a"), Some(1));
        s.set_input("x", 41).unwrap();
        s.run(100).unwrap();
        assert_eq!(s.reg("a"), Some(42));
    }

    #[test]
    fn reg_poke_breaks_quiescence_even_unread() {
        // `a` is written but never read: a poke must still be overwritten
        // by the next cycle, as the interpreter would.
        let mut s = sim("machine p { reg a[8]; reg b[8]; state s { a := 7; } }");
        s.run(100).unwrap();
        s.set_reg("a", 99).unwrap();
        s.run(1).unwrap();
        assert_eq!(s.reg("a"), Some(7));
    }

    #[test]
    fn setters_name_unknown_signals() {
        let mut s = sim("machine u { reg a[8]; mem m[4][8]; port input x[1]; state s { halt; } }");
        assert!(matches!(
            s.set_input("a", 1),
            Err(RtlError::Undeclared { name }) if name == "a"
        ));
        assert!(matches!(
            s.set_reg("x", 1),
            Err(RtlError::Undeclared { name }) if name == "x"
        ));
        assert!(matches!(
            s.load_mem("nope", &[1]),
            Err(RtlError::Undeclared { name }) if name == "nope"
        ));
        assert!(matches!(
            s.load_mem("m", &[0; 5]),
            Err(RtlError::AddressOutOfRange {
                addr: 4,
                words: 4,
                ..
            })
        ));
        s.load_mem("m", &[1, 2, 3]).unwrap();
        assert_eq!(s.mem_word("m", 2), Some(3));
    }

    #[test]
    fn memory_bounds_error_leaves_cycle_uncommitted() {
        let mut s = sim(
            "machine m { reg a[8] init 200; reg d[8] init 5; mem ram[16][8];
               state r { d := ram[a]; } }",
        );
        let err = s.step().unwrap_err();
        assert!(matches!(err, RtlError::AddressOutOfRange { addr: 200, .. }));
        assert_eq!(s.cycle(), 0);
        assert_eq!(s.reg("d"), Some(5));
    }

    #[test]
    fn goto_and_slice_writes() {
        let mut s = sim("machine g { reg a[8] init 0; reg b[8] init 0xAB;
               state one { a[7:4] := b[3:0]; goto two; }
               state two { a[0] := 1; halt; } }");
        s.run(10).unwrap();
        assert_eq!(s.reg("a"), Some(0xB1));
        assert_eq!(s.state_name(), "two");
    }
}
