use crate::Program;

/// A reference PDP-8 instruction-set simulator.
///
/// Implements the straight PDP-8 subset the reproduction targets:
///
/// * memory-reference instructions `AND`/`TAD`/`ISZ`/`DCA`/`JMS`/`JMP`
///   with page-0/current-page addressing and single-level indirection;
/// * operate group 1 (`CLA CLL CMA CML IAC RAR RAL RTR RTL`) with the
///   documented micro-order sequencing;
/// * operate group 2 skip logic (`SMA SZA SNL` / `SPA SNA SZL SKP`),
///   `CLA`, `OSR`, `HLT`.
///
/// Not modelled (consistently absent from the ISL description too, so the
/// cross-check is exact): IOT devices, interrupts, auto-index registers
/// 010–017, `BSW`, and `EAE` options.
#[derive(Debug, Clone)]
pub struct Pdp8 {
    /// Program counter (12 bits).
    pub pc: u16,
    /// Accumulator (12 bits).
    pub ac: u16,
    /// Link bit.
    pub link: u16,
    /// Switch register (read by `OSR`).
    pub sr: u16,
    /// 4K words of 12-bit memory.
    pub mem: Vec<u16>,
    /// True after `HLT`.
    pub halted: bool,
    cycles: u64,
}

const W: u16 = 0o7777;

impl Default for Pdp8 {
    fn default() -> Self {
        Pdp8::new()
    }
}

impl Pdp8 {
    /// A machine with zeroed memory, PC at 0200 (the conventional start).
    pub fn new() -> Pdp8 {
        Pdp8 {
            pc: 0o200,
            ac: 0,
            link: 0,
            sr: 0,
            mem: vec![0; 4096],
            halted: false,
            cycles: 0,
        }
    }

    /// Loads an assembled program and sets the PC to its start address.
    pub fn load(&mut self, program: &Program) {
        for (addr, word) in &program.words {
            self.mem[*addr as usize] = *word;
        }
        self.pc = program.start;
        self.halted = false;
    }

    /// Instructions executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Executes one instruction. A halted machine does nothing.
    pub fn step(&mut self) {
        if self.halted {
            return;
        }
        let ir = self.mem[self.pc as usize];
        let ipc = self.pc; // address of this instruction (for paging)
        self.pc = (self.pc + 1) & W;
        self.cycles += 1;

        let opcode = ir >> 9;
        if opcode <= 5 {
            // Effective address.
            let offset = ir & 0o177;
            let mut ea = if ir & 0o200 != 0 {
                (ipc & 0o7600) | offset // current page
            } else {
                offset // page zero
            };
            if ir & 0o400 != 0 {
                ea = self.mem[ea as usize]; // indirect
            }
            match opcode {
                0 => self.ac &= self.mem[ea as usize],
                1 => {
                    // TAD: 13-bit add, link complements on carry.
                    let sum =
                        ((self.link << 12) | self.ac) as u32 + u32::from(self.mem[ea as usize]);
                    self.link = ((sum >> 12) & 1) as u16;
                    self.ac = (sum as u16) & W;
                }
                2 => {
                    let v = (self.mem[ea as usize] + 1) & W;
                    self.mem[ea as usize] = v;
                    if v == 0 {
                        self.pc = (self.pc + 1) & W;
                    }
                }
                3 => {
                    self.mem[ea as usize] = self.ac;
                    self.ac = 0;
                }
                4 => {
                    self.mem[ea as usize] = self.pc;
                    self.pc = (ea + 1) & W;
                }
                5 => self.pc = ea,
                _ => unreachable!(),
            }
        } else if opcode == 6 {
            // IOT: not modelled; executes as a no-op.
        } else if ir & 0o400 == 0 {
            // Operate group 1, micro-order sequence:
            // 1: CLA, CLL; 2: CMA, CML; 3: IAC; 4: rotates.
            if ir & 0o200 != 0 {
                self.ac = 0;
            }
            if ir & 0o100 != 0 {
                self.link = 0;
            }
            if ir & 0o040 != 0 {
                self.ac = !self.ac & W;
            }
            if ir & 0o020 != 0 {
                self.link ^= 1;
            }
            if ir & 0o001 != 0 {
                let sum = ((self.link << 12) | self.ac) + 1;
                self.link = (sum >> 12) & 1;
                self.ac = sum & W;
            }
            let twice = ir & 0o002 != 0;
            if ir & 0o010 != 0 {
                self.rar();
                if twice {
                    self.rar();
                }
            }
            if ir & 0o004 != 0 {
                self.ral();
                if twice {
                    self.ral();
                }
            }
        } else if ir & 0o001 == 0 {
            // Operate group 2: skip sense first, then CLA, OSR, HLT.
            let mut skip = (ir & 0o100 != 0 && self.ac & 0o4000 != 0)
                || (ir & 0o040 != 0 && self.ac == 0)
                || (ir & 0o020 != 0 && self.link == 1);
            if ir & 0o010 != 0 {
                skip = !skip;
            }
            if skip {
                self.pc = (self.pc + 1) & W;
            }
            if ir & 0o200 != 0 {
                self.ac = 0;
            }
            if ir & 0o004 != 0 {
                self.ac |= self.sr;
            }
            if ir & 0o002 != 0 {
                self.halted = true;
            }
        }
        // Group 3 (EAE) not modelled: no-op.
    }

    /// Runs until `HLT` or until `max` instructions have executed.
    /// Returns true if the machine halted.
    pub fn run(&mut self, max: u64) -> bool {
        let mut n = 0;
        while !self.halted && n < max {
            self.step();
            n += 1;
        }
        self.halted
    }

    fn rar(&mut self) {
        let out = self.ac & 1;
        self.ac = (self.ac >> 1) | (self.link << 11);
        self.link = out;
    }

    fn ral(&mut self) {
        let out = (self.ac >> 11) & 1;
        self.ac = ((self.ac << 1) & W) | self.link;
        self.link = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_words(words: &[(u16, u16)], start: u16, max: u64) -> Pdp8 {
        let mut cpu = Pdp8::new();
        for &(a, w) in words {
            cpu.mem[a as usize] = w;
        }
        cpu.pc = start;
        cpu.run(max);
        cpu
    }

    #[test]
    fn tad_adds_and_sets_link_on_carry() {
        // TAD 0100 (page 0, addr 100 holds 7777), AC starts 1 via IAC.
        let cpu = run_words(
            &[
                (0o200, 0o7001), // IAC
                (0o201, 0o1100), // TAD 100
                (0o202, 0o7402), // HLT
                (0o100, 0o7777),
            ],
            0o200,
            10,
        );
        assert_eq!(cpu.ac, 0); // 1 + 7777 wraps
        assert_eq!(cpu.link, 1); // carry complements link
        assert!(cpu.halted);
    }

    #[test]
    fn and_masks() {
        let cpu = run_words(
            &[
                (0o200, 0o7001), // IAC -> AC=1... need richer value
                (0o201, 0o1101), // TAD 101 (0o0776) -> AC=0777
                (0o202, 0o0100), // AND 100 (0o0707)
                (0o203, 0o7402),
                (0o100, 0o0707),
                (0o101, 0o0776),
            ],
            0o200,
            10,
        );
        assert_eq!(cpu.ac, 0o0707);
    }

    #[test]
    fn isz_skips_on_zero() {
        let cpu = run_words(
            &[
                (0o200, 0o2100), // ISZ 100 (holds 7777 -> becomes 0, skip)
                (0o201, 0o7001), // IAC (skipped)
                (0o202, 0o7402), // HLT
                (0o100, 0o7777),
            ],
            0o200,
            10,
        );
        assert_eq!(cpu.ac, 0);
        assert_eq!(cpu.mem[0o100], 0);
    }

    #[test]
    fn dca_deposits_and_clears() {
        let cpu = run_words(
            &[
                (0o200, 0o7001), // IAC
                (0o201, 0o3100), // DCA 100
                (0o202, 0o7402),
            ],
            0o200,
            10,
        );
        assert_eq!(cpu.mem[0o100], 1);
        assert_eq!(cpu.ac, 0);
    }

    #[test]
    fn jms_saves_return_address() {
        let cpu = run_words(
            &[
                (0o200, 0o4210), // JMS 210 (current page)
                (0o201, 0o7402), // HLT (returned here)
                (0o210, 0o0000), // subroutine entry (return slot)
                (0o211, 0o7001), // IAC
                (0o212, 0o5610), // JMP I 210 (return)
            ],
            0o200,
            20,
        );
        assert_eq!(cpu.mem[0o210], 0o201);
        assert_eq!(cpu.ac, 1);
        assert!(cpu.halted);
    }

    #[test]
    fn indirect_addressing() {
        let cpu = run_words(
            &[
                (0o200, 0o1500), // TAD I 100
                (0o201, 0o7402),
                (0o100, 0o0300), // pointer
                (0o300, 0o0042),
            ],
            0o200,
            10,
        );
        assert_eq!(cpu.ac, 0o42);
    }

    #[test]
    fn current_page_addressing() {
        // Instruction at 0400 referencing offset 020 on its own page
        // (0420).
        let cpu = run_words(
            &[
                (0o400, 0o1220), // TAD 420 (page bit set)
                (0o401, 0o7402),
                (0o420, 0o0055),
            ],
            0o400,
            10,
        );
        assert_eq!(cpu.ac, 0o55);
    }

    #[test]
    fn group1_micro_order() {
        // CLA CMA IAC = 7241 -> AC = -0 complemented... CLA then CMA gives
        // 7777, IAC carries to 0 and flips link.
        let cpu = run_words(&[(0o200, 0o7241), (0o201, 0o7402)], 0o200, 10);
        assert_eq!(cpu.ac, 0);
        assert_eq!(cpu.link, 1);
    }

    #[test]
    fn rotates() {
        // AC = 1 via IAC, then RAR: bit 0 -> link, link(0) -> bit 11.
        let cpu = run_words(
            &[(0o200, 0o7001), (0o201, 0o7010), (0o202, 0o7402)],
            0o200,
            10,
        );
        assert_eq!(cpu.ac, 0);
        assert_eq!(cpu.link, 1);
        // RAL brings it back.
        let cpu = run_words(
            &[
                (0o200, 0o7001),
                (0o201, 0o7010), // RAR
                (0o202, 0o7004), // RAL
                (0o203, 0o7402),
            ],
            0o200,
            10,
        );
        assert_eq!(cpu.ac, 1);
        assert_eq!(cpu.link, 0);
    }

    #[test]
    fn double_rotates() {
        // AC=2: RTR moves bit1->link? RAR twice: 2 -> 1 -> link=1,ac=0...
        let cpu = run_words(
            &[
                (0o200, 0o7001), // IAC (AC=1)
                (0o201, 0o7004), // RAL (AC=2)
                (0o202, 0o7012), // RTR (AC=2 -> rar: 1 -> rar: 0, link 1)
                (0o203, 0o7402),
            ],
            0o200,
            10,
        );
        assert_eq!(cpu.ac, 0);
        assert_eq!(cpu.link, 1);
    }

    #[test]
    fn group2_skips() {
        // SZA with AC=0 skips.
        let cpu = run_words(
            &[
                (0o200, 0o7440), // SZA
                (0o201, 0o7001), // IAC (skipped)
                (0o202, 0o7402),
            ],
            0o200,
            10,
        );
        assert_eq!(cpu.ac, 0);
        // SPA with negative AC does not skip; reversed sense.
        let cpu = run_words(
            &[
                (0o200, 0o7040), // CMA -> AC = 7777 (negative)
                (0o201, 0o7510), // SPA
                (0o202, 0o7402), // HLT (not skipped)
                (0o203, 0o7001),
            ],
            0o200,
            10,
        );
        assert!(cpu.halted);
        assert_eq!(cpu.ac, 0o7777);
    }

    #[test]
    fn osr_ors_switches() {
        let mut cpu = Pdp8::new();
        cpu.sr = 0o1234;
        cpu.mem[0o200] = 0o7404; // OSR
        cpu.mem[0o201] = 0o7402;
        cpu.pc = 0o200;
        cpu.run(10);
        assert_eq!(cpu.ac, 0o1234);
    }

    #[test]
    fn iot_is_noop() {
        let cpu = run_words(&[(0o200, 0o6046), (0o201, 0o7402)], 0o200, 10);
        assert!(cpu.halted);
        assert_eq!(cpu.ac, 0);
    }

    #[test]
    fn halted_machine_is_inert() {
        let mut cpu = run_words(&[(0o200, 0o7402)], 0o200, 10);
        let cycles = cpu.cycles();
        cpu.step();
        assert_eq!(cpu.cycles(), cycles);
    }
}
