use silc_synth::ModuleClass;

/// Rationale recorded alongside the baseline numbers in EXPERIMENTS.md.
pub const BASELINE_NOTES: &str = "Hand allocation of a straight-8 class datapath: \
six dedicated registers (AC, PC, MA, MB, IR, L), one shared 12-bit \
adder + logic unit + single-position shifter, steering multiplexers on \
PC/MA/MB and a 3-way AC mux, 4K x 12 memory from 1K x 1 static RAM \
chips, PLA-based control. Costed with the same module catalogue as the \
synthesized design so the E1 ratio isolates the allocation quality, \
exactly as reference [6] compared module counts.";

/// The hand-designed ("commercial") PDP-8 module list used as the
/// baseline of experiment E1.
///
/// A skilled designer shares one ALU among all transfers, keeps mux ways
/// minimal, and wastes no width. The automatic compiler is allowed to be
/// up to 50% worse — the paper's headline claim.
pub fn commercial_baseline() -> Vec<ModuleClass> {
    vec![
        // Datapath registers.
        ModuleClass::Register { width: 12 }, // AC
        ModuleClass::Register { width: 12 }, // PC
        ModuleClass::Register { width: 12 }, // MA
        ModuleClass::Register { width: 12 }, // MB
        ModuleClass::Register { width: 12 }, // IR
        ModuleClass::Register { width: 1 },  // L
        // One shared arithmetic/logic section.
        ModuleClass::Adder { width: 12 },
        ModuleClass::BitLogic { width: 12 },
        ModuleClass::Shifter { width: 12 },
        // Steering.
        ModuleClass::Mux { ways: 2, width: 12 }, // PC source
        ModuleClass::Mux { ways: 2, width: 12 }, // MA source
        ModuleClass::Mux { ways: 3, width: 12 }, // AC source
        ModuleClass::Mux { ways: 2, width: 12 }, // MB source
        // Main memory: 4K x 12 from 1K x 1 parts.
        ModuleClass::Memory {
            words: 4096,
            width: 12,
        },
        // Control: timing/IR decode PLA plus major-state register.
        ModuleClass::ControlPla {
            inputs: 10,
            outputs: 24,
            terms: 45,
        },
        ModuleClass::StateRegister { bits: 3 },
    ]
}

/// Total package count of the baseline.
pub fn baseline_packages() -> u64 {
    commercial_baseline()
        .iter()
        .map(ModuleClass::packages)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isp_machine;
    use silc_synth::{synthesize, Sharing, SynthOptions};

    #[test]
    fn baseline_is_dominated_by_memory() {
        let total = baseline_packages();
        let memory = ModuleClass::Memory {
            words: 4096,
            width: 12,
        }
        .packages();
        assert_eq!(memory, 48);
        assert!(total > memory, "total {total}");
        assert!(
            total < 120,
            "hand design stays under 120 packages, got {total}"
        );
    }

    #[test]
    fn synthesized_pdp8_is_within_fifty_percent() {
        // The E1 headline: compile the ISP description, compare package
        // counts with the hand design.
        let machine = isp_machine().unwrap();
        let alloc = synthesize(
            &machine,
            &SynthOptions {
                sharing: Sharing::Shared,
            },
        );
        let ratio = alloc.estimate.package_ratio(baseline_packages());
        assert!(
            ratio <= 1.5,
            "automatic allocation must be within 50% of the {} baseline packages, got {} (ratio {ratio:.2})",
            baseline_packages(),
            alloc.estimate.packages
        );
        assert!(
            ratio >= 1.0,
            "automatic allocation should not beat the hand design, got ratio {ratio:.2}"
        );
    }

    #[test]
    fn per_operation_allocation_is_worse() {
        let machine = isp_machine().unwrap();
        let shared = synthesize(
            &machine,
            &SynthOptions {
                sharing: Sharing::Shared,
            },
        );
        let per_op = synthesize(
            &machine,
            &SynthOptions {
                sharing: Sharing::PerOperation,
            },
        );
        assert!(per_op.estimate.packages > shared.estimate.packages);
        assert!(per_op.estimate.area_lambda2 > shared.estimate.area_lambda2);
    }
}
