use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembled program: a list of `(address, word)` pairs plus the start
/// address (the first `*org`, or 0200).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Memory image.
    pub words: Vec<(u16, u16)>,
    /// Initial program counter.
    pub start: u16,
}

impl Program {
    /// The assembled word at `addr`, if any.
    pub fn word_at(&self, addr: u16) -> Option<u16> {
        self.words.iter().find(|(a, _)| *a == addr).map(|(_, w)| *w)
    }

    /// Number of assembled words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when nothing was assembled.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Error produced by the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error on line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

const MEMREF: [(&str, u16); 6] = [
    ("and", 0o0000),
    ("tad", 0o1000),
    ("isz", 0o2000),
    ("dca", 0o3000),
    ("jms", 0o4000),
    ("jmp", 0o5000),
];

const MICRO: [(&str, u16); 19] = [
    ("nop", 0o7000),
    ("cla", 0o7200),
    ("cll", 0o7100),
    ("cma", 0o7040),
    ("cml", 0o7020),
    ("iac", 0o7001),
    ("rar", 0o7010),
    ("ral", 0o7004),
    ("rtr", 0o7012),
    ("rtl", 0o7006),
    ("sma", 0o7500),
    ("sza", 0o7440),
    ("snl", 0o7420),
    ("spa", 0o7510),
    ("sna", 0o7450),
    ("szl", 0o7430),
    ("skp", 0o7410),
    ("osr", 0o7404),
    ("hlt", 0o7402),
];

/// Assembles PAL-style PDP-8 source.
///
/// Syntax:
///
/// * `*400` — set the location counter (octal);
/// * `label,` — define a label at the current location;
/// * `tad X` / `tad i X` — memory-reference instruction, operand a label
///   or octal address, `i` for indirection; the assembler picks page-0 or
///   current-page encoding and rejects off-page references;
/// * `cla cll iac` — operate micro-instructions, OR-combined;
/// * a bare octal number — a data word;
/// * `/` starts a comment.
///
/// # Errors
///
/// [`AsmError`] with the offending line: unknown mnemonics, undefined
/// labels, off-page references, illegal group combinations.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: label addresses.
    let mut labels: HashMap<String, u16> = HashMap::new();
    let mut lc: u16 = 0o200;
    let mut start: Option<u16> = None;
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip(raw);
        if line.is_empty() {
            continue;
        }
        let err = |m: String| AsmError {
            line: lineno + 1,
            message: m,
        };
        let mut rest = line.as_str();
        if let Some(org) = rest.strip_prefix('*') {
            lc = parse_octal(org.trim()).ok_or_else(|| err("bad org address".into()))?;
            if start.is_none() {
                start = Some(lc);
            }
            continue;
        }
        if let Some(comma) = rest.find(',') {
            let label = rest[..comma].trim().to_string();
            if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(format!("bad label `{label}`")));
            }
            if labels.insert(label.clone(), lc).is_some() {
                return Err(err(format!("label `{label}` defined twice")));
            }
            rest = rest[comma + 1..].trim();
        }
        if !rest.is_empty() {
            lc = lc.wrapping_add(1) & 0o7777;
        }
    }

    // Pass 2: encode.
    let mut words: Vec<(u16, u16)> = Vec::new();
    lc = 0o200;
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip(raw);
        if line.is_empty() {
            continue;
        }
        let err = |m: String| AsmError {
            line: lineno + 1,
            message: m,
        };
        let mut rest = line.as_str();
        if let Some(org) = rest.strip_prefix('*') {
            lc = parse_octal(org.trim()).ok_or_else(|| err("bad org address".into()))?;
            continue;
        }
        if let Some(comma) = rest.find(',') {
            rest = rest[comma + 1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let word = encode_line(rest, lc, &labels).map_err(err)?;
        words.push((lc, word));
        lc = lc.wrapping_add(1) & 0o7777;
    }

    Ok(Program {
        words,
        start: start.unwrap_or(0o200),
    })
}

fn strip(raw: &str) -> String {
    raw.split('/').next().unwrap_or("").trim().to_lowercase()
}

fn parse_octal(s: &str) -> Option<u16> {
    if s.is_empty() || !s.chars().all(|c| ('0'..='7').contains(&c)) {
        return None;
    }
    u16::from_str_radix(s, 8).ok().filter(|&v| v <= 0o7777)
}

fn encode_line(text: &str, lc: u16, labels: &HashMap<String, u16>) -> Result<u16, String> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    debug_assert!(!tokens.is_empty());

    // Data word?
    if tokens.len() == 1 {
        if let Some(v) = parse_octal(tokens[0]) {
            return Ok(v);
        }
    }

    // Memory-reference instruction?
    if let Some(&(_, opcode)) = MEMREF.iter().find(|(m, _)| *m == tokens[0]) {
        let mut idx = 1;
        let mut indirect = 0;
        if tokens.get(idx) == Some(&"i") {
            indirect = 0o400;
            idx += 1;
        }
        let operand = tokens
            .get(idx)
            .ok_or_else(|| format!("`{}` needs an operand", tokens[0]))?;
        if idx + 1 != tokens.len() {
            return Err("trailing junk after operand".into());
        }
        let addr = labels
            .get(*operand)
            .copied()
            .or_else(|| parse_octal(operand))
            .ok_or_else(|| format!("undefined symbol `{operand}`"))?;
        // Pick page encoding.
        if addr < 0o200 {
            Ok(opcode | indirect | addr)
        } else if addr & 0o7600 == lc & 0o7600 {
            Ok(opcode | indirect | 0o200 | (addr & 0o177))
        } else {
            Err(format!(
                "operand {addr:o} is neither on page zero nor on the current page ({:o})",
                lc & 0o7600
            ))
        }
    } else {
        // Operate microcoding: OR the bits, check group compatibility.
        let mut word = 0u16;
        let mut group1 = false;
        let mut group2 = false;
        for t in &tokens {
            let &(_, bits) = MICRO
                .iter()
                .find(|(m, _)| m == t)
                .ok_or_else(|| format!("unknown mnemonic `{t}`"))?;
            match bits & 0o7400 {
                0o7000 => group1 = group1 || bits != 0o7200 && bits != 0o7000,
                _ => group2 = true,
            }
            word |= bits;
        }
        if group1 && group2 {
            return Err("cannot mix operate group 1 and group 2 micro-orders".into());
        }
        Ok(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_words_and_org() {
        let p = assemble("*100\n7777\n0001\n").unwrap();
        assert_eq!(p.words, vec![(0o100, 0o7777), (0o101, 0o0001)]);
        assert_eq!(p.start, 0o100);
    }

    #[test]
    fn memref_page_zero() {
        let p = assemble("*200\ntad 100\n").unwrap();
        assert_eq!(p.word_at(0o200), Some(0o1100));
    }

    #[test]
    fn memref_current_page() {
        let p = assemble("*400\ntad 420\n").unwrap();
        assert_eq!(p.word_at(0o400), Some(0o1220));
    }

    #[test]
    fn indirect_bit() {
        let p = assemble("*200\njmp i 100\n").unwrap();
        assert_eq!(p.word_at(0o200), Some(0o5500));
    }

    #[test]
    fn labels_resolve() {
        let p = assemble(
            "*200
             start, tad val
                    hlt
             val,   0042",
        )
        .unwrap();
        assert_eq!(p.word_at(0o200), Some(0o1202));
        assert_eq!(p.word_at(0o202), Some(0o0042));
    }

    #[test]
    fn micro_combination() {
        let p = assemble("*200\ncla cll\ncma iac\n").unwrap();
        assert_eq!(p.word_at(0o200), Some(0o7300));
        assert_eq!(p.word_at(0o201), Some(0o7041));
    }

    #[test]
    fn group_mixing_rejected() {
        let err = assemble("*200\ncma sza\n").unwrap_err();
        assert!(err.message.contains("group"));
    }

    #[test]
    fn cla_legal_in_both_groups() {
        assert!(assemble("*200\ncla sza\n").is_ok());
        assert!(assemble("*200\ncla iac\n").is_ok());
    }

    #[test]
    fn off_page_reference_rejected() {
        let err = assemble("*200\ntad 500\n").unwrap_err();
        assert!(err.message.contains("page"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = assemble("*200\ntad nowhere\n").unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a, 0001\na, 0002\n").unwrap_err();
        assert!(err.message.contains("twice"));
    }

    #[test]
    fn comments_stripped() {
        let p = assemble("*200 / set origin\nhlt / stop\n").unwrap();
        assert_eq!(p.word_at(0o200), Some(0o7402));
    }

    #[test]
    fn default_start() {
        let p = assemble("hlt\n").unwrap();
        assert_eq!(p.start, 0o200);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
