use crate::{Pdp8, Program};
use silc_rtl::{parse, Machine, RtlError, Simulator};

/// The PDP-8 written as an ISL behavioral description — the input to the
/// paper's "second definition" of silicon compilation.
///
/// The description is instruction-set equivalent to [`Pdp8`] (same subset,
/// same micro-order semantics), organised as a small state machine:
/// fetch → decode → (defer) → execute for memory-reference instructions,
/// and a four-step micro-sequence for operate group 1.
pub fn isp_source() -> &'static str {
    r#"
machine pdp8 {
    reg pc[12];
    reg ac[12];
    reg l[1];
    reg ir[12];
    reg ma[12];
    reg page[5];
    mem m[4096][12];
    port input sr[12];

    state fetch {
        ir := m[pc];
        page := pc[11:7];
        pc := pc + 1;
        goto decode;
    }

    state decode {
        if ir[11:9] <= 5 {
            if ir[7] == 1 {
                ma := {page, ir[6:0]};
            } else {
                ma := {5'd0, ir[6:0]};
            }
            if ir[8] == 1 { goto defer; } else { goto execute; }
        } else {
            if ir[11:9] == 6 {
                goto fetch;                    // IOT: not modelled
            } else {
                if ir[8] == 0 { goto op1a; } else { goto op2; }
            }
        }
    }

    state defer {
        ma := m[ma];
        goto execute;
    }

    state execute {
        if ir[11:9] == 0 { ac := ac & m[ma]; }
        if ir[11:9] == 1 {
            l := ({l, ac} + m[ma])[12];
            ac := ({l, ac} + m[ma])[11:0];
        }
        if ir[11:9] == 2 {
            m[ma] := m[ma] + 1;
            if (m[ma] + 1)[11:0] == 0 { pc := pc + 1; }
        }
        if ir[11:9] == 3 { m[ma] := ac; ac := 0; }
        if ir[11:9] == 4 { m[ma] := pc; pc := ma + 1; }
        if ir[11:9] == 5 { pc := ma; }
        goto fetch;
    }

    // Operate group 1 micro-orders, in hardware event order:
    // 1 CLA/CLL, 2 CMA/CML, 3 IAC, 4 rotates.
    state op1a {
        if ir[7] == 1 { ac := 0; }
        if ir[6] == 1 { l := 0; }
        goto op1b;
    }
    state op1b {
        if ir[5] == 1 { ac := ~ac; }
        if ir[4] == 1 { l := ~l; }
        goto op1c;
    }
    state op1c {
        if ir[0] == 1 {
            l := ({l, ac} + 1)[12];
            ac := ({l, ac} + 1)[11:0];
        }
        goto op1rot;
    }
    state op1rot {
        if ir[3] == 1 {
            if ir[1] == 1 {
                l := ac[1];
                ac := {ac[0], l, ac[11:2]};     // RTR
            } else {
                l := ac[0];
                ac := {l, ac[11:1]};            // RAR
            }
        }
        if ir[2] == 1 {
            if ir[1] == 1 {
                l := ac[10];
                ac := {ac[9:0], l, ac[11]};     // RTL
            } else {
                l := ac[11];
                ac := {ac[10:0], l};            // RAL
            }
        }
        goto fetch;
    }

    // Operate group 2: skip sense on pre-cycle AC/L, then CLA, OSR, HLT.
    state op2 {
        if ((ir[6] & ac[11]) | (ir[5] & (ac == 0)) | (ir[4] & l)) != ir[3] {
            pc := pc + 1;
        }
        if ir[7] == 1 {
            if ir[2] == 1 { ac := sr; } else { ac := 0; }
        } else {
            if ir[2] == 1 { ac := ac | sr; }
        }
        if ir[1] == 1 { halt; }
        goto fetch;
    }
}
"#
}

/// Parses [`isp_source`] into a validated [`Machine`].
///
/// # Errors
///
/// Never fails in practice (the source is a compile-time constant covered
/// by tests); the `Result` mirrors [`parse`].
pub fn isp_machine() -> Result<Machine, RtlError> {
    parse(isp_source())
}

/// Loads an assembled program into an ISL simulator of the PDP-8 machine
/// (memory image plus start address).
pub fn load_program_into_isl(sim: &mut Simulator, program: &Program) {
    // Build the full 4K image so load_mem can place the words.
    let mut image = vec![0u64; 4096];
    for &(addr, word) in &program.words {
        image[addr as usize] = u64::from(word);
    }
    sim.load_mem("m", &image).expect("ISP machine declares m");
    sim.set_reg("pc", u64::from(program.start))
        .expect("ISP machine declares pc");
}

/// The outcome of running the same program on the ISA reference simulator
/// and the ISP behavioral description (experiment E7's behavioral
/// verification row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IspCrossCheck {
    /// True when every compared architectural element matched.
    pub matches: bool,
    /// (isa, isl) accumulator values.
    pub ac: (u16, u64),
    /// (isa, isl) link values.
    pub link: (u16, u64),
    /// (isa, isl) program counters.
    pub pc: (u16, u64),
    /// Addresses whose memory contents diverged.
    pub mem_mismatches: Vec<u16>,
    /// ISL cycles consumed (several per instruction).
    pub isl_cycles: u64,
}

impl IspCrossCheck {
    /// Runs `program` on both models until halt (or the instruction
    /// budget) and compares AC, L, PC and all of memory.
    ///
    /// # Errors
    ///
    /// Propagates ISL parse/simulation errors.
    pub fn run(program: &Program, max_instructions: u64) -> Result<IspCrossCheck, RtlError> {
        let mut isa = Pdp8::new();
        isa.load(program);
        isa.run(max_instructions);

        let machine = isp_machine()?;
        let mut isl = Simulator::new(&machine);
        load_program_into_isl(&mut isl, program);
        // Each instruction takes at most 6 ISL states.
        let report = isl.run(max_instructions * 8)?;

        let mut mem_mismatches = Vec::new();
        for addr in 0..4096u16 {
            let a = u64::from(isa.mem[addr as usize]);
            let b = isl.mem_word("m", u64::from(addr)).expect("4K memory");
            if a != b {
                mem_mismatches.push(addr);
            }
        }
        let ac = (isa.ac, isl.reg("ac").expect("ac exists"));
        let link = (isa.link, isl.reg("l").expect("l exists"));
        let pc = (isa.pc, isl.reg("pc").expect("pc exists"));
        let matches = u64::from(ac.0) == ac.1
            && u64::from(link.0) == link.1
            && u64::from(pc.0) == pc.1
            && mem_mismatches.is_empty()
            && isa.halted;
        Ok(IspCrossCheck {
            matches,
            ac,
            link,
            pc,
            mem_mismatches,
            isl_cycles: report.cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn isp_source_parses() {
        let m = isp_machine().unwrap();
        assert_eq!(m.name, "pdp8");
        assert_eq!(m.state_count(), 9);
        assert_eq!(m.register_bits(), 12 + 12 + 1 + 12 + 12 + 5);
        assert_eq!(m.memory_bits(), 4096 * 12);
    }

    fn check(src: &str) -> IspCrossCheck {
        let program = assemble(src).unwrap();
        let result = IspCrossCheck::run(&program, 500).unwrap();
        assert!(
            result.matches,
            "cross-check failed: ac {:?} link {:?} pc {:?} mem {:?}",
            result.ac, result.link, result.pc, result.mem_mismatches
        );
        result
    }

    #[test]
    fn arithmetic_program_agrees() {
        check(
            "*200
             cla cll
             tad a
             tad b
             dca sum
             hlt
             a,   0025
             b,   0031
             sum, 0000",
        );
    }

    #[test]
    fn loop_program_agrees() {
        // Sum 1..5 with an ISZ-driven loop.
        check(
            "*200
                     cla cll
             loop,   tad count
                     dca acc2      / acc2 accumulates? no - recompute
                     tad acc2
                     tad total
                     dca total
                     isz count
                     jmp loop
                     hlt
             count,  7773          / -5
             acc2,   0000
             total,  0000",
        );
    }

    #[test]
    fn rotate_and_complement_agree() {
        check(
            "*200
             cla cll
             tad v
             cma cml
             rtl
             rar
             iac
             hlt
             v, 2525",
        );
    }

    #[test]
    fn subroutine_agrees() {
        check(
            "*200
                    cla
                    jms sub
                    tad x
                    hlt
             sub,   0000
                    tad y
                    jmp i sub
             x,     0003
             y,     0010",
        );
    }

    #[test]
    fn skip_chains_agree() {
        check(
            "*200
             cla cll
             sza          / AC==0: skip
             hlt          / skipped
             cma          / AC=7777 (negative)
             spa          / not skipped
             iac          / executes: AC=0, link flips
             sna          / AC==0 -> no skip (sna skips when nonzero)
             tad k
             hlt
             k, 0007",
        );
    }

    #[test]
    fn indirect_and_isz_agree() {
        check(
            "*200
             start, isz n
                    jmp start
                    tad i ptr
                    hlt
             n,     7775
             ptr,   0300
             *300
             0042",
        );
    }

    #[test]
    fn osr_reads_switches_in_both() {
        let program = assemble("*200\ncla\nosr\nhlt\n").unwrap();
        let mut isa = Pdp8::new();
        isa.sr = 0o1234;
        isa.load(&program);
        isa.run(100);

        let machine = isp_machine().unwrap();
        let mut isl = Simulator::new(&machine);
        load_program_into_isl(&mut isl, &program);
        isl.set_input("sr", 0o1234).unwrap();
        isl.run(100).unwrap();

        assert_eq!(u64::from(isa.ac), isl.reg("ac").unwrap());
        assert_eq!(isa.ac, 0o1234);
    }

    #[test]
    fn isl_takes_multiple_cycles_per_instruction() {
        let program = assemble("*200\nhlt\n").unwrap();
        let result = IspCrossCheck::run(&program, 10).unwrap();
        // fetch + decode + op2 = 3 cycles for one instruction.
        assert_eq!(result.isl_cycles, 3);
    }
}
