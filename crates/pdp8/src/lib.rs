//! # silc-pdp8 — the PDP-8 reproduction target
//!
//! The paper's reference \[6\] reports compiling "a PDP-8 from an ISP
//! behavioral description using standard modules with a chip count within
//! 50% of a commercial design". This crate rebuilds everything that claim
//! needs:
//!
//! * [`Pdp8`] — a reference instruction-set simulator for the PDP-8
//!   subset (memory-reference instructions with paging and indirection,
//!   both operate groups; no IOT devices, interrupts or auto-indexing);
//! * [`assemble`] — a PAL-style assembler (labels, `*org`, microcoded
//!   operate combinations) for writing test programs;
//! * [`isp_source`] / [`isp_machine`] — the same processor written as an
//!   ISL behavioral description, simulable with [`silc_rtl::Simulator`]
//!   and compilable with [`silc_synth::synthesize`];
//! * [`commercial_baseline`] — a hand-allocated module list standing in
//!   for the commercial design, costed with the *same* module catalogue,
//!   so the E1 package-count ratio is apples-to-apples.
//!
//! # Example
//!
//! ```
//! use silc_pdp8::{assemble, Pdp8};
//!
//! let program = assemble("
//!     *200
//!     start,  cla cll
//!             tad val
//!             iac
//!             hlt
//!     val,    0025
//! ")?;
//! let mut cpu = Pdp8::new();
//! cpu.load(&program);
//! cpu.run(100);
//! assert_eq!(cpu.ac, 0o26);
//! # Ok::<(), silc_pdp8::AsmError>(())
//! ```

mod asm;
mod baseline;
mod isa;
mod isp;

pub use asm::{assemble, AsmError, Program};
pub use baseline::{baseline_packages, commercial_baseline, BASELINE_NOTES};
pub use isa::Pdp8;
pub use isp::{isp_machine, isp_source, load_program_into_isl, IspCrossCheck};
