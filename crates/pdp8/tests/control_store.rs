//! The compiled PDP-8's control unit as silicon: derive the exact
//! control-store personality from the ISP description, replay a program
//! to prove it predicts every micro-state transition, then program it
//! into a PLA, lay it out and design-rule check it.

use silc_pdp8::isp_machine;
use silc_rtl::Simulator;
use silc_synth::{control_conditions, control_table};

#[test]
fn control_store_predicts_every_microstep() {
    let machine = isp_machine().expect("parses");
    let cs = control_table(&machine);
    let conditions = control_conditions(&machine);

    // A program touching every instruction class: memory reference with
    // indirection, ISZ skip, JMS/JMP, both operate groups.
    let mut image = vec![0u64; 4096];
    let words: [(usize, u64); 12] = [
        (0o200, 0o7300), // CLA CLL
        (0o201, 0o1100), // TAD 100
        (0o202, 0o3101), // DCA 101
        (0o203, 0o2102), // ISZ 102 (7777 -> skip)
        (0o204, 0o7402), // HLT (skipped)
        (0o205, 0o4210), // JMS 210
        (0o206, 0o1501), // TAD I 101
        (0o207, 0o7402), // HLT
        (0o210, 0o0000), // subroutine return slot
        (0o211, 0o7041), // CMA IAC
        (0o212, 0o5610), // JMP I 210
        (0o100, 0o0025),
    ];
    for (a, w) in words {
        image[a] = w;
    }
    image[0o102] = 0o7777;
    image[0o101] = 0;

    let mut sim = Simulator::new(&machine);
    sim.load_mem("m", &image).unwrap();
    sim.set_reg("pc", 0o200).unwrap();

    let mut steps = 0;
    while !sim.is_halted() && steps < 400 {
        let state = machine.state_index(sim.state_name()).unwrap() as u64;
        let nc = conditions.len();
        let mut minterm = state << nc;
        for (i, cond) in conditions.iter().enumerate() {
            if sim.eval_expr(cond).expect("evaluates") != 0 {
                minterm |= 1 << (nc - 1 - i);
            }
        }
        let mut predicted = 0u64;
        for b in 0..cs.state_bits as usize {
            if cs.table.eval(b, minterm).expect("in range") == Some(true) {
                predicted |= 1 << (cs.state_bits as usize - 1 - b);
            }
        }
        sim.step().expect("steps");
        let actual = machine.state_index(sim.state_name()).unwrap() as u64;
        assert_eq!(predicted, actual, "microstep {steps}");
        steps += 1;
    }
    assert!(sim.is_halted(), "program must reach HLT");
}

#[test]
fn control_store_lays_out_drc_clean() {
    let machine = isp_machine().expect("parses");
    let cs = control_table(&machine);
    // Wide personality: the heuristic minimizer handles any width.
    let spec = silc_pla::PlaSpec::from_truth_table(&cs.table, silc_pla::Minimize::Heuristic)
        .expect("personality");
    assert!(spec.num_terms() > 0);
    let mut lib = silc_layout::Library::new();
    let id = silc_pla::generate_layout(&spec, &mut lib, "pdp8_control").expect("layout");
    let report =
        silc_drc::check(&lib, id, &silc_drc::RuleSet::mead_conway_nmos()).expect("root exists");
    assert!(report.is_clean(), "{report}");
    // The control store is a real chunk of silicon.
    let (w, h) = spec.area_estimate();
    assert!(w > 100 && h > 100, "control store is {w}x{h} lambda");
}
