//! # silc-mem — programmed memory generation
//!
//! The second half of the paper's regular-block observation: "regular
//! blocks, such as memories and PLAs, are programmed for specific
//! functions". Two generators:
//!
//! * [`RomSpec`] — a read-only memory. A ROM is structurally a PLA with a
//!   full address decoder: each word is a fully-specified product term,
//!   each data bit an OR-plane column. The generator therefore reuses the
//!   `silc-pla` layout machinery, and can optionally *minimize* the word
//!   lines (words sharing bit patterns merge — real 1970s ROM compilers
//!   did exactly this).
//! * [`RamArray`] — a static RAM cell array with poly word lines and
//!   metal bit lines, parameterised by geometry, with the same
//!   DRC-clean stylization as the PLA planes.
//!
//! # Example
//!
//! ```
//! use silc_mem::RomSpec;
//! use silc_layout::Library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rom = RomSpec::new(3, 4, &[0xA, 0x5, 0xF, 0x0, 0x3, 0xC, 0x9, 0x6])?;
//! let mut lib = Library::new();
//! let id = rom.generate(&mut lib, "boot")?;
//! assert!(lib.cell(id).is_some());
//! # Ok(())
//! # }
//! ```

use silc_geom::{Coord, Point, Rect, Transform};
use silc_layout::{Cell, CellId, Element, Instance, Layer, Library, Port};
use silc_logic::{Cube, OutBit, TruthTable};
use silc_pla::{generate_layout, Minimize, PlaError, PlaSpec};
use std::error::Error;
use std::fmt;

/// Error produced by the memory generators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// Data length must be exactly 2^address_bits.
    WrongDataLength {
        /// Words expected.
        expected: usize,
        /// Words supplied.
        found: usize,
    },
    /// Word width must be 1..=64.
    BadWidth {
        /// Requested width.
        width: u32,
    },
    /// A word did not fit in the declared width.
    WordTooWide {
        /// Word index.
        index: usize,
        /// The offending value.
        value: u64,
    },
    /// A RAM array dimension was zero.
    EmptyArray,
    /// PLA generation failed.
    Pla(String),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::WrongDataLength { expected, found } => {
                write!(f, "ROM data must have {expected} words, got {found}")
            }
            MemError::BadWidth { width } => write!(f, "unusable word width {width}"),
            MemError::WordTooWide { index, value } => {
                write!(f, "word {index} value {value:#o} exceeds the word width")
            }
            MemError::EmptyArray => write!(f, "memory array dimensions must be positive"),
            MemError::Pla(m) => write!(f, "PLA generation failed: {m}"),
        }
    }
}

impl Error for MemError {}

impl From<PlaError> for MemError {
    fn from(e: PlaError) -> MemError {
        MemError::Pla(e.to_string())
    }
}

/// A programmed read-only memory: 2^n words of `width` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RomSpec {
    address_bits: u32,
    width: u32,
    data: Vec<u64>,
}

impl RomSpec {
    /// Creates a ROM description.
    ///
    /// # Errors
    ///
    /// * [`MemError::BadWidth`] unless `1 <= width <= 64`;
    /// * [`MemError::WrongDataLength`] unless `data.len() == 2^address_bits`;
    /// * [`MemError::WordTooWide`] if a word overflows `width` bits.
    pub fn new(address_bits: u32, width: u32, data: &[u64]) -> Result<RomSpec, MemError> {
        if width == 0 || width > 64 {
            return Err(MemError::BadWidth { width });
        }
        let expected = 1usize << address_bits;
        if data.len() != expected {
            return Err(MemError::WrongDataLength {
                expected,
                found: data.len(),
            });
        }
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        for (index, &value) in data.iter().enumerate() {
            if value & !mask != 0 {
                return Err(MemError::WordTooWide { index, value });
            }
        }
        Ok(RomSpec {
            address_bits,
            width,
            data: data.to_vec(),
        })
    }

    /// Address width in bits.
    pub fn address_bits(&self) -> u32 {
        self.address_bits
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The programmed contents.
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Reads a word (used to verify generated personalities).
    pub fn read(&self, addr: u64) -> Option<u64> {
        self.data.get(addr as usize).copied()
    }

    /// The ROM expressed as a multi-output truth table: address in, data
    /// bits out (bit `width-1` first).
    pub fn to_truth_table(&self) -> TruthTable {
        let mut t = TruthTable::new(self.address_bits as usize, self.width as usize);
        for (addr, &word) in self.data.iter().enumerate() {
            if word == 0 {
                continue; // all-zero words need no row
            }
            let outs: Vec<OutBit> = (0..self.width)
                .rev()
                .map(|b| {
                    if word >> b & 1 == 1 {
                        OutBit::On
                    } else {
                        OutBit::Off
                    }
                })
                .collect();
            let cube = Cube::from_minterm(self.address_bits as usize, addr as u64);
            t.push_row(cube, outs).expect("widths are consistent");
        }
        t
    }

    /// The PLA personality implementing this ROM.
    ///
    /// With `Minimize::None` the personality has one word line per
    /// non-zero word (the classic ROM); the minimizing modes merge words,
    /// trading decoder regularity for rows.
    ///
    /// # Errors
    ///
    /// Propagates minimizer failures.
    pub fn to_pla_spec(&self, minimize: Minimize) -> Result<PlaSpec, MemError> {
        PlaSpec::from_truth_table(&self.to_truth_table(), minimize)
            .map_err(|e| MemError::Pla(e.to_string()))
    }

    /// Generates the ROM layout (decoder plane + data plane) into `lib`.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] from spec building and layout generation.
    pub fn generate(&self, lib: &mut Library, name: &str) -> Result<CellId, MemError> {
        let spec = self.to_pla_spec(Minimize::None)?;
        Ok(generate_layout(&spec, lib, name)?)
    }

    /// Generates with word-line minimization.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] from spec building and layout generation.
    pub fn generate_minimized(&self, lib: &mut Library, name: &str) -> Result<CellId, MemError> {
        let spec = self.to_pla_spec(Minimize::Heuristic)?;
        Ok(generate_layout(&spec, lib, name)?)
    }
}

/// A static RAM cell array: `words` poly word lines crossing
/// `width` metal bit-line pairs, one pass transistor per crossing.
///
/// The array is the storage substrate a compiled processor instantiates;
/// peripheral sense amplifiers and decoders are abstracted to ports (the
/// decoder itself is a [`RomSpec`]-style plane when needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RamArray {
    /// Number of words (rows).
    pub words: u32,
    /// Bits per word (columns).
    pub width: u32,
}

/// Row pitch of the RAM array in lambda.
pub const RAM_ROW_PITCH: Coord = 12;
/// Column pitch of the RAM array in lambda.
pub const RAM_COL_PITCH: Coord = 12;

impl RamArray {
    /// Creates an array description.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyArray`] when either dimension is zero.
    pub fn new(words: u32, width: u32) -> Result<RamArray, MemError> {
        if words == 0 || width == 0 {
            return Err(MemError::EmptyArray);
        }
        Ok(RamArray { words, width })
    }

    /// Layout dimensions (width, height) in lambda.
    pub fn dimensions(&self) -> (Coord, Coord) {
        (
            Coord::from(self.width) * RAM_COL_PITCH + 8,
            Coord::from(self.words) * RAM_ROW_PITCH,
        )
    }

    /// Total storage bits.
    pub fn bits(&self) -> u64 {
        u64::from(self.words) * u64::from(self.width)
    }

    /// Generates the cell array into `lib`: a hierarchical grid of one
    /// storage-cell definition, word-line poly rows, bit-line metal
    /// columns, and ports `w<r>` / `b<c>`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Pla`] if the cell names collide in `lib`.
    pub fn generate(&self, lib: &mut Library, name: &str) -> Result<CellId, MemError> {
        let rect =
            |x0, y0, x1, y1| Rect::new(Point::new(x0, y0), Point::new(x1, y1)).expect("non-empty");
        // Storage cell: pass transistor from the bit line to the storage
        // node — diffusion crossing the word-line poly, contact to the
        // bit-line metal (same discipline as the PLA crosspoint, rotated).
        let mut bitcell = Cell::new(format!("{name}_cell"));
        bitcell.push_element(Element::rect(Layer::Diffusion, rect(-2, -6, 2, 3)));
        bitcell.push_element(Element::rect(Layer::Contact, rect(-1, -5, 1, -3)));
        let bit_id = lib
            .add_cell(bitcell)
            .map_err(|e| MemError::Pla(e.to_string()))?;

        let (w, h) = self.dimensions();
        let mut top = Cell::new(name);
        // Word lines: poly rows.
        for r in 0..self.words {
            let y = Coord::from(r) * RAM_ROW_PITCH;
            top.push_element(Element::rect(Layer::Poly, rect(-4, y - 1, w - 4, y + 1)));
            top.push_port(Port::new(format!("w{r}"), Layer::Poly, Point::new(-4, y)));
        }
        // Bit lines: metal columns.
        for c in 0..self.width {
            let x = Coord::from(c) * RAM_COL_PITCH;
            top.push_element(Element::rect(Layer::Metal, rect(x - 2, -6, x + 2, h - 6)));
            top.push_port(Port::new(format!("b{c}"), Layer::Metal, Point::new(x, -6)));
        }
        // One cell per crossing, as a native 2-D array instance.
        top.push_instance(
            Instance::array(
                bit_id,
                Transform::IDENTITY,
                self.width,
                self.words,
                RAM_COL_PITCH,
                RAM_ROW_PITCH,
            )
            .map_err(|e| MemError::Pla(e.to_string()))?,
        );
        lib.add_cell(top).map_err(|e| MemError::Pla(e.to_string()))
    }
}

impl fmt::Display for RomSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rom {}x{} ({} words)",
            1u64 << self.address_bits,
            self.width,
            self.data.len()
        )
    }
}

impl fmt::Display for RamArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ram {}x{}", self.words, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_drc::{check, RuleSet};
    use silc_layout::CellStats;

    fn rom8() -> RomSpec {
        RomSpec::new(3, 4, &[0xA, 0x5, 0xF, 0x0, 0x3, 0xC, 0x9, 0x6]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(matches!(
            RomSpec::new(2, 4, &[1, 2, 3]),
            Err(MemError::WrongDataLength { expected: 4, .. })
        ));
        assert!(matches!(
            RomSpec::new(2, 0, &[0; 4]),
            Err(MemError::BadWidth { .. })
        ));
        assert!(matches!(
            RomSpec::new(2, 2, &[0, 1, 4, 0]),
            Err(MemError::WordTooWide { index: 2, .. })
        ));
    }

    #[test]
    fn truth_table_reads_back() {
        let rom = rom8();
        let t = rom.to_truth_table();
        for addr in 0..8u64 {
            let word = rom.read(addr).unwrap();
            for b in 0..4u32 {
                // Output 0 is the MSB.
                let expected = word >> (3 - b) & 1 == 1;
                match t.eval(b as usize, addr).unwrap() {
                    Some(v) => assert_eq!(v, expected, "addr {addr} bit {b}"),
                    None => panic!("ROM has no don't-cares"),
                }
            }
        }
    }

    #[test]
    fn personality_preserves_contents() {
        let rom = rom8();
        for minimize in [Minimize::None, Minimize::Heuristic] {
            let spec = rom.to_pla_spec(minimize).unwrap();
            for addr in 0..8u64 {
                let word = rom.read(addr).unwrap();
                let outs = spec.eval(addr);
                for (b, &out) in outs.iter().enumerate().take(4) {
                    assert_eq!(
                        out,
                        word >> (3 - b) & 1 == 1,
                        "{minimize:?} addr {addr} bit {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_words_take_no_rows() {
        let rom = RomSpec::new(2, 4, &[0, 0xF, 0, 0x3]).unwrap();
        let spec = rom.to_pla_spec(Minimize::None).unwrap();
        assert_eq!(spec.num_terms(), 2);
    }

    #[test]
    fn minimization_trades_sharing_for_merged_cubes() {
        // A classic ROM lesson: unminimized, every non-zero word is one
        // row shared by all its bits; per-output minimization merges
        // cubes *within* an output but can destroy that cross-output
        // sharing, so the row count may go either way. What must hold:
        // the raw personality has exactly one row per non-zero word, and
        // the minimized one never exceeds the sum of per-output covers.
        let rom = rom8();
        let raw = rom.to_pla_spec(Minimize::None).unwrap();
        assert_eq!(raw.num_terms(), 7); // 7 non-zero words
        let min = rom.to_pla_spec(Minimize::Heuristic).unwrap();
        let per_output_total: usize = (0..4).map(|o| min.output_cover(o).len()).sum();
        assert!(min.num_terms() <= per_output_total);
    }

    #[test]
    fn rom_layout_is_drc_clean() {
        let mut lib = Library::new();
        let id = rom8().generate(&mut lib, "boot").unwrap();
        let report = check(&lib, id, &RuleSet::mead_conway_nmos()).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn ram_array_is_drc_clean_and_sized() {
        let ram = RamArray::new(8, 4).unwrap();
        let mut lib = Library::new();
        let id = ram.generate(&mut lib, "reg8x4").unwrap();
        let report = check(&lib, id, &RuleSet::mead_conway_nmos()).unwrap();
        assert!(report.is_clean(), "{report}");
        let stats = CellStats::compute(&lib, id).unwrap();
        // 8 rows x 4 columns of cells flattened: 4*8 cells x 2 elements
        // plus 8 word lines and 4 bit lines.
        assert_eq!(stats.flat_elements, 8 * 4 * 2 + 8 + 4);
        assert_eq!(ram.bits(), 32);
    }

    #[test]
    fn ram_validation() {
        assert!(matches!(RamArray::new(0, 4), Err(MemError::EmptyArray)));
        assert!(matches!(RamArray::new(4, 0), Err(MemError::EmptyArray)));
    }

    #[test]
    fn ram_ports_named() {
        let ram = RamArray::new(2, 3).unwrap();
        let mut lib = Library::new();
        let id = ram.generate(&mut lib, "r").unwrap();
        let cell = lib.cell(id).unwrap();
        assert!(cell.port("w0").is_some());
        assert!(cell.port("w1").is_some());
        assert!(cell.port("b2").is_some());
        assert!(cell.port("b3").is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(rom8().to_string(), "rom 8x4 (8 words)");
        assert_eq!(RamArray::new(16, 12).unwrap().to_string(), "ram 16x12");
    }
}
