//! E3 — parameterised chip assembly: one source, many widths. A
//! register-ALU datapath is generated at several bit widths from a single
//! parameterised SIL description, then assembled and routed.

use silc_lang::Compiler;
use silc_layout::Library;
use silc_route::{stack_assemble, AssemblyStats, Slice};

/// One assembled datapath measurement.
#[derive(Debug, Clone)]
pub struct AssemblyRow {
    /// Datapath width in bits.
    pub bits: usize,
    /// Assembled width in lambda.
    pub width: i64,
    /// Assembled height in lambda.
    pub height: i64,
    /// Die area in lambda².
    pub area: i64,
    /// Routed wire length in lambda.
    pub wire_length: i64,
    /// Tracks used in each channel.
    pub channel_tracks: Vec<usize>,
}

/// The parameterised datapath source: three stacked sections (register
/// file slice row, ALU row, bus driver row), each `bits` slices wide,
/// with per-bit ports on their facing edges.
pub fn datapath_source(bits: usize) -> String {
    format!(
        "cell reg_slice() {{
            box diff (2, 0) (4, 14);
            box poly (0, 4) (6, 6);
            box poly (0, 9) (6, 11);
            box metal (6, 0) (9, 14);
            box contact (6, 1) (8, 3);
         }}
         cell alu_slice() {{
            box diff (2, 0) (4, 16);
            box diff (8, 0) (10, 16);
            box poly (0, 5) (12, 7);
            box poly (0, 11) (12, 13);
            box metal (12, 0) (15, 16);
            box contact (12, 2) (14, 4);
         }}
         cell bus_slice() {{
            box metal (4, 0) (7, 10);
            box diff (0, 2) (2, 8);
         }}
         cell regs(n) {{
            for i in 0..n {{
                place reg_slice() at (i * 18, 0);
                port (\"b\" + str(i)) metal (i * 18 + 7, 14);
            }}
         }}
         cell alus(n) {{
            for i in 0..n {{
                place alu_slice() at (i * 18, 0);
                port (\"b\" + str(i)) metal (i * 18 + 13, 0);
                port (\"r\" + str(i)) metal (i * 18 + 13, 16);
            }}
         }}
         cell buses(n) {{
            for i in 0..n {{
                place bus_slice() at (i * 18, 0);
                port (\"r\" + str(i)) metal (i * 18 + 5, 0);
            }}
         }}
         place regs({bits}) at (0, 0);
         place alus({bits}) at (0, 100);
         place buses({bits}) at (0, 200);"
    )
}

fn build(bits: usize) -> (Library, Vec<Slice>) {
    let source = datapath_source(bits);
    let design = Compiler::new()
        .compile(&source)
        .unwrap_or_else(|e| panic!("datapath({bits}): {e}"));
    let lib = design.library;
    let find = |name: String| -> Slice {
        Slice::new(
            lib.cell_by_name(&name)
                .unwrap_or_else(|| panic!("cell {name} missing")),
        )
    };
    let slices = vec![
        find(format!("regs$i{bits}")),
        find(format!("alus$i{bits}")),
        find(format!("buses$i{bits}")),
    ];
    (lib, slices)
}

/// Assembles the datapath at a given width and measures it.
///
/// # Panics
///
/// Panics if the generated SIL fails to compile or route (covered by
/// tests).
pub fn run_one(bits: usize) -> AssemblyRow {
    let (mut lib, slices) = build(bits);
    let (_, stats): (_, AssemblyStats) = stack_assemble(
        &mut lib,
        &slices,
        silc_layout::Layer::Metal,
        3,
        6,
        "datapath",
    )
    .unwrap_or_else(|e| panic!("assembly({bits}): {e}"));
    AssemblyRow {
        bits,
        width: stats.width,
        height: stats.height,
        area: stats.width * stats.height,
        wire_length: stats.wire_length,
        channel_tracks: stats.channel_tracks,
    }
}

/// The sweep of experiment E3.
pub fn run(widths: &[usize]) -> Vec<AssemblyRow> {
    widths.iter().map(|&b| run_one(b)).collect()
}

/// Formats rows for display.
pub fn table(rows: &[AssemblyRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.bits.to_string(),
                r.width.to_string(),
                r.height.to_string(),
                r.area.to_string(),
                r.wire_length.to_string(),
                format!("{:?}", r.channel_tracks),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datapath_assembles_at_multiple_widths() {
        for bits in [4, 8, 16] {
            let row = run_one(bits);
            assert!(row.area > 0);
            assert_eq!(row.channel_tracks.len(), 2);
        }
    }

    #[test]
    fn area_and_wire_grow_with_width() {
        let narrow = run_one(4);
        let wide = run_one(16);
        assert!(wide.width > narrow.width);
        assert!(wide.wire_length > narrow.wire_length);
        // One description served both: that's the parameterisation claim;
        // nothing to assert beyond both having built successfully.
    }
}
