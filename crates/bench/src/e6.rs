//! E6 — compilation scaling: compile time, geometry count and CIF output
//! size as a function of design size. The motivation row of the paper:
//! complexity grows inexorably, so the tools must scale.

use crate::e2::shift_array;
use silc_cif::CifWriter;
use silc_drc::{check_flat, check_flat_brute, check_flat_serial, check_traced, RuleSet};
use silc_lang::{Compiler, Design};
use silc_layout::CellStats;
use silc_trace::Tracer;
use std::fmt::Write as _;
use std::time::Instant;

/// One design-size data point.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Array size parameter (the design is n x n cells).
    pub n: usize,
    /// Flattened artwork elements.
    pub flat_elements: usize,
    /// Bytes of emitted CIF.
    pub cif_bytes: usize,
    /// DRC violations (expected 0 — the generator is clean).
    pub drc_violations: usize,
}

/// Compiles the `n x n` shift-register array.
///
/// # Panics
///
/// Panics if the built-in SIL program fails (covered by tests).
pub fn compile_design(n: usize) -> Design {
    Compiler::new()
        .compile(&shift_array(n))
        .unwrap_or_else(|e| panic!("shift_array({n}): {e}"))
}

/// Emits CIF for a compiled design.
///
/// # Panics
///
/// Panics on writer failure (covered by tests).
pub fn emit_cif(design: &Design) -> String {
    CifWriter::new()
        .write_to_string(&design.library, design.top)
        .expect("valid root")
}

/// Measures one size point (structure only — timing is Criterion's job).
///
/// The row is read back from the pipeline's own [`silc_trace`] counters
/// (`cif.bytes`, `drc.violations`) rather than recomputed here, so the
/// bench reports exactly what `silc compile --stats` reports.
pub fn measure(n: usize) -> ScalingRow {
    let tracer = Tracer::enabled();
    let design = compile_design(n);
    let stats = CellStats::compute(&design.library, design.top).expect("top exists");
    CifWriter::new()
        .with_tracer(tracer.clone())
        .write_to_string(&design.library, design.top)
        .expect("valid root");
    check_traced(
        &design.library,
        design.top,
        &RuleSet::mead_conway_nmos(),
        &tracer,
    )
    .expect("top exists");
    let report = tracer.finish();
    let counter = |name: &str| report.counter(name).unwrap_or(0) as usize;
    ScalingRow {
        n,
        flat_elements: stats.flat_elements,
        cif_bytes: counter("cif.bytes"),
        drc_violations: counter("drc.violations"),
    }
}

/// The sweep.
pub fn run(sizes: &[usize]) -> Vec<ScalingRow> {
    sizes.iter().map(|&n| measure(n)).collect()
}

/// Formats rows for display.
pub fn table(rows: &[ScalingRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.flat_elements.to_string(),
                r.cif_bytes.to_string(),
                r.drc_violations.to_string(),
            ]
        })
        .collect()
}

/// One DRC-engine ablation data point: the same flattened layout checked
/// by the indexed parallel engine, the indexed serial engine, and the
/// all-pairs brute-force oracle.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Array size parameter (the design is n x n cells).
    pub n: usize,
    /// Flattened rectangle count fed to the checker.
    pub rects: usize,
    /// Grid bins across the per-pass spatial indexes (trace counter
    /// `drc.index.bins`).
    pub index_bins: usize,
    /// Index probes issued across all passes (trace counter `drc.queries`).
    pub queries: usize,
    /// Indexed + parallel (`check_flat`) wall time in milliseconds.
    pub indexed_ms: f64,
    /// Indexed single-thread (`check_flat_serial`) wall time.
    pub serial_ms: f64,
    /// All-pairs oracle (`check_flat_brute`) wall time.
    pub brute_ms: f64,
    /// `brute_ms / indexed_ms`.
    pub speedup: f64,
}

/// Times one checker variant: best of `reps` runs (min, not mean — the
/// usual wall-clock noise is one-sided).
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs the DRC engine ablation over the given array sizes. Each variant
/// is checked to agree with the others before timing is reported, so a
/// row is also an equivalence witness.
///
/// # Panics
///
/// Panics if the three engines disagree on any layout (they must not).
pub fn drc_ablation(sizes: &[usize]) -> Vec<AblationRow> {
    let rules = RuleSet::mead_conway_nmos();
    sizes
        .iter()
        .map(|&n| {
            let design = compile_design(n);
            let layers =
                silc_layout::flatten_to_rects(&design.library, design.top).expect("top exists");
            let rects: usize = layers.iter().map(Vec::len).sum();

            // The equivalence run doubles as the counter run: the same
            // `drc.index.*` / `drc.queries` counters that `--stats` shows.
            let tracer = Tracer::enabled();
            let indexed = silc_drc::check_flat_traced(&layers, &rules, &tracer);
            let trace = tracer.finish();
            let counter = |name: &str| trace.counter(name).unwrap_or(0) as usize;
            let serial = check_flat_serial(&layers, &rules);
            let brute = check_flat_brute(&layers, &rules);
            assert_eq!(
                indexed.violations, serial.violations,
                "parallel/serial divergence at n={n}"
            );
            assert_eq!(
                indexed.violations, brute.violations,
                "indexed/brute divergence at n={n}"
            );

            let reps = if rects > 20_000 { 2 } else { 3 };
            let indexed_ms = time_best(reps, || check_flat(&layers, &rules));
            let serial_ms = time_best(reps, || check_flat_serial(&layers, &rules));
            let brute_ms = time_best(reps, || check_flat_brute(&layers, &rules));
            AblationRow {
                n,
                rects,
                index_bins: counter("drc.index.bins"),
                queries: counter("drc.queries"),
                indexed_ms,
                serial_ms,
                brute_ms,
                speedup: brute_ms / indexed_ms,
            }
        })
        .collect()
}

/// Formats ablation rows for display.
pub fn ablation_table(rows: &[AblationRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.rects.to_string(),
                r.index_bins.to_string(),
                r.queries.to_string(),
                format!("{:.2}", r.indexed_ms),
                format!("{:.2}", r.serial_ms),
                format!("{:.2}", r.brute_ms),
                format!("{:.1}x", r.speedup),
            ]
        })
        .collect()
}

/// Machine-readable summary: one JSON object per row, one row per line.
pub fn ablation_json(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    for r in rows {
        writeln!(
            out,
            "{{\"bench\":\"e6/drc_engine\",\"n\":{},\"rects\":{},\
             \"index_bins\":{},\"queries\":{},\
             \"indexed_ms\":{:.3},\"serial_ms\":{:.3},\"brute_ms\":{:.3},\
             \"speedup\":{:.2}}}",
            r.n, r.rects, r.index_bins, r.queries, r.indexed_ms, r.serial_ms, r.brute_ms, r.speedup
        )
        .expect("writing to a String");
    }
    out
}

/// One warm-vs-cold data point: the same design compiled twice through
/// the incremental engine — once against an empty cache, once against
/// the cache the first run populated.
#[derive(Debug, Clone)]
pub struct WarmColdRow {
    /// Array size parameter (the design is n x n cells).
    pub n: usize,
    /// First (cache-populating) compile wall time in milliseconds.
    pub cold_ms: f64,
    /// Second (fully cached) compile wall time.
    pub warm_ms: f64,
    /// `cold_ms / warm_ms`.
    pub speedup: f64,
    /// Cache misses on the warm run (must be 0).
    pub warm_misses: u64,
}

/// Runs the warm-vs-cold sweep. Each row is also a correctness witness:
/// the warm CIF must be byte-identical to the cold CIF and the warm run
/// must miss nothing.
///
/// # Panics
///
/// Panics if the warm run recomputes anything or produces different CIF.
pub fn incr_warm_vs_cold(sizes: &[usize]) -> Vec<WarmColdRow> {
    use silc_incr::{compile_sil, CompileOptions, Engine, JobStats};
    sizes
        .iter()
        .map(|&n| {
            let source = shift_array(n);
            let options = CompileOptions::default();
            let engine = Engine::in_memory();

            let mut cold_stats = JobStats::default();
            let start = Instant::now();
            let cold = compile_sil(&engine, &source, &options, &mut cold_stats)
                .unwrap_or_else(|e| panic!("cold compile n={n}: {e}"));
            let cold_ms = start.elapsed().as_secs_f64() * 1e3;

            let mut warm_stats = JobStats::default();
            let start = Instant::now();
            let warm = compile_sil(&engine, &source, &options, &mut warm_stats)
                .unwrap_or_else(|e| panic!("warm compile n={n}: {e}"));
            let warm_ms = start.elapsed().as_secs_f64() * 1e3;

            assert_eq!(warm_stats.misses, 0, "warm run recomputed at n={n}");
            assert_eq!(
                cold.cif.as_deref(),
                warm.cif.as_deref(),
                "warm CIF diverged at n={n}"
            );
            WarmColdRow {
                n,
                cold_ms,
                warm_ms,
                speedup: cold_ms / warm_ms.max(1e-6),
                warm_misses: warm_stats.misses,
            }
        })
        .collect()
}

/// Formats warm-vs-cold rows for display.
pub fn warm_cold_table(rows: &[WarmColdRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.2}", r.cold_ms),
                format!("{:.3}", r.warm_ms),
                format!("{:.0}x", r.speedup),
                r.warm_misses.to_string(),
            ]
        })
        .collect()
}

/// Machine-readable summary: one JSON object per row, one row per line.
pub fn warm_cold_json(rows: &[WarmColdRow]) -> String {
    let mut out = String::new();
    for r in rows {
        writeln!(
            out,
            "{{\"bench\":\"e6/incr_warm_vs_cold\",\"n\":{},\
             \"cold_ms\":{:.3},\"warm_ms\":{:.3},\"speedup\":{:.2},\
             \"warm_misses\":{}}}",
            r.n, r.cold_ms, r.warm_ms, r.speedup, r.warm_misses
        )
        .expect("writing to a String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_scale_quadratically_but_cif_stays_compact() {
        let rows = run(&[4, 8, 16]);
        assert_eq!(rows[1].flat_elements, 4 * rows[0].flat_elements);
        assert_eq!(rows[2].flat_elements, 4 * rows[1].flat_elements);
        // Hierarchical CIF grows far slower than the flat geometry:
        // the 16x16 array has 16x the elements of 4x4 but nowhere near
        // 16x the CIF (symbols are shared; only calls repeat).
        let growth = rows[2].cif_bytes as f64 / rows[0].cif_bytes as f64;
        let flat_growth = rows[2].flat_elements as f64 / rows[0].flat_elements as f64;
        assert!(
            growth < flat_growth / 2.0,
            "CIF grew {growth:.1}x vs geometry {flat_growth:.1}x"
        );
    }

    #[test]
    fn generated_arrays_are_drc_clean() {
        for row in run(&[2, 6]) {
            assert_eq!(row.drc_violations, 0, "n={}", row.n);
        }
    }

    #[test]
    fn ablation_rows_are_consistent() {
        // drc_ablation asserts engine equivalence internally; here we
        // also sanity-check the emitted summary shape.
        let rows = drc_ablation(&[2, 4]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].rects > rows[0].rects);
        // Index stats come from the shared trace counters.
        assert!(rows[0].queries > 0, "traced run recorded no index probes");
        assert!(rows[1].queries > rows[0].queries);
        let json = ablation_json(&rows);
        assert_eq!(json.lines().count(), 2);
        assert!(json.contains("\"speedup\":"));
        assert!(json.contains("\"queries\":"));
        assert_eq!(ablation_table(&rows)[0].len(), 8);
    }

    #[test]
    fn warm_runs_never_recompute() {
        // incr_warm_vs_cold asserts byte-identity and zero warm misses
        // internally; here we sanity-check the emitted summary shape.
        let rows = incr_warm_vs_cold(&[2, 4]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.warm_misses == 0));
        let json = warm_cold_json(&rows);
        assert_eq!(json.lines().count(), 2);
        assert!(json.contains("\"bench\":\"e6/incr_warm_vs_cold\""));
        assert_eq!(warm_cold_table(&rows)[0].len(), 5);
    }
}
