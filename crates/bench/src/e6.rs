//! E6 — compilation scaling: compile time, geometry count and CIF output
//! size as a function of design size. The motivation row of the paper:
//! complexity grows inexorably, so the tools must scale.

use crate::e2::shift_array;
use silc_cif::CifWriter;
use silc_drc::{check, RuleSet};
use silc_lang::{Compiler, Design};
use silc_layout::CellStats;

/// One design-size data point.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Array size parameter (the design is n x n cells).
    pub n: usize,
    /// Flattened artwork elements.
    pub flat_elements: usize,
    /// Bytes of emitted CIF.
    pub cif_bytes: usize,
    /// DRC violations (expected 0 — the generator is clean).
    pub drc_violations: usize,
}

/// Compiles the `n x n` shift-register array.
///
/// # Panics
///
/// Panics if the built-in SIL program fails (covered by tests).
pub fn compile_design(n: usize) -> Design {
    Compiler::new()
        .compile(&shift_array(n))
        .unwrap_or_else(|e| panic!("shift_array({n}): {e}"))
}

/// Emits CIF for a compiled design.
///
/// # Panics
///
/// Panics on writer failure (covered by tests).
pub fn emit_cif(design: &Design) -> String {
    CifWriter::new()
        .write_to_string(&design.library, design.top)
        .expect("valid root")
}

/// Measures one size point (structure only — timing is Criterion's job).
pub fn measure(n: usize) -> ScalingRow {
    let design = compile_design(n);
    let stats = CellStats::compute(&design.library, design.top).expect("top exists");
    let cif = emit_cif(&design);
    let report =
        check(&design.library, design.top, &RuleSet::mead_conway_nmos()).expect("top exists");
    ScalingRow {
        n,
        flat_elements: stats.flat_elements,
        cif_bytes: cif.len(),
        drc_violations: report.violations.len(),
    }
}

/// The sweep.
pub fn run(sizes: &[usize]) -> Vec<ScalingRow> {
    sizes.iter().map(|&n| measure(n)).collect()
}

/// Formats rows for display.
pub fn table(rows: &[ScalingRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.flat_elements.to_string(),
                r.cif_bytes.to_string(),
                r.drc_violations.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_scale_quadratically_but_cif_stays_compact() {
        let rows = run(&[4, 8, 16]);
        assert_eq!(rows[1].flat_elements, 4 * rows[0].flat_elements);
        assert_eq!(rows[2].flat_elements, 4 * rows[1].flat_elements);
        // Hierarchical CIF grows far slower than the flat geometry:
        // the 16x16 array has 16x the elements of 4x4 but nowhere near
        // 16x the CIF (symbols are shared; only calls repeat).
        let growth = rows[2].cif_bytes as f64 / rows[0].cif_bytes as f64;
        let flat_growth = rows[2].flat_elements as f64 / rows[0].flat_elements as f64;
        assert!(
            growth < flat_growth / 2.0,
            "CIF grew {growth:.1}x vs geometry {flat_growth:.1}x"
        );
    }

    #[test]
    fn generated_arrays_are_drc_clean() {
        for row in run(&[2, 6]) {
            assert_eq!(row.drc_violations, 0, "n={}", row.n);
        }
    }
}
