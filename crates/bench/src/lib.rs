//! # silc-bench — the experiment harness
//!
//! One module per experiment in EXPERIMENTS.md. Each module exposes pure
//! functions that compute the experiment's table rows; the Criterion
//! benches in `benches/` time the underlying operations, the integration
//! tests assert the paper's claims on the same functions, and the
//! examples print the tables.

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

/// Renders a table of rows with a header, for the examples and bench
/// summaries.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "== {title} ==");
    for (i, h) in header.iter().enumerate() {
        let _ = write!(s, "{:<w$}  ", h, w = widths[i]);
    }
    s.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(0);
            let _ = write!(s, "{:<w$}  ", cell, w = w);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_renders_aligned() {
        let s = super::render_table(
            "T",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        assert!(s.contains("== T =="));
        assert!(s.contains("long-name"));
    }
}
