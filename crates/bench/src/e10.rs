//! E10 — the place-and-route ablation: seeded random netlists routed
//! through `silc-pnr` at growing cell counts, each run checked three
//! ways (all nets routed, routed geometry DRC-clean, extraction
//! recovers the source connectivity) and timed serial vs parallel.
//!
//! The corpus is the same splitmix64-seeded generator the router's
//! proptests draw from, so every row replays bit-for-bit. The
//! serial/parallel pair also asserts the router's determinism contract:
//! both runs must emit byte-identical CIF, which is what lets the
//! incremental cache key P&R products on (netlist, stack, floorplan)
//! alone.

use silc_cif::CifWriter;
use silc_drc::RuleSet;
use silc_pnr::{gen::random_netlist, place_and_route, Floorplan, RouteStack};
use std::time::Instant;

/// One (cells, seed) run of the corpus.
#[derive(Debug, Clone)]
pub struct PnrRow {
    /// Instances in the generated netlist.
    pub cells: usize,
    /// Generator seed.
    pub seed: u64,
    /// Cell sites per row in the squarish floorplan.
    pub per_row: usize,
    /// Multi-pin nets needing routing.
    pub nets: u64,
    /// Nets routed (must equal `nets`).
    pub routed: u64,
    /// Total routed wirelength in lambda.
    pub wirelength: u64,
    /// Vias dropped.
    pub vias: u64,
    /// Negotiation rounds run.
    pub rounds: u64,
    /// Rounds that ripped up and rerouted.
    pub ripup_rounds: u64,
    /// Serial routing wall time, microseconds.
    pub serial_us: u128,
    /// Parallel routing wall time, microseconds.
    pub parallel_us: u128,
    /// Serial and parallel CIF are byte-identical.
    pub identical: bool,
    /// Routed geometry passes the Mead–Conway rules.
    pub drc_clean: bool,
    /// Extraction of the routed layout structurally matches the source.
    pub lvs_ok: bool,
}

impl PnrRow {
    /// All three acceptance checks hold and every net routed.
    pub fn accepted(&self) -> bool {
        self.routed == self.nets && self.identical && self.drc_clean && self.lvs_ok
    }
}

/// The default corpus: (cells, seeds-per-size). Sizes stay inside the
/// router's verified convergence envelope — the negotiation loop is
/// proptest-clean through ~50 cells but the margin thins past 40, so
/// the largest corpus point is 40.
pub const CORPUS: &[(usize, u64)] = &[(4, 3), (8, 3), (12, 3), (16, 3), (24, 3), (32, 2), (40, 2)];

/// Routes one seeded netlist serial and parallel, with all checks.
pub fn run_one(cells: usize, seed: u64) -> PnrRow {
    let netlist = random_netlist(seed, cells);
    let stack = RouteStack::mead_conway_nmos();
    let floorplan = Floorplan::squarish(cells);

    let started = Instant::now();
    let serial =
        place_and_route(&netlist, &stack, &floorplan, false).expect("corpus nets route serially");
    let serial_us = started.elapsed().as_micros();
    let started = Instant::now();
    let parallel =
        place_and_route(&netlist, &stack, &floorplan, true).expect("corpus nets route in parallel");
    let parallel_us = started.elapsed().as_micros();

    let cif = |r: &silc_pnr::PnrResult| {
        CifWriter::new()
            .write_to_string(&r.library, r.root)
            .expect("routed layout writes")
    };
    let identical = cif(&serial) == cif(&parallel);
    let drc_clean = silc_drc::check(&serial.library, serial.root, &RuleSet::mead_conway_nmos())
        .map(|report| report.is_clean())
        .unwrap_or(false);
    let lvs_ok = silc_extract::extract(&serial.library, serial.root)
        .map(|ex| ex.netlist.structurally_matches(&netlist))
        .unwrap_or(false);

    PnrRow {
        cells,
        seed,
        per_row: floorplan.cells_per_row,
        nets: serial.report.nets,
        routed: serial.report.routed,
        wirelength: serial.report.wirelength,
        vias: serial.report.vias,
        rounds: serial.report.rounds,
        ripup_rounds: serial.report.ripup_rounds,
        serial_us,
        parallel_us,
        identical,
        drc_clean,
        lvs_ok,
    }
}

/// Runs `corpus` (pairs of cells and seed count, seeds `0..n`).
pub fn run_corpus(corpus: &[(usize, u64)]) -> Vec<PnrRow> {
    let mut rows = Vec::new();
    for &(cells, seeds) in corpus {
        for seed in 0..seeds {
            rows.push(run_one(cells, seed));
        }
    }
    rows
}

/// Table rows for [`crate::render_table`].
pub fn pnr_table(rows: &[PnrRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.cells.to_string(),
                r.seed.to_string(),
                format!("{}/{}", r.routed, r.nets),
                r.wirelength.to_string(),
                r.vias.to_string(),
                format!("{} ({} ripup)", r.rounds, r.ripup_rounds),
                r.serial_us.to_string(),
                r.parallel_us.to_string(),
                (if r.accepted() { "yes" } else { "NO" }).to_string(),
            ]
        })
        .collect()
}

/// One JSON object per row, newline-terminated — the artifact CI
/// uploads and validates.
pub fn pnr_json(rows: &[PnrRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in rows {
        let _ = writeln!(
            s,
            "{{\"bench\":\"e10/pnr\",\"cells\":{},\"seed\":{},\"per_row\":{},\"nets\":{},\
             \"routed\":{},\"wirelength\":{},\"vias\":{},\"rounds\":{},\"ripup_rounds\":{},\
             \"serial_us\":{},\"parallel_us\":{},\"identical\":{},\"drc_clean\":{},\
             \"lvs_ok\":{}}}",
            r.cells,
            r.seed,
            r.per_row,
            r.nets,
            r.routed,
            r.wirelength,
            r.vias,
            r.rounds,
            r.ripup_rounds,
            r.serial_us,
            r.parallel_us,
            r.identical,
            r.drc_clean,
            r.lvs_ok,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_point_passes_every_check() {
        let row = run_one(8, 0);
        assert_eq!(row.routed, row.nets);
        assert!(row.identical, "serial vs parallel CIF differ");
        assert!(row.drc_clean);
        assert!(row.lvs_ok);
        assert!(row.accepted());
    }

    #[test]
    fn json_rows_are_single_line_objects() {
        let rows = vec![run_one(4, 1)];
        let json = pnr_json(&rows);
        let mut lines = json.lines();
        let line = lines.next().expect("one row");
        assert!(lines.next().is_none());
        assert!(line.starts_with("{\"bench\":\"e10/pnr\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert!(line.contains("\"identical\":true"), "{line}");
    }
}
