//! E1 — the PDP-8 chip-count claim: "a chip count within 50% of a
//! commercial design" for a machine compiled from its ISP description,
//! plus the compiled-vs-interpreted simulation ablation on the same
//! machine.

use silc_exec::{compile, CompiledSim};
use silc_pdp8::{assemble, baseline_packages, commercial_baseline, isp_machine, Program};
use silc_rtl::Simulator;
use silc_synth::{synthesize, Allocation, Sharing, SynthOptions};
use std::fmt::Write as _;
use std::time::Instant;

/// The E1 result: automatic vs hand package counts and their ratio.
#[derive(Debug, Clone)]
pub struct PdpComparison {
    /// Packages used by the synthesized (shared-allocation) design.
    pub synthesized_packages: u64,
    /// Packages used by the per-operation (unshared) design.
    pub per_operation_packages: u64,
    /// Packages of the hand-designed baseline.
    pub baseline_packages: u64,
    /// synthesized / baseline — the paper's claim is `<= 1.5`.
    pub ratio: f64,
    /// Full allocation, for the per-kind breakdown.
    pub allocation: Allocation,
}

/// Runs the PDP-8 synthesis comparison.
///
/// # Panics
///
/// Panics if the built-in ISP source fails to parse (a bug, covered by
/// unit tests).
pub fn run() -> PdpComparison {
    let machine = isp_machine().expect("built-in ISP source parses");
    let shared = synthesize(
        &machine,
        &SynthOptions {
            sharing: Sharing::Shared,
        },
    );
    let per_op = synthesize(
        &machine,
        &SynthOptions {
            sharing: Sharing::PerOperation,
        },
    );
    let baseline = baseline_packages();
    PdpComparison {
        synthesized_packages: shared.estimate.packages,
        per_operation_packages: per_op.estimate.packages,
        baseline_packages: baseline,
        ratio: shared.estimate.package_ratio(baseline),
        allocation: shared,
    }
}

/// Table rows: one per module kind of the hand design and the
/// synthesized design, plus totals.
pub fn table() -> (Vec<Vec<String>>, PdpComparison) {
    let result = run();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (kind, pkgs) in &result.allocation.estimate.packages_by_kind {
        rows.push(vec![
            kind.clone(),
            result.allocation.estimate.count_by_kind[kind].to_string(),
            pkgs.to_string(),
        ]);
    }
    let baseline_by_kind: std::collections::BTreeMap<&str, u64> = {
        let mut m = std::collections::BTreeMap::new();
        for c in commercial_baseline() {
            *m.entry(c.kind_name()).or_insert(0) += c.packages();
        }
        m
    };
    rows.push(vec!["--- totals ---".into(), String::new(), String::new()]);
    rows.push(vec![
        "synthesized".into(),
        String::new(),
        result.synthesized_packages.to_string(),
    ]);
    rows.push(vec![
        "unshared".into(),
        String::new(),
        result.per_operation_packages.to_string(),
    ]);
    rows.push(vec![
        "hand baseline".into(),
        format!("{} kinds", baseline_by_kind.len()),
        result.baseline_packages.to_string(),
    ]);
    rows.push(vec![
        "ratio".into(),
        String::new(),
        format!("{:.2}", result.ratio),
    ]);
    (rows, result)
}

/// One compiled-vs-interpreted simulation data point: the same PDP-8
/// program run for the same cycle budget on both engines.
#[derive(Debug, Clone)]
pub struct SimRow {
    /// Cycle budget given to both engines.
    pub cycles: u64,
    /// Interpreter wall time in milliseconds (best of reps).
    pub interp_ms: f64,
    /// Compiled-engine wall time in milliseconds (best of reps).
    pub compiled_ms: f64,
    /// `interp_ms / compiled_ms`.
    pub speedup: f64,
}

/// A tight PDP-8 busy loop that never halts, so every cycle budget is
/// spent executing instructions rather than idling in a halt state.
fn busy_loop() -> Program {
    assemble("*200\nloop, iac\n jmp loop\n").expect("built-in program assembles")
}

fn fresh_interp(machine: &silc_rtl::Machine, program: &Program) -> Simulator {
    let mut sim = Simulator::new(machine);
    silc_pdp8::load_program_into_isl(&mut sim, program);
    sim
}

fn fresh_compiled(compiled: &silc_exec::CompiledMachine, program: &Program) -> CompiledSim {
    let mut sim = CompiledSim::new(compiled);
    let mut image = vec![0u64; 4096];
    for &(addr, word) in &program.words {
        image[addr as usize] = u64::from(word);
    }
    sim.load_mem("m", &image).expect("core exists");
    sim.set_reg("pc", u64::from(program.start))
        .expect("pc exists");
    sim
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs the compiled-vs-interpreted simulation ablation over the given
/// cycle budgets. Each row is also an equivalence witness: before any
/// timing, both engines run the budget and every architectural
/// register, all 4K of core, the state name and the run report are
/// asserted byte-identical.
///
/// # Panics
///
/// Panics if the engines diverge on any budget (they must not).
pub fn sim_ablation(budgets: &[u64]) -> Vec<SimRow> {
    let machine = isp_machine().expect("built-in ISP source parses");
    let compiled = compile(&machine);
    let program = busy_loop();
    budgets
        .iter()
        .map(|&cycles| {
            let mut interp = fresh_interp(&machine, &program);
            let mut comp = fresh_compiled(&compiled, &program);
            let ra = interp.run(cycles);
            let rb = comp.run(cycles);
            assert_eq!(ra, rb, "run reports diverged at {cycles} cycles");
            for reg in ["pc", "ac", "l", "ir", "ma", "page"] {
                assert_eq!(interp.reg(reg), comp.reg(reg), "register {reg}");
            }
            assert_eq!(interp.state_name(), comp.state_name());
            for addr in 0..4096u64 {
                assert_eq!(
                    interp.mem_word("m", addr),
                    comp.mem_word("m", addr),
                    "core word {addr:o} diverged at {cycles} cycles"
                );
            }

            let reps = if cycles > 100_000 { 2 } else { 3 };
            let interp_ms = time_best(reps, || {
                fresh_interp(&machine, &program).run(cycles).unwrap()
            });
            let compiled_ms = time_best(reps, || {
                fresh_compiled(&compiled, &program).run(cycles).unwrap()
            });
            SimRow {
                cycles,
                interp_ms,
                compiled_ms,
                speedup: interp_ms / compiled_ms.max(1e-9),
            }
        })
        .collect()
}

/// Formats simulation ablation rows for display.
pub fn sim_table(rows: &[SimRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.cycles.to_string(),
                format!("{:.2}", r.interp_ms),
                format!("{:.2}", r.compiled_ms),
                format!("{:.1}x", r.speedup),
            ]
        })
        .collect()
}

/// Machine-readable summary: one JSON object per row, one row per line.
pub fn sim_json(rows: &[SimRow]) -> String {
    let mut out = String::new();
    for r in rows {
        writeln!(
            out,
            "{{\"bench\":\"e1/sim_compiled_vs_interp\",\"cycles\":{},\
             \"interp_ms\":{:.3},\"compiled_ms\":{:.3},\"speedup\":{:.2},\
             \"identical\":true}}",
            r.cycles, r.interp_ms, r.compiled_ms, r.speedup
        )
        .expect("writing to a String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claim_holds() {
        let r = run();
        assert!(r.ratio <= 1.5, "ratio {:.2} breaks the 50% claim", r.ratio);
        assert!(r.ratio >= 1.0, "automatic should not beat the hand design");
        assert!(r.per_operation_packages >= r.synthesized_packages);
    }

    #[test]
    fn table_has_totals() {
        let (rows, _) = table();
        assert!(rows.iter().any(|r| r[0] == "ratio"));
    }

    #[test]
    fn sim_ablation_rows_are_consistent() {
        // sim_ablation asserts engine equivalence internally; here we
        // check the row plumbing and the JSONL shape.
        let rows = sim_ablation(&[500, 2_000]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.interp_ms > 0.0 && r.compiled_ms > 0.0);
            assert!(r.speedup > 0.0);
        }
        let json = sim_json(&rows);
        assert_eq!(json.lines().count(), 2);
        assert!(json.contains("\"bench\":\"e1/sim_compiled_vs_interp\""));
        assert!(json.contains("\"identical\":true"));
    }
}
