//! E1 — the PDP-8 chip-count claim: "a chip count within 50% of a
//! commercial design" for a machine compiled from its ISP description.

use silc_pdp8::{baseline_packages, commercial_baseline, isp_machine};
use silc_synth::{synthesize, Allocation, Sharing, SynthOptions};

/// The E1 result: automatic vs hand package counts and their ratio.
#[derive(Debug, Clone)]
pub struct PdpComparison {
    /// Packages used by the synthesized (shared-allocation) design.
    pub synthesized_packages: u64,
    /// Packages used by the per-operation (unshared) design.
    pub per_operation_packages: u64,
    /// Packages of the hand-designed baseline.
    pub baseline_packages: u64,
    /// synthesized / baseline — the paper's claim is `<= 1.5`.
    pub ratio: f64,
    /// Full allocation, for the per-kind breakdown.
    pub allocation: Allocation,
}

/// Runs the PDP-8 synthesis comparison.
///
/// # Panics
///
/// Panics if the built-in ISP source fails to parse (a bug, covered by
/// unit tests).
pub fn run() -> PdpComparison {
    let machine = isp_machine().expect("built-in ISP source parses");
    let shared = synthesize(
        &machine,
        &SynthOptions {
            sharing: Sharing::Shared,
        },
    );
    let per_op = synthesize(
        &machine,
        &SynthOptions {
            sharing: Sharing::PerOperation,
        },
    );
    let baseline = baseline_packages();
    PdpComparison {
        synthesized_packages: shared.estimate.packages,
        per_operation_packages: per_op.estimate.packages,
        baseline_packages: baseline,
        ratio: shared.estimate.package_ratio(baseline),
        allocation: shared,
    }
}

/// Table rows: one per module kind of the hand design and the
/// synthesized design, plus totals.
pub fn table() -> (Vec<Vec<String>>, PdpComparison) {
    let result = run();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (kind, pkgs) in &result.allocation.estimate.packages_by_kind {
        rows.push(vec![
            kind.clone(),
            result.allocation.estimate.count_by_kind[kind].to_string(),
            pkgs.to_string(),
        ]);
    }
    let baseline_by_kind: std::collections::BTreeMap<&str, u64> = {
        let mut m = std::collections::BTreeMap::new();
        for c in commercial_baseline() {
            *m.entry(c.kind_name()).or_insert(0) += c.packages();
        }
        m
    };
    rows.push(vec!["--- totals ---".into(), String::new(), String::new()]);
    rows.push(vec![
        "synthesized".into(),
        String::new(),
        result.synthesized_packages.to_string(),
    ]);
    rows.push(vec![
        "unshared".into(),
        String::new(),
        result.per_operation_packages.to_string(),
    ]);
    rows.push(vec![
        "hand baseline".into(),
        format!("{} kinds", baseline_by_kind.len()),
        result.baseline_packages.to_string(),
    ]);
    rows.push(vec![
        "ratio".into(),
        String::new(),
        format!("{:.2}", result.ratio),
    ]);
    (rows, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claim_holds() {
        let r = run();
        assert!(r.ratio <= 1.5, "ratio {:.2} breaks the 50% claim", r.ratio);
        assert!(r.ratio >= 1.0, "automatic should not beat the hand design");
        assert!(r.per_operation_packages >= r.synthesized_packages);
    }

    #[test]
    fn table_has_totals() {
        let (rows, _) = table();
        assert!(rows.iter().any(|r| r[0] == "ratio"));
    }
}
