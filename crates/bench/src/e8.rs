//! E8 — wiring management: how channel height responds to displacement
//! (river routing), how tracks respond to congestion (channel routing),
//! and what regular placement buys in wire length.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use silc_route::{channel_density, channel_route, river_route, ChannelProblem};

/// River-routing data point: interlock depth vs channel height.
#[derive(Debug, Clone)]
pub struct RiverRow {
    /// Number of interlocked shifting nets.
    pub chain: usize,
    /// Tracks used.
    pub tracks: usize,
    /// Channel height in lambda.
    pub height: i64,
    /// Total wire length.
    pub wire_length: i64,
}

/// Sweeps interlocked right-shift chains of increasing depth: `chain`
/// nets each displaced far enough to overlap all the others.
pub fn river_sweep(chains: &[usize]) -> Vec<RiverRow> {
    chains
        .iter()
        .map(|&chain| {
            let pitch = 4i64;
            let bottom: Vec<i64> = (0..chain as i64).map(|i| i * pitch).collect();
            let shift = chain as i64 * pitch + 20;
            let top: Vec<i64> = bottom.iter().map(|x| x + shift).collect();
            let r = river_route(&bottom, &top, pitch).expect("routable");
            RiverRow {
                chain,
                tracks: r.tracks,
                height: r.height,
                wire_length: r.wire_length,
            }
        })
        .collect()
}

/// Channel-routing data point.
#[derive(Debug, Clone)]
pub struct ChannelRow {
    /// Nets in the problem.
    pub nets: usize,
    /// Density lower bound.
    pub density: usize,
    /// Tracks actually used.
    pub tracks: usize,
}

/// Random channel problems of growing congestion (seeded, reproducible).
/// Problems whose vertical constraints happen to cycle are skipped (and
/// counted), mirroring how a dogleg-free flow would re-place.
pub fn channel_sweep(net_counts: &[usize], seed: u64) -> (Vec<ChannelRow>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut skipped = 0usize;
    for &nets in net_counts {
        // Retry until a routable instance appears.
        let mut attempts = 0;
        loop {
            attempts += 1;
            let cols = nets * 3;
            let mut top: Vec<Option<u32>> = vec![None; cols];
            let mut bottom: Vec<Option<u32>> = vec![None; cols];
            // Each net gets one top and one bottom pin at random columns.
            // Ids start at 0 — a legal net id since pins went explicit.
            let mut free_top: Vec<usize> = (0..cols).collect();
            let mut free_bottom: Vec<usize> = (0..cols).collect();
            free_top.shuffle(&mut rng);
            free_bottom.shuffle(&mut rng);
            for net in 0..nets as u32 {
                top[free_top[net as usize]] = Some(net);
                bottom[free_bottom[net as usize]] = Some(net);
            }
            let problem = ChannelProblem {
                top,
                bottom,
                pitch: 7,
            };
            match channel_route(&problem) {
                Ok(route) => {
                    rows.push(ChannelRow {
                        nets,
                        density: channel_density(&problem),
                        tracks: route.tracks,
                    });
                    break;
                }
                Err(_) if attempts < 50 => skipped += 1,
                Err(e) => panic!("no routable instance of {nets} nets: {e}"),
            }
        }
    }
    (rows, skipped)
}

/// Placement-quality data point: total wire length when the facing ports
/// line up versus when they are scrambled.
#[derive(Debug, Clone)]
pub struct PlacementRow {
    /// Nets crossing the channel.
    pub nets: usize,
    /// Wire length with aligned (regular) placement.
    pub aligned_wire: i64,
    /// Wire length with scrambled placement.
    pub scrambled_wire: i64,
}

/// Measures regular vs scrambled placement for `nets` connections.
pub fn placement_comparison(nets: usize, seed: u64) -> PlacementRow {
    let pitch = 7i64;
    let bottom: Vec<i64> = (0..nets as i64).map(|i| i * pitch * 3).collect();
    // Aligned: straight across.
    let aligned = river_route(&bottom, &bottom, pitch).expect("routable");

    // Scrambled: the same pins permuted — needs the channel router. Top
    // pins are staggered one column off the bottom pins so no column
    // carries two pins (pin alignment, not constraint cycles, is what
    // this experiment varies).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..nets).collect();
    perm.shuffle(&mut rng);
    let cols = nets * 3 + 2;
    let mut top: Vec<Option<u32>> = vec![None; cols];
    let mut bot: Vec<Option<u32>> = vec![None; cols];
    for (i, &p) in perm.iter().enumerate() {
        bot[i * 3] = Some(i as u32);
        top[p * 3 + 1] = Some(i as u32);
    }
    let scrambled_wire = channel_route(&ChannelProblem {
        top,
        bottom: bot,
        pitch,
    })
    .expect("staggered pins have no vertical constraints")
    .wire_length;
    PlacementRow {
        nets,
        aligned_wire: aligned.wire_length,
        scrambled_wire,
    }
}

/// Formats the river sweep for display.
pub fn river_table(rows: &[RiverRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.chain.to_string(),
                r.tracks.to_string(),
                r.height.to_string(),
                r.wire_length.to_string(),
            ]
        })
        .collect()
}

/// Formats the channel sweep for display.
pub fn channel_table(rows: &[ChannelRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.nets.to_string(),
                r.density.to_string(),
                r.tracks.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn river_height_tracks_interlock_depth() {
        let rows = river_sweep(&[1, 2, 4, 8]);
        for r in &rows {
            assert_eq!(r.tracks, r.chain, "fully interlocked chain");
        }
        assert!(rows[3].height > rows[0].height);
    }

    #[test]
    fn channel_tracks_bounded_by_density_then_nets() {
        let (rows, _) = channel_sweep(&[2, 4, 6, 8], 42);
        for r in &rows {
            assert!(r.tracks >= r.density);
            assert!(r.tracks <= r.nets);
        }
    }

    #[test]
    fn regular_placement_wins() {
        for nets in [4, 8] {
            let row = placement_comparison(nets, 7);
            assert!(
                row.aligned_wire < row.scrambled_wire,
                "{nets} nets: {} vs {}",
                row.aligned_wire,
                row.scrambled_wire
            );
        }
    }
}
