//! E7 — verification: generated layouts are DRC-clean, seeded errors are
//! caught, the behavioral description simulates identically to the ISA
//! reference, and extraction matches intent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc_drc::{check, check_flat, RuleSet};
use silc_geom::{Point, Rect};
use silc_layout::{Layer, Library};
use silc_logic::functions::benchmark_suite;
use silc_pdp8::{assemble, IspCrossCheck};
use silc_pla::{generate_layout, Minimize, PlaSpec};

/// One verification check's outcome.
#[derive(Debug, Clone)]
pub struct VerifyRow {
    /// Check name.
    pub check: String,
    /// Did it pass?
    pub pass: bool,
    /// Detail (counts, rates).
    pub detail: String,
}

/// All generator layouts pass DRC.
pub fn generators_drc_clean() -> Vec<VerifyRow> {
    let mut rows = Vec::new();
    for (name, table) in benchmark_suite() {
        let spec = PlaSpec::from_truth_table(&table, Minimize::Heuristic).expect("spec");
        let mut lib = Library::new();
        let id = generate_layout(&spec, &mut lib, name).expect("layout");
        let report = check(&lib, id, &RuleSet::mead_conway_nmos()).expect("root");
        rows.push(VerifyRow {
            check: format!("drc:pla:{name}"),
            pass: report.is_clean(),
            detail: format!("{} rects", report.rects_checked),
        });
    }
    {
        let rom = silc_mem::RomSpec::new(4, 8, &(0..16).map(|i| i * 13 % 256).collect::<Vec<_>>())
            .expect("rom");
        let mut lib = Library::new();
        let id = rom.generate(&mut lib, "rom16x8").expect("layout");
        let report = check(&lib, id, &RuleSet::mead_conway_nmos()).expect("root");
        rows.push(VerifyRow {
            check: "drc:rom16x8".into(),
            pass: report.is_clean(),
            detail: format!("{} rects", report.rects_checked),
        });
    }
    {
        let ram = silc_mem::RamArray::new(16, 8).expect("ram");
        let mut lib = Library::new();
        let id = ram.generate(&mut lib, "ram16x8").expect("layout");
        let report = check(&lib, id, &RuleSet::mead_conway_nmos()).expect("root");
        rows.push(VerifyRow {
            check: "drc:ram16x8".into(),
            pass: report.is_clean(),
            detail: format!("{} rects", report.rects_checked),
        });
    }
    rows
}

/// Seeds `count` deliberate violations into otherwise-clean geometry and
/// reports how many distinct seeds the checker flags.
pub fn seeded_error_detection(count: usize, seed: u64) -> VerifyRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut detected = 0usize;
    for _ in 0..count {
        // A clean base: two wide, well-separated metal wires.
        let mut layers: Vec<Vec<Rect>> = vec![Vec::new(); Layer::ALL.len()];
        layers[Layer::Metal.index()] = vec![
            Rect::new(Point::new(0, 0), Point::new(4, 40)).expect("rect"),
            Rect::new(Point::new(20, 0), Point::new(24, 40)).expect("rect"),
        ];
        // Inject one random violation of a random kind.
        match rng.gen_range(0..3u32) {
            0 => {
                // Narrow sliver poking out of the first wire.
                let y = rng.gen_range(0..30i64);
                layers[Layer::Metal.index()]
                    .push(Rect::new(Point::new(4, y), Point::new(6, y + 1)).expect("rect"));
            }
            1 => {
                // A third wire too close to the second.
                let gap = rng.gen_range(1..3i64);
                layers[Layer::Metal.index()].push(
                    Rect::new(Point::new(24 + gap, 0), Point::new(28 + gap, 40)).expect("rect"),
                );
            }
            _ => {
                // A bare contact.
                let y = rng.gen_range(0..30i64);
                layers[Layer::Contact.index()]
                    .push(Rect::new(Point::new(40, y), Point::new(42, y + 2)).expect("rect"));
            }
        }
        if !check_flat(&layers, &RuleSet::mead_conway_nmos()).is_clean() {
            detected += 1;
        }
    }
    VerifyRow {
        check: "drc:seeded-errors".into(),
        pass: detected == count,
        detail: format!("{detected}/{count} detected"),
    }
}

/// The behavioral PDP-8 agrees with the ISA reference on a program suite.
pub fn isp_cross_checks() -> Vec<VerifyRow> {
    let programs: Vec<(&str, &str)> = vec![
        (
            "sum-loop",
            "*200
                     cla cll
             loop,   tad total
                     tad count
                     dca total
                     isz count
                     jmp loop
                     hlt
             count,  7774
             total,  0000",
        ),
        (
            "rotate-mask",
            "*200
             cla cll
             tad v
             rtl
             cma
             and m
             hlt
             v, 1234
             m, 0770",
        ),
        (
            "subroutine",
            "*200
                    cla
                    jms inc2
                    jms inc2
                    hlt
             inc2,  0000
                    iac
                    iac
                    jmp i inc2",
        ),
    ];
    programs
        .into_iter()
        .map(|(name, src)| {
            let program = assemble(src).expect("test program assembles");
            let result = IspCrossCheck::run(&program, 2000).expect("simulates");
            VerifyRow {
                check: format!("isp:{name}"),
                pass: result.matches,
                detail: format!("{} isl cycles", result.isl_cycles),
            }
        })
        .collect()
}

/// Extraction of a known inverter recovers the intended netlist.
pub fn extraction_lvs() -> VerifyRow {
    use silc_layout::{Cell, Element, Port};
    let rect = |x0, y0, x1, y1| Rect::new(Point::new(x0, y0), Point::new(x1, y1)).expect("rect");
    let mut lib = Library::new();
    let mut c = Cell::new("inv");
    c.push_element(Element::rect(Layer::Diffusion, rect(0, 0, 4, 30)));
    c.push_element(Element::rect(Layer::Poly, rect(-4, 8, 8, 10)));
    c.push_element(Element::rect(Layer::Poly, rect(-4, 20, 8, 22)));
    c.push_element(Element::rect(Layer::Implant, rect(-2, 18, 6, 24)));
    c.push_element(Element::rect(Layer::Contact, rect(1, 14, 3, 16)));
    c.push_element(Element::rect(Layer::Metal, rect(0, 13, 12, 17)));
    c.push_element(Element::rect(Layer::Buried, rect(-4, 14, 0, 21)));
    c.push_port(Port::new("in", Layer::Poly, Point::new(-4, 9)));
    c.push_port(Port::new("out", Layer::Metal, Point::new(12, 15)));
    c.push_port(Port::new("gnd", Layer::Diffusion, Point::new(2, 0)));
    c.push_port(Port::new("vdd", Layer::Diffusion, Point::new(2, 30)));
    let id = lib.add_cell(c).expect("cell");
    let extracted = silc_extract::extract(&lib, id).expect("extracts");

    let mut intended = silc_netlist::Netlist::new("inv");
    let inn = intended.add_net("in");
    let out = intended.add_net("out");
    let gnd = intended.add_net("gnd");
    let vdd = intended.add_net("vdd");
    intended
        .add_instance("m0", "enh", &[("gate", inn), ("src", gnd), ("drn", out)])
        .expect("instance");
    intended
        .add_instance("m1", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
        .expect("instance");

    VerifyRow {
        check: "extract:inverter-lvs".into(),
        pass: extracted.netlist.structurally_matches(&intended),
        detail: format!(
            "{} transistors, {} nets",
            extracted.transistor_count(),
            extracted.nets
        ),
    }
}

/// Layout -> extraction -> switch-level simulation: the drawn inverter
/// must actually invert.
pub fn extraction_functional() -> VerifyRow {
    use silc_layout::{Cell, Element, Port};
    let rect = |x0, y0, x1, y1| Rect::new(Point::new(x0, y0), Point::new(x1, y1)).expect("rect");
    let mut lib = Library::new();
    let mut c = Cell::new("inv");
    c.push_element(Element::rect(Layer::Diffusion, rect(0, 0, 4, 30)));
    c.push_element(Element::rect(Layer::Poly, rect(-4, 8, 8, 10)));
    c.push_element(Element::rect(Layer::Poly, rect(-4, 20, 8, 22)));
    c.push_element(Element::rect(Layer::Implant, rect(-2, 18, 6, 24)));
    c.push_element(Element::rect(Layer::Contact, rect(1, 14, 3, 16)));
    c.push_element(Element::rect(Layer::Metal, rect(0, 13, 12, 17)));
    c.push_element(Element::rect(Layer::Buried, rect(-4, 14, 0, 21)));
    c.push_port(Port::new("in", Layer::Poly, Point::new(-4, 9)));
    c.push_port(Port::new("out", Layer::Metal, Point::new(12, 15)));
    c.push_port(Port::new("gnd", Layer::Diffusion, Point::new(2, 0)));
    c.push_port(Port::new("vdd", Layer::Diffusion, Point::new(2, 30)));
    let id = lib.add_cell(c).expect("cell");
    let extracted = silc_extract::extract(&lib, id).expect("extracts");

    let low = silc_extract::switch_level_eval(&extracted.netlist, &[("in", false)], "vdd", "gnd");
    let high = silc_extract::switch_level_eval(&extracted.netlist, &[("in", true)], "vdd", "gnd");
    let pass = matches!(
        (low, high),
        (Ok(l), Ok(h))
            if l["out"] == silc_extract::Level::One
            && h["out"] == silc_extract::Level::Zero
    );
    VerifyRow {
        check: "extract:inverter-switch-sim".into(),
        pass,
        detail: "layout inverts at switch level".into(),
    }
}

/// The full verification battery.
pub fn run() -> Vec<VerifyRow> {
    let mut rows = generators_drc_clean();
    rows.push(seeded_error_detection(25, 0x51C0));
    rows.extend(isp_cross_checks());
    rows.push(extraction_lvs());
    rows.push(extraction_functional());
    rows
}

/// Formats rows for display.
pub fn table(rows: &[VerifyRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.check.clone(),
                if r.pass { "PASS" } else { "FAIL" }.to_string(),
                r.detail.clone(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_battery_passes() {
        for row in run() {
            assert!(row.pass, "{} failed: {}", row.check, row.detail);
        }
    }
}
