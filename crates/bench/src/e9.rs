//! E9 — the compile-farm load test: a replayable client corpus hammering
//! a real `silc serve` instance over TCP, measuring throughput and tail
//! latency.
//!
//! The headline experiment is an A/B ablation run in-process on two
//! otherwise identical servers:
//!
//! * **baseline** — one memory-cache shard with the FIFO eviction of the
//!   single-lock era ([`EvictPolicy::Fifo`]).
//! * **farm** — the sharded LRU cache with disk-hit promotion plus the
//!   affinity-routed work-stealing scheduler ([`EvictPolicy::Lru`]).
//!
//! The workload is the shape Gray's programming-environment pitch
//! implies: a small *hot set* of ISL machines under active edit, whose
//! regression simulations are re-run over and over (editor
//! round-trips), diluted by a stream of *cold* one-off design compiles
//! (batch jobs, other users). A cached sim result is one cheap lookup;
//! recomputing it burns the full cycle budget. Under capacity pressure
//! FIFO evicts the hot sims as fast as the cold stream inserts; LRU
//! keeps them resident because every hit re-warms them. The acceptance
//! bar — warm-path throughput at 8 concurrent clients at least 2x the
//! baseline — is a cache-policy property, so it holds even on a
//! single-core runner where extra worker threads buy nothing.
//!
//! Every metric here is computed from raw microsecond samples; the JSONL
//! rows carry the full power-of-two latency histogram, not just the
//! percentiles, so regressions in the tail shape are visible in CI
//! artifacts.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use silc_incr::EvictPolicy;
use silc_serve::{Server, ServerConfig};

/// Workload knobs. Everything is seeded and counted, never wall-clock
/// random: the same config replays the same byte stream of requests.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends (when `duration_ms` is `None`).
    pub requests_per_client: usize,
    /// Stop after this long instead of after a fixed count.
    pub duration_ms: Option<u64>,
    /// Seed for the per-client request schedules.
    pub seed: u64,
    /// Distinct machines in the hot set.
    pub hot_designs: usize,
    /// Distinct designs in the cold universe.
    pub cold_designs: usize,
    /// Percent of requests drawn from the hot set.
    pub hot_percent: u32,
    /// Percent of requests sent with `"priority":"batch"`.
    pub batch_percent: u32,
    /// Cycle budget of each hot simulation (recompute cost knob): a
    /// cached sim is one lookup regardless, so `sim_cycles` sets how
    /// much an eviction costs without inflating request parse time.
    pub sim_cycles: u64,
    /// Grid edge of each cold design. Kept small: cold traffic's job is
    /// to apply *insert pressure* on the cache, and both A/B modes pay
    /// its compute cost equally, so cheap cold designs sharpen the
    /// policy signal without changing who wins.
    pub cold_design_size: u32,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 8,
            requests_per_client: 250,
            duration_ms: None,
            seed: 0xE9,
            hot_designs: 32,
            // Large enough that cold picks rarely repeat: a cold
            // request must be a genuine miss in BOTH modes, or it
            // understates the insert pressure the policies differ on.
            cold_designs: 4096,
            hot_percent: 90,
            batch_percent: 25,
            sim_cycles: 50_000,
            cold_design_size: 2,
        }
    }
}

/// Splitmix-style step: cheap, full-period, and good enough to spread
/// request schedules. Not `rand` — the corpus must replay byte-for-byte
/// from the seed alone.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One generated SIL design: a DRC-clean grid of cells whose geometry is
/// a function of `id`, so every id fingerprints differently. Single line,
/// no quotes or escapes — safe to embed in a JSON string verbatim.
pub fn design_source(id: u64, size: u32) -> String {
    use std::fmt::Write as _;
    let size = size.max(1) as u64;
    // Vary widths within DRC-legal bounds so ids never collide.
    let w = 4 + (id % 5) as i64;
    let h = 12 + (id % 7) as i64;
    let mut s = String::new();
    let _ = write!(
        s,
        "cell u{id}() {{ box metal (0,0) ({w},{h}); box poly (0,{y}) ({w},{y2}); }}",
        y = h + 4,
        y2 = h + 8,
    );
    let pitch_x = w + 4;
    let pitch_y = h + 12;
    for r in 0..size {
        for c in 0..size {
            let _ = write!(
                s,
                " place u{id}() at ({x},{y});",
                x = c as i64 * pitch_x,
                y = r as i64 * pitch_y,
            );
        }
    }
    s
}

/// One generated ISL machine: a free-running register mill whose
/// transfer constants are a function of `id`, so every id fingerprints
/// differently. It never halts, so a simulation always burns its full
/// cycle budget — the recompute cost an eviction inflicts is the
/// [`LoadConfig::sim_cycles`] knob, independent of source length.
pub fn machine_source(id: u64) -> String {
    let w = 8 + id % 9;
    let k = 1 + id % 13;
    format!("machine m{id} {{ reg a[{w}]; reg b[{w}]; state run {{ a := a + {k}; b := b + a; }} }}")
}

/// The replayable request corpus: hot set plus cold universe.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Machines whose simulations are re-run over and over (the editor
    /// loop).
    pub hot: Vec<String>,
    /// One-off designs diluting the cache (everyone else's traffic).
    pub cold: Vec<String>,
}

/// Builds the corpus for a config. Hot ids and cold ids are disjoint.
pub fn build_corpus(cfg: &LoadConfig) -> Corpus {
    let hot = (0..cfg.hot_designs.max(1) as u64)
        .map(machine_source)
        .collect();
    let cold = (0..cfg.cold_designs as u64)
        .map(|id| design_source(1_000_000 + id, cfg.cold_design_size))
        .collect();
    Corpus { hot, cold }
}

/// One scheduled request: which source to compile and at what priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Index into [`Corpus::hot`] (`true`) or [`Corpus::cold`] (`false`).
    pub hot: bool,
    pub index: usize,
    pub batch: bool,
}

/// The deterministic request schedule for one client.
///
/// Hot picks *cycle* through the hot set (staggered per client) rather
/// than sampling it at random: that is what editor iteration looks like
/// — every open design comes back around on a bounded interval — and it
/// is the regime where eviction policy is decisive. A recency cache
/// retains a cyclically touched working set outright, while FIFO ages
/// it through the queue and re-misses it no matter how often it is hit.
/// Random sampling would blur that line with geometric-tail gaps that
/// evict designs under *any* policy.
pub fn schedule(cfg: &LoadConfig, client: usize, len: usize) -> Vec<Slot> {
    let mut state = cfg
        .seed
        .wrapping_add((client as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    let hot_universe = cfg.hot_designs.max(1);
    // Spread client cursors evenly around the cycle. Bunched cursors
    // would sweep the hot set as one wave, leaving each design a long
    // untouched gap between visits — which no recency policy survives.
    let mut cursor = client * hot_universe.div_ceil(cfg.clients.max(1)) % hot_universe;
    (0..len)
        .map(|_| {
            let hot = next(&mut state) % 100 < u64::from(cfg.hot_percent.min(100));
            let index = if hot {
                cursor = (cursor + 1) % hot_universe;
                cursor
            } else {
                (next(&mut state) % cfg.cold_designs.max(1) as u64) as usize
            };
            Slot {
                hot,
                index,
                batch: next(&mut state) % 100 < u64::from(cfg.batch_percent.min(100)),
            }
        })
        .collect()
}

/// Outcome counters plus the raw latency samples from one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadSummary {
    /// Which server configuration served the run.
    pub mode: String,
    pub clients: usize,
    pub requests: u64,
    pub ok: u64,
    pub bad_request: u64,
    pub timeout: u64,
    pub overloaded: u64,
    pub error: u64,
    pub elapsed_ms: u64,
    pub throughput_rps: f64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
    /// Hot-set requests that recomputed at least one stage — the
    /// eviction-policy scorecard (hot traffic should stay resident).
    pub hot_requests: u64,
    pub hot_recomputes: u64,
    /// Non-empty power-of-two buckets: `(upper_bound_us, count)`.
    pub histogram: Vec<(u64, u64)>,
}

/// Nearest-rank percentile of an ascending-sorted sample set.
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Power-of-two latency histogram; only non-empty buckets appear.
pub fn histogram(samples: &[u64]) -> Vec<(u64, u64)> {
    let mut buckets: Vec<(u64, u64)> = Vec::new();
    for &us in samples {
        let upper = us.max(1).next_power_of_two();
        match buckets.binary_search_by_key(&upper, |&(u, _)| u) {
            Ok(i) => buckets[i].1 += 1,
            Err(i) => buckets.insert(i, (upper, 1)),
        }
    }
    buckets
}

struct ClientTally {
    latencies_us: Vec<u64>,
    ok: u64,
    bad_request: u64,
    timeout: u64,
    overloaded: u64,
    error: u64,
    hot_requests: u64,
    hot_recomputes: u64,
}

/// Sends one line, reads one line. The transport the server promises:
/// newline-delimited JSON, one response per request.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, String> {
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    let n = reader
        .read_line(&mut reply)
        .map_err(|e| format!("recv: {e}"))?;
    if n == 0 {
        return Err("server closed the connection".into());
    }
    Ok(reply)
}

/// True when the response reports at least one recomputed stage.
fn reply_recomputed(reply: &str) -> bool {
    !reply.contains("\"cache_misses\":0")
}

fn classify(tally: &mut ClientTally, reply: &str) {
    if reply.contains("\"ok\":true") {
        tally.ok += 1;
    } else if reply.contains("\"error\":\"bad_request\"") {
        tally.bad_request += 1;
    } else if reply.contains("\"error\":\"timeout\"") {
        tally.timeout += 1;
    } else if reply.contains("\"error\":\"overloaded\"") {
        tally.overloaded += 1;
    } else {
        tally.error += 1;
    }
}

fn client_loop(
    addr: &str,
    cfg: &LoadConfig,
    corpus: &Corpus,
    client: usize,
    deadline: Option<Instant>,
) -> Result<ClientTally, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let plan = schedule(cfg, client, cfg.requests_per_client.max(1));
    let mut tally = ClientTally {
        latencies_us: Vec::with_capacity(plan.len()),
        ok: 0,
        bad_request: 0,
        timeout: 0,
        overloaded: 0,
        error: 0,
        hot_requests: 0,
        hot_recomputes: 0,
    };
    // Duration mode replays the same schedule cyclically until time is
    // up, so the request *mix* stays deterministic even when the count
    // is not.
    let mut i = 0usize;
    loop {
        match deadline {
            Some(end) => {
                if Instant::now() >= end {
                    break;
                }
            }
            None => {
                if i >= plan.len() {
                    break;
                }
            }
        }
        let slot = plan[i % plan.len()];
        i += 1;
        let priority = if slot.batch { "batch" } else { "interactive" };
        let line = if slot.hot {
            let source = &corpus.hot[slot.index % corpus.hot.len().max(1)];
            format!(
                "{{\"op\":\"sim\",\"source\":\"{source}\",\"cycles\":{},\"priority\":\"{priority}\"}}\n",
                cfg.sim_cycles
            )
        } else {
            let source = &corpus.cold[slot.index % corpus.cold.len().max(1)];
            format!("{{\"op\":\"compile\",\"source\":\"{source}\",\"priority\":\"{priority}\"}}\n")
        };
        let started = Instant::now();
        let reply = roundtrip(&mut stream, &mut reader, &line)?;
        tally
            .latencies_us
            .push(started.elapsed().as_micros() as u64);
        classify(&mut tally, &reply);
        if slot.hot {
            tally.hot_requests += 1;
            if reply_recomputed(&reply) {
                tally.hot_recomputes += 1;
            }
        }
    }
    Ok(tally)
}

/// Simulates every hot machine once over one connection, so a timed run
/// measures the warm steady state, not server cold start.
pub fn warm_hot_set(addr: &str, cfg: &LoadConfig, corpus: &Corpus) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    for source in &corpus.hot {
        let line = format!(
            "{{\"op\":\"sim\",\"source\":\"{source}\",\"cycles\":{}}}\n",
            cfg.sim_cycles
        );
        let reply = roundtrip(&mut stream, &mut reader, &line)?;
        if !reply.contains("\"ok\":true") {
            return Err(format!("warmup sim failed: {}", reply.trim()));
        }
    }
    Ok(())
}

/// Runs the full client fleet against a live server and aggregates the
/// samples.
///
/// # Errors
///
/// Connection or transport failures from any client; a well-behaved
/// server never triggers them (protocol-level failures are *counted*,
/// not errors).
pub fn run_load(addr: &str, cfg: &LoadConfig, mode: &str) -> Result<LoadSummary, String> {
    let corpus = build_corpus(cfg);
    let deadline = cfg
        .duration_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let started = Instant::now();
    let tallies: Vec<Result<ClientTally, String>> = std::thread::scope(|scope| {
        let corpus = &corpus;
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|client| scope.spawn(move || client_loop(addr, cfg, corpus, client, deadline)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut samples = Vec::new();
    let mut summary = LoadSummary {
        mode: mode.to_string(),
        clients: cfg.clients.max(1),
        ..LoadSummary::default()
    };
    for tally in tallies {
        let tally = tally?;
        summary.ok += tally.ok;
        summary.bad_request += tally.bad_request;
        summary.timeout += tally.timeout;
        summary.overloaded += tally.overloaded;
        summary.error += tally.error;
        summary.hot_requests += tally.hot_requests;
        summary.hot_recomputes += tally.hot_recomputes;
        samples.extend(tally.latencies_us);
    }
    summary.requests = samples.len() as u64;
    summary.elapsed_ms = elapsed.as_millis() as u64;
    summary.throughput_rps = summary.requests as f64 / elapsed.as_secs_f64().max(1e-9);
    samples.sort_unstable();
    summary.p50_us = percentile(&samples, 50.0);
    summary.p90_us = percentile(&samples, 90.0);
    summary.p99_us = percentile(&samples, 99.0);
    summary.histogram = histogram(&samples);
    Ok(summary)
}

/// Table rows for [`crate::render_table`].
pub fn load_table(rows: &[LoadSummary]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.clients.to_string(),
                r.requests.to_string(),
                format!("{:.0}", r.throughput_rps),
                r.p50_us.to_string(),
                r.p90_us.to_string(),
                r.p99_us.to_string(),
                format!(
                    "{}/{}/{}/{}",
                    r.bad_request, r.timeout, r.overloaded, r.error
                ),
                format!("{}/{}", r.hot_recomputes, r.hot_requests),
            ]
        })
        .collect()
}

/// One JSON object per summary, newline-terminated — the artifact CI
/// uploads and greps.
pub fn load_json(rows: &[LoadSummary]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in rows {
        let hist = r
            .histogram
            .iter()
            .map(|(upper, count)| format!("[{upper},{count}]"))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            s,
            "{{\"bench\":\"e9/serve_load\",\"mode\":\"{}\",\"clients\":{},\"requests\":{},\
             \"ok\":{},\"bad_request\":{},\"timeout\":{},\"overloaded\":{},\"error\":{},\
             \"elapsed_ms\":{},\"throughput_rps\":{:.1},\"p50_us\":{},\"p90_us\":{},\
             \"p99_us\":{},\"hot_requests\":{},\"hot_recomputes\":{},\"hist\":[{}]}}",
            r.mode,
            r.clients,
            r.requests,
            r.ok,
            r.bad_request,
            r.timeout,
            r.overloaded,
            r.error,
            r.elapsed_ms,
            r.throughput_rps,
            r.p50_us,
            r.p90_us,
            r.p99_us,
            r.hot_requests,
            r.hot_recomputes,
            hist,
        );
    }
    s
}

/// The memory budget both A/B servers get: holds the hot set's sim
/// entries (one per machine) with slack for the cold stream's stage
/// entries in flight, so cold traffic applies real eviction pressure.
/// Policy, not capacity, is the variable under test.
fn ab_mem_entries(cfg: &LoadConfig) -> usize {
    cfg.hot_designs.max(1) + 128
}

fn ab_server(cfg: &LoadConfig, shards: usize, policy: EvictPolicy) -> ServerConfig {
    ServerConfig {
        jobs: 2,
        queue_capacity: cfg.clients.max(1) * 8,
        shards,
        mem_entries: ab_mem_entries(cfg),
        policy,
        ..ServerConfig::default()
    }
}

/// The A/B result: both summaries plus the warm-throughput ratio.
#[derive(Debug, Clone)]
pub struct AbReport {
    pub baseline: LoadSummary,
    pub farm: LoadSummary,
    /// `farm.throughput_rps / baseline.throughput_rps`.
    pub ratio: f64,
}

/// Runs the load once against a single-shard FIFO server (the
/// single-lock era) and once against the sharded LRU farm, in this
/// process, each warmed before timing.
///
/// # Errors
///
/// Server bind/run or client transport failures.
pub fn ab_comparison(cfg: &LoadConfig) -> Result<AbReport, String> {
    let run_mode = |mode: &str, shards: usize, policy: EvictPolicy| {
        let server = Server::bind(ab_server(cfg, shards, policy))?;
        let addr = server.local_addr()?.to_string();
        let handle = server.shutdown_handle();
        let serving = std::thread::spawn(move || server.run());
        let corpus = build_corpus(cfg);
        let result = warm_hot_set(&addr, cfg, &corpus).and_then(|()| run_load(&addr, cfg, mode));
        handle.shutdown();
        serving
            .join()
            .map_err(|_| "server panicked".to_string())??;
        result
    };
    let baseline = run_mode("baseline-fifo-1shard", 1, EvictPolicy::Fifo)?;
    let farm = run_mode("farm-lru-8shard", 8, EvictPolicy::Lru)?;
    let ratio = farm.throughput_rps / baseline.throughput_rps.max(1e-9);
    Ok(AbReport {
        baseline,
        farm,
        ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_and_schedule_replay_from_the_seed() {
        let cfg = LoadConfig::default();
        assert_eq!(build_corpus(&cfg).hot, build_corpus(&cfg).hot);
        assert_eq!(schedule(&cfg, 3, 50), schedule(&cfg, 3, 50));
        // Different clients get different streams; different seeds too.
        assert_ne!(schedule(&cfg, 0, 50), schedule(&cfg, 1, 50));
        let reseeded = LoadConfig { seed: 7, ..cfg };
        assert_ne!(
            schedule(&reseeded, 0, 50),
            schedule(&LoadConfig::default(), 0, 50)
        );
    }

    #[test]
    fn the_mix_respects_the_hot_percent() {
        let cfg = LoadConfig {
            hot_percent: 80,
            ..LoadConfig::default()
        };
        let plan = schedule(&cfg, 0, 2000);
        let hot = plan.iter().filter(|s| s.hot).count();
        assert!((1400..=1800).contains(&hot), "hot {hot}/2000");
        assert!(plan.iter().any(|s| s.batch));
        assert!(plan.iter().any(|s| !s.batch));
    }

    #[test]
    fn sources_are_distinct_json_safe_single_lines() {
        let a = design_source(0, 3);
        let b = design_source(1, 3);
        let m = machine_source(0);
        let n = machine_source(1);
        assert_ne!(a, b);
        assert_ne!(m, n);
        for text in [&a, &b, &m, &n] {
            assert!(!text.contains('"') && !text.contains('\\') && !text.contains('\n'));
        }
        // Machines must parse and free-run: a halting hot machine would
        // stop paying its cycle budget and deflate the recompute cost.
        let parsed = silc_rtl::parse(&m).expect("machine parses");
        let mut sim = silc_rtl::Simulator::new(&parsed);
        let report = sim.run(500).expect("machine simulates");
        assert_eq!(report.cycles, 500);
        assert!(!report.halted);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let buckets = histogram(&[1, 2, 3, 100, 100, 5000]);
        assert_eq!(buckets, vec![(1, 1), (2, 1), (4, 1), (128, 2), (8192, 1)]);
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 6);
    }

    #[test]
    fn a_small_load_run_completes_cleanly_end_to_end() {
        let cfg = LoadConfig {
            clients: 2,
            requests_per_client: 8,
            hot_designs: 2,
            cold_designs: 4,
            sim_cycles: 64,
            ..LoadConfig::default()
        };
        let server = Server::bind(ServerConfig {
            jobs: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = server.shutdown_handle();
        let serving = std::thread::spawn(move || server.run());
        let corpus = build_corpus(&cfg);
        warm_hot_set(&addr, &cfg, &corpus).expect("warmup");
        let summary = run_load(&addr, &cfg, "test").expect("load");
        handle.shutdown();
        serving.join().expect("join").expect("serve");
        assert_eq!(summary.requests, 16);
        assert_eq!(summary.ok, 16, "{summary:?}");
        assert_eq!(summary.bad_request, 0);
        assert!(summary.p50_us <= summary.p99_us);
        let json = load_json(&[summary]);
        assert!(json.contains("\"bench\":\"e9/serve_load\""), "{json}");
        assert!(json.ends_with('\n'));
    }
}
