//! E2 — description leverage: "structured designs can be described by
//! structured programs". Measures SIL source size against the expanded
//! artwork it produces across a sweep of design sizes.

use silc_lang::Compiler;
use silc_layout::CellStats;

/// One measured design point.
#[derive(Debug, Clone)]
pub struct LeverageRow {
    /// Design name.
    pub design: &'static str,
    /// Size parameter.
    pub n: usize,
    /// Non-blank source lines of the SIL program.
    pub source_lines: usize,
    /// Flattened artwork elements produced.
    pub flat_elements: usize,
    /// Leverage = elements per source line.
    pub leverage: f64,
}

/// The four structured designs of the experiment, as SIL program
/// generators parameterised by `n`.
#[allow(clippy::type_complexity)]
pub fn designs() -> Vec<(&'static str, fn(usize) -> String)> {
    vec![
        ("shift-array", shift_array),
        ("decoder", decoder),
        ("adder-row", adder_row),
        ("crossbar", crossbar),
    ]
}

/// An `n x n` array of two-phase shift-register cells.
pub fn shift_array(n: usize) -> String {
    format!(
        "cell sr_bit() {{
            box diff (0, 0) (2, 12);
            box poly (-2, 3) (4, 5);
            box poly (-2, 7) (4, 9);
            box metal (4, 0) (7, 12);
         }}
         cell sr_row(n) {{ array sr_bit() at (0, 0) step (12, 0) count n; }}
         cell sr_array(n) {{ array sr_row(n) at (0, 0) step (0, 0) (0, 16) count 1 n; }}
         place sr_array({n}) at (0, 0);"
    )
}

/// A 1-of-n decoder strip: n output drivers with select wiring.
pub fn decoder(n: usize) -> String {
    format!(
        "cell drv() {{
            box diff (0, 0) (2, 8);
            box poly (-2, 3) (4, 5);
            box metal (-4, 0) (-1, 8);
         }}
         cell dec(n) {{
            array drv() at (0, 0) step (10, 0) count n;
            for i in 0..n {{
                wire metal 3 (i * 10, -4) (i * 10, -10 - i * 4) (n * 10, -10 - i * 4);
            }}
         }}
         place dec({n}) at (0, 0);"
    )
}

/// A row of ripple-adder slices with carry wiring.
pub fn adder_row(n: usize) -> String {
    format!(
        "cell fa() {{
            box diff (0, 0) (2, 12);
            box diff (6, 0) (8, 12);
            box poly (-2, 2) (10, 4);
            box poly (-2, 8) (10, 10);
            box metal (11, 0) (15, 12);
            port cin metal (13, 0);
            port cout metal (13, 12);
         }}
         cell adder(n) {{ array fa() at (0, 0) step (18, 0) count n; }}
         place adder({n}) at (0, 0);"
    )
}

/// An `n x n` crossbar of wire crossings with programmable taps on the
/// diagonal.
pub fn crossbar(n: usize) -> String {
    format!(
        "cell tap() {{
            box diff (-3, -2) (3, 2);
            box contact (-1, -1) (1, 1);
         }}
         cell xbar(n) {{
            for i in 0..n {{
                wire metal 4 (0, i * 12) (n * 12, i * 12);
                wire poly 2 (i * 12 + 6, 0 - 4) (i * 12 + 6, n * 12 + 4);
            }}
            for i in 0..n {{
                place tap() at (i * 12 + 6, i * 12);
            }}
         }}
         place xbar({n}) at (0, 0);"
    )
}

/// Measures one design at one size.
///
/// # Panics
///
/// Panics if the generated SIL fails to compile (covered by tests).
pub fn measure(design: &'static str, gen: fn(usize) -> String, n: usize) -> LeverageRow {
    let source = gen(n);
    let compiled = Compiler::new()
        .compile(&source)
        .unwrap_or_else(|e| panic!("{design}({n}): {e}"));
    let stats = CellStats::compute(&compiled.library, compiled.top).expect("top exists");
    let source_lines = source.lines().filter(|l| !l.trim().is_empty()).count();
    LeverageRow {
        design,
        n,
        source_lines,
        flat_elements: stats.flat_elements,
        leverage: stats.flat_elements as f64 / source_lines as f64,
    }
}

/// The full sweep.
pub fn run(sizes: &[usize]) -> Vec<LeverageRow> {
    let mut rows = Vec::new();
    for (name, gen) in designs() {
        for &n in sizes {
            rows.push(measure(name, gen, n));
        }
    }
    rows
}

/// Formats rows for display.
pub fn table(rows: &[LeverageRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.design.to_string(),
                r.n.to_string(),
                r.source_lines.to_string(),
                r.flat_elements.to_string(),
                format!("{:.1}", r.leverage),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_compile_at_several_sizes() {
        for (name, gen) in designs() {
            for n in [2, 4, 8] {
                let row = measure(name, gen, n);
                assert!(row.flat_elements > 0, "{name}({n}) empty");
            }
        }
    }

    #[test]
    fn leverage_grows_with_size() {
        // The paper's point: the program stays the same size while the
        // silicon grows.
        for (name, gen) in designs() {
            let small = measure(name, gen, 2);
            let large = measure(name, gen, 16);
            assert_eq!(
                small.source_lines, large.source_lines,
                "{name}: source size must not grow with n"
            );
            assert!(
                large.leverage > 4.0 * small.leverage.min(large.leverage / 4.0 + 1.0)
                    || large.flat_elements > 8 * small.flat_elements,
                "{name}: leverage failed to scale ({} -> {})",
                small.flat_elements,
                large.flat_elements
            );
        }
    }

    #[test]
    fn quadratic_designs_scale_quadratically() {
        let small = measure("shift-array", shift_array, 4);
        let large = measure("shift-array", shift_array, 8);
        // 4x the cells for 2x the parameter.
        assert_eq!(large.flat_elements, 4 * small.flat_elements);
    }
}
