//! E11 — the equivalence-checking ablation: seeded random designs run
//! through `silc-verify` via the memoized `Stage::VERIFY` pipeline,
//! each corpus point checked four ways:
//!
//! 1. the clean (truth table → minimize) or (ISL → control store) pair
//!    verifies equivalent — zero false fails,
//! 2. a seeded function-changing mutation is refuted — zero false
//!    passes (the mutation is replayed against a brute-force minterm
//!    oracle first, so "function-changing" is a proven property, not an
//!    assumption),
//! 3. the cold verify recomputes (cache misses ≥ 1),
//! 4. the warm re-verify is a pure `Stage::VERIFY` cache hit
//!    (misses = 0, hits ≥ 1).
//!
//! The corpus replays bit-for-bit from its seeds, like E10's.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc_incr::{verify_isl, verify_pla, Engine, JobStats};
use silc_logic::{Cover, Cube, Lit, TruthTable};
use silc_pla::{Minimize, PlaSpec};
use silc_trace::Tracer;
use silc_verify::{check_against_table_traced, Network, Options};
use std::time::Instant;

/// Which production check a corpus point exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyCheck {
    /// Minimized PLA personality vs. its source truth table.
    Table,
    /// Synthesized control store vs. the exact table of an ISL machine.
    Control,
}

impl VerifyCheck {
    /// Short name used in tables and JSON rows.
    pub fn name(self) -> &'static str {
        match self {
            VerifyCheck::Table => "table",
            VerifyCheck::Control => "control",
        }
    }
}

/// One (check, seed) run of the corpus.
#[derive(Debug, Clone)]
pub struct VerifyRow {
    /// Which check ran.
    pub check: &'static str,
    /// Generator seed.
    pub seed: u64,
    /// Inputs of the common truth table.
    pub inputs: usize,
    /// Outputs of the common truth table.
    pub outputs: usize,
    /// The clean pair verified equivalent.
    pub clean_pass: bool,
    /// The seeded function-changing mutation was refuted.
    pub mutant_caught: bool,
    /// Cold (recomputing) verify wall time, microseconds.
    pub cold_us: u128,
    /// Warm (cached) re-verify wall time, microseconds.
    pub warm_us: u128,
    /// Cache misses on the cold verify (must be ≥ 1).
    pub cold_misses: u64,
    /// Cache hits on the warm re-verify (must be ≥ 1).
    pub warm_hits: u64,
    /// Cache misses on the warm re-verify (must be 0).
    pub warm_misses: u64,
}

impl VerifyRow {
    /// No false fail, no false pass, and the warm re-verify was a pure
    /// cache hit.
    pub fn accepted(&self) -> bool {
        self.clean_pass
            && self.mutant_caught
            && self.cold_misses >= 1
            && self.warm_hits >= 1
            && self.warm_misses == 0
    }
}

/// The default corpus: each seed runs both checks.
pub const CORPUS: &[u64] = &[1, 2, 3, 4, 5, 6, 7, 8];

/// A random PLA source with don't-care inputs and outputs, in the
/// format `silc verify` consumes.
fn random_pla_source(rng: &mut StdRng) -> String {
    let ni = rng.gen_range(3..6usize);
    let no = rng.gen_range(1..4usize);
    let mut s = format!(".i {ni}\n.o {no}\n");
    s.push_str(".ilb");
    for i in 0..ni {
        s.push_str(&format!(" i{i}"));
    }
    s.push_str("\n.ob");
    for o in 0..no {
        s.push_str(&format!(" o{o}"));
    }
    s.push('\n');
    for _ in 0..rng.gen_range(2..7usize) {
        for _ in 0..ni {
            s.push(match rng.gen_range(0..3u32) {
                0 => '0',
                1 => '1',
                _ => '-',
            });
        }
        s.push(' ');
        for _ in 0..no {
            s.push(match rng.gen_range(0..4u32) {
                0 | 1 => '1',
                2 => '0',
                _ => '-',
            });
        }
        s.push('\n');
    }
    s.push_str(".e\n");
    s
}

/// A small random-but-valid ISL machine (same shape as the verify
/// crate's proptest generator, so its control store stays within the
/// oracle's enumerable width).
fn random_machine_source(rng: &mut StdRng) -> String {
    let n_states = rng.gen_range(2..5usize);
    let n_regs = rng.gen_range(1..3usize);
    let mut src = String::from("machine m {\n");
    for r in 0..n_regs {
        src.push_str(&format!("  reg r{r}[{}];\n", rng.gen_range(2..5u32)));
    }
    for s in 0..n_states {
        src.push_str(&format!("  state s{s} {{\n"));
        let assign = |rng: &mut StdRng| {
            let r = rng.gen_range(0..n_regs);
            match rng.gen_range(0..3u32) {
                0 => format!("r{r} := r{r} + 1;"),
                1 => format!("r{r} := r{r} ^ r{};", rng.gen_range(0..n_regs)),
                _ => format!("r{r} := {};", rng.gen_range(0..4u32)),
            }
        };
        if rng.gen_bool(0.7) {
            let c = rng.gen_range(0..n_regs);
            let k = rng.gen_range(0..4u32);
            src.push_str(&format!("    if r{c} == {k} {{\n"));
            src.push_str(&format!("      {}\n", assign(rng)));
            src.push_str(&format!("      goto s{};\n", rng.gen_range(0..n_states)));
            src.push_str("    } else {\n");
            if rng.gen_bool(0.3) {
                src.push_str("      halt;\n");
            } else {
                src.push_str(&format!("      goto s{};\n", rng.gen_range(0..n_states)));
            }
            src.push_str("    }\n");
        } else {
            src.push_str(&format!("    {}\n", assign(rng)));
            src.push_str(&format!("    goto s{};\n", rng.gen_range(0..n_states)));
        }
        src.push_str("  }\n");
    }
    src.push('}');
    src
}

/// `spec`'s realized output covers, with constant-0 outputs widened
/// from the width-0 covers `FromIterator` hands back.
fn realized_covers(spec: &PlaSpec) -> Vec<Cover> {
    (0..spec.num_outputs())
        .map(|o| {
            let c = spec.output_cover(o);
            if c.is_empty() {
                Cover::empty(spec.num_inputs())
            } else {
                c
            }
        })
        .collect()
}

/// Brute-force oracle: does `impl_covers` satisfy `table` on every
/// minterm? DC wins over ON on overlap, matching `minimize`'s
/// convention.
fn oracle_ok(table: &TruthTable, impl_covers: &[Cover]) -> bool {
    let ni = table.num_inputs();
    for m in 0..(1u64 << ni) {
        for (o, cover) in impl_covers.iter().enumerate() {
            if table.dc_cover(o).unwrap().eval(m) {
                continue;
            }
            if table.on_cover(o).unwrap().eval(m) != cover.eval(m) {
                return false;
            }
        }
    }
    true
}

/// Flips one literal / drops one cube / adds one random cube in one
/// output cover — a seeded "silent synthesis bug".
fn mutate(rng: &mut StdRng, covers: &mut [Cover]) {
    let ni = covers[0].num_inputs();
    let o = rng.gen_range(0..covers.len());
    let cover = &mut covers[o];
    match rng.gen_range(0..3u32) {
        0 if !cover.is_empty() => {
            let ci = rng.gen_range(0..cover.len());
            let pos = rng.gen_range(0..ni);
            let cube = cover.cubes()[ci].clone();
            let new_lit = match cube.lit(pos) {
                Lit::One => Lit::Zero,
                Lit::Zero => Lit::DontCare,
                Lit::DontCare => Lit::One,
            };
            let mut cubes: Vec<Cube> = cover.cubes().to_vec();
            cubes[ci] = cube.with_lit(pos, new_lit);
            *cover = Cover::from_cubes(ni, cubes).unwrap();
        }
        1 if cover.len() > 1 => {
            let ci = rng.gen_range(0..cover.len());
            let mut cubes: Vec<Cube> = cover.cubes().to_vec();
            cubes.remove(ci);
            *cover = Cover::from_cubes(ni, cubes).unwrap();
        }
        _ => {
            let lits: Vec<Lit> = (0..ni)
                .map(|_| match rng.gen_range(0..3u32) {
                    0 => Lit::Zero,
                    1 => Lit::One,
                    _ => Lit::DontCare,
                })
                .collect();
            let mut cubes: Vec<Cube> = cover.cubes().to_vec();
            cubes.push(Cube::from_lits(lits));
            *cover = Cover::from_cubes(ni, cubes).unwrap();
        }
    }
}

/// Mutates `spec`'s realized covers until the oracle confirms the
/// function actually changed, then asks the checker for a verdict.
/// Returns true when the checker refutes the mutant.
fn mutant_is_caught(rng: &mut StdRng, table: &TruthTable, spec: &PlaSpec) -> bool {
    let clean = realized_covers(spec);
    let mut covers = clean.clone();
    for _ in 0..256 {
        mutate(rng, &mut covers);
        if !oracle_ok(table, &covers) {
            let outputs: Vec<(String, Cover)> = table
                .output_names()
                .iter()
                .cloned()
                .zip(covers.iter().cloned())
                .collect();
            let net = Network::from_covers(table.input_names(), &outputs)
                .expect("mutated covers form a network");
            let report =
                check_against_table_traced(&net, table, &Options::default(), &Tracer::disabled())
                    .expect("mutant check decides");
            return !report.equivalent;
        }
        covers = clean.clone();
    }
    panic!("seeded corpus admits no function-changing mutation");
}

/// Runs one corpus point: clean verify cold and warm through
/// `Stage::VERIFY`, plus a proven-function-changing mutant that the
/// checker must refute.
pub fn run_one(check: VerifyCheck, seed: u64) -> VerifyRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let (source, table) = match check {
        VerifyCheck::Table => {
            let source = random_pla_source(&mut rng);
            let table = TruthTable::parse_pla(&source).expect("generated PLA parses");
            (source, table)
        }
        VerifyCheck::Control => {
            let source = random_machine_source(&mut rng);
            let machine = silc_rtl::parse(&source).expect("generated machine parses");
            (source, silc_synth::control_table(&machine).table)
        }
    };

    let engine = Engine::in_memory();
    let run = |stats: &mut JobStats| match check {
        VerifyCheck::Table => verify_pla(&engine, &source, stats),
        VerifyCheck::Control => verify_isl(&engine, &source, stats),
    };

    let mut cold_stats = JobStats::default();
    let started = Instant::now();
    let cold = run(&mut cold_stats).expect("cold verify decides");
    let cold_us = started.elapsed().as_micros();

    let mut warm_stats = JobStats::default();
    let started = Instant::now();
    let warm = run(&mut warm_stats).expect("warm verify decides");
    let warm_us = started.elapsed().as_micros();

    let spec = PlaSpec::from_truth_table(&table, Minimize::Heuristic).expect("table minimizes");
    let mutant_caught = mutant_is_caught(&mut rng, &table, &spec);

    VerifyRow {
        check: check.name(),
        seed,
        inputs: table.num_inputs(),
        outputs: table.num_outputs(),
        clean_pass: cold.equivalent && warm.equivalent,
        mutant_caught,
        cold_us,
        warm_us,
        cold_misses: cold_stats.misses,
        warm_hits: warm_stats.hits,
        warm_misses: warm_stats.misses,
    }
}

/// Runs both checks for every seed in `corpus`.
pub fn run_corpus(corpus: &[u64]) -> Vec<VerifyRow> {
    let mut rows = Vec::new();
    for &seed in corpus {
        rows.push(run_one(VerifyCheck::Table, seed));
        rows.push(run_one(VerifyCheck::Control, seed));
    }
    rows
}

/// Table rows for [`crate::render_table`].
pub fn verify_table(rows: &[VerifyRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.check.to_string(),
                r.seed.to_string(),
                format!("{}/{}", r.inputs, r.outputs),
                (if r.clean_pass { "yes" } else { "NO" }).to_string(),
                (if r.mutant_caught { "yes" } else { "NO" }).to_string(),
                r.cold_us.to_string(),
                r.warm_us.to_string(),
                format!("{}h/{}m", r.warm_hits, r.warm_misses),
                (if r.accepted() { "yes" } else { "NO" }).to_string(),
            ]
        })
        .collect()
}

/// One JSON object per row, newline-terminated — the artifact CI
/// uploads and validates.
pub fn verify_json(rows: &[VerifyRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in rows {
        let _ = writeln!(
            s,
            "{{\"bench\":\"e11/verify\",\"check\":\"{}\",\"seed\":{},\"inputs\":{},\
             \"outputs\":{},\"clean_pass\":{},\"mutant_caught\":{},\"cold_us\":{},\
             \"warm_us\":{},\"cold_misses\":{},\"warm_hits\":{},\"warm_misses\":{},\
             \"accepted\":{}}}",
            r.check,
            r.seed,
            r.inputs,
            r.outputs,
            r.clean_pass,
            r.mutant_caught,
            r.cold_us,
            r.warm_us,
            r.cold_misses,
            r.warm_hits,
            r.warm_misses,
            r.accepted(),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_point_passes_every_check() {
        for check in [VerifyCheck::Table, VerifyCheck::Control] {
            let row = run_one(check, 1);
            assert!(row.clean_pass, "{check:?}: false fail on clean pair");
            assert!(row.mutant_caught, "{check:?}: false pass on mutant");
            assert!(row.cold_misses >= 1, "{check:?}: cold verify hit cache");
            assert_eq!(row.warm_misses, 0, "{check:?}: warm verify recomputed");
            assert!(row.warm_hits >= 1, "{check:?}: warm verify missed cache");
            assert!(row.accepted());
        }
    }

    #[test]
    fn json_rows_are_single_line_objects() {
        let rows = vec![run_one(VerifyCheck::Table, 2)];
        let json = verify_json(&rows);
        let mut lines = json.lines();
        let line = lines.next().expect("one row");
        assert!(lines.next().is_none());
        assert!(line.starts_with("{\"bench\":\"e11/verify\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert!(line.contains("\"warm_misses\":0"), "{line}");
    }
}
