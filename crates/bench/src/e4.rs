//! E4 — PLA programming: product terms before/after minimization and
//! resulting silicon area, across the benchmark function suite.

use silc_logic::functions::benchmark_suite;
use silc_pla::{fold_plan, Minimize, PlaSpec};

/// One benchmark function's measurements.
#[derive(Debug, Clone)]
pub struct PlaRow {
    /// Function name.
    pub name: &'static str,
    /// Inputs.
    pub inputs: usize,
    /// Outputs.
    pub outputs: usize,
    /// Terms with no minimization.
    pub raw_terms: usize,
    /// Terms after exact minimization.
    pub exact_terms: usize,
    /// Terms after heuristic minimization.
    pub heuristic_terms: usize,
    /// Layout area (λ²) of the exact-minimized PLA.
    pub area: i64,
    /// Area of the unminimized PLA, for the savings ratio.
    pub raw_area: i64,
    /// AND-plane columns before folding (2 x inputs).
    pub columns: usize,
    /// Physical columns after the greedy fold plan.
    pub folded_columns: usize,
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics if a benchmark function fails to minimize (covered by tests).
pub fn run() -> Vec<PlaRow> {
    benchmark_suite()
        .into_iter()
        .map(|(name, table)| {
            let raw = PlaSpec::from_truth_table(&table, Minimize::None).expect("spec");
            let exact = PlaSpec::from_truth_table(&table, Minimize::Exact).expect("spec");
            let heur = PlaSpec::from_truth_table(&table, Minimize::Heuristic).expect("spec");
            let (w, h) = exact.area_estimate();
            let (rw, rh) = raw.area_estimate();
            let plan = fold_plan(&exact);
            PlaRow {
                name,
                inputs: table.num_inputs(),
                outputs: table.num_outputs(),
                raw_terms: raw.num_terms(),
                exact_terms: exact.num_terms(),
                heuristic_terms: heur.num_terms(),
                area: w * h,
                raw_area: rw * rh,
                columns: plan.original_columns,
                folded_columns: plan.folded_columns,
            }
        })
        .collect()
}

/// Formats rows for display.
pub fn table(rows: &[PlaRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{}x{}", r.inputs, r.outputs),
                r.raw_terms.to_string(),
                r.exact_terms.to_string(),
                r.heuristic_terms.to_string(),
                r.area.to_string(),
                format!("{:.2}", r.area as f64 / r.raw_area as f64),
                format!("{}->{}", r.columns, r.folded_columns),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_suite() {
        let rows = run();
        assert!(rows.len() >= 6);
        for r in &rows {
            assert!(r.area > 0);
            // Per-output ordering (exact <= heuristic <= raw) survives
            // cross-output row sharing only for single-output functions;
            // multi-output sharing can reorder the totals (a real
            // phenomenon, visible in the published table).
            if r.outputs == 1 {
                assert!(r.exact_terms <= r.heuristic_terms, "{}", r.name);
                assert!(r.exact_terms <= r.raw_terms, "{}", r.name);
            }
        }
    }

    #[test]
    fn minimization_saves_area_where_possible() {
        let rows = run();
        // At least the don't-care-rich and redundant functions shrink.
        let shrunk = rows.iter().filter(|r| r.exact_terms < r.raw_terms).count();
        assert!(shrunk >= 3, "only {shrunk} functions shrank");
        // Parity famously does not shrink in two-level form.
        let parity = rows.iter().find(|r| r.name == "parity4").expect("row");
        assert_eq!(parity.exact_terms, parity.raw_terms);
    }
}
