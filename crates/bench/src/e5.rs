//! E5 — the space/speed cost of behavioral compilation: "it has been
//! possible to construct hardware automatically, although at a cost in
//! space and speed". Each design is implemented twice: compiled
//! automatically from its ISP description, and hand-structured from the
//! minimal module list (with PLA-based control where control exists).

use silc_logic::functions::traffic_light;
use silc_pla::{Minimize, PlaSpec};
use silc_rtl::parse;
use silc_synth::{synthesize, ModuleClass, Sharing, SynthOptions};

/// One design compared both ways.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Design name.
    pub name: &'static str,
    /// Area (λ²) of the automatically compiled version.
    pub auto_area: u64,
    /// Area (λ²) of the hand-structured version.
    pub hand_area: u64,
    /// Cycle time (ns) of the automatic version.
    pub auto_cycle: u64,
    /// Cycle time (ns) of the hand version.
    pub hand_cycle: u64,
}

impl CostRow {
    /// Space cost factor (>= 1 when the paper's claim holds).
    pub fn space_ratio(&self) -> f64 {
        self.auto_area as f64 / self.hand_area as f64
    }

    /// Speed cost factor.
    pub fn speed_ratio(&self) -> f64 {
        self.auto_cycle as f64 / self.hand_cycle as f64
    }
}

fn hand(modules: &[ModuleClass], cycle: u64) -> (u64, u64) {
    (modules.iter().map(ModuleClass::area_lambda2).sum(), cycle)
}

fn auto(src: &str) -> (u64, u64) {
    let m = parse(src).expect("ISL source parses");
    let a = synthesize(
        &m,
        &SynthOptions {
            sharing: Sharing::Shared,
        },
    );
    (a.estimate.area_lambda2, a.estimate.cycle_ns)
}

/// Runs the comparison over the three designs.
pub fn run() -> Vec<CostRow> {
    let mut rows = Vec::new();

    // Counter: hand design is a register plus incrementer, clocked at
    // their combined delay.
    {
        let (auto_area, auto_cycle) = auto(
            "machine counter { reg n[8]; port output q[8];
                state s { n := n + 1; q := n; } }",
        );
        let inc = ModuleClass::Incrementer { width: 8 };
        let reg = ModuleClass::Register { width: 8 };
        let (hand_area, hand_cycle) = hand(&[reg, inc], inc.delay_ns() + reg.delay_ns());
        rows.push(CostRow {
            name: "counter8",
            auto_area,
            hand_area,
            auto_cycle,
            hand_cycle,
        });
    }

    // Accumulator: register + adder.
    {
        let (auto_area, auto_cycle) = auto(
            "machine acc { reg a[12]; port input x[12];
                state s { a := a + x; } }",
        );
        let add = ModuleClass::Adder { width: 12 };
        let reg = ModuleClass::Register { width: 12 };
        let (hand_area, hand_cycle) = hand(&[reg, add], add.delay_ns() + reg.delay_ns());
        rows.push(CostRow {
            name: "accum12",
            auto_area,
            hand_area,
            auto_cycle,
            hand_cycle,
        });
    }

    // Traffic-light controller: the hand design is the minimized PLA
    // (actual drawn area) plus the state register; the automatic design
    // synthesizes the same behaviour from ISL.
    {
        let (auto_area, auto_cycle) = auto(
            "machine traffic {
                reg s[2];
                port input c[1]; port input tl[1]; port input ts[1];
                port output st[1]; port output hl[2]; port output fl[2];
                state run {
                    st := 0;
                    if s == 0 {
                        hl := 0; fl := 2;
                        if (c == 1) && (tl == 1) { s := 1; st := 1; }
                    } else if s == 1 {
                        hl := 1; fl := 2;
                        if ts == 1 { s := 3; st := 1; }
                    } else if s == 3 {
                        hl := 2; fl := 0;
                        if (c == 0) || (tl == 1) { s := 2; st := 1; }
                    } else {
                        hl := 2; fl := 1;
                        if ts == 1 { s := 0; st := 1; }
                    }
                }
            }",
        );
        // Cost the hand design in the same module model: its control is
        // one PLA with exactly the minimized personality's shape, plus
        // the state register — no muxes, no spare logic.
        let spec = PlaSpec::from_truth_table(&traffic_light(), Minimize::Exact).expect("spec");
        let pla = ModuleClass::ControlPla {
            inputs: spec.num_inputs() as u32,
            outputs: spec.num_outputs() as u32,
            terms: spec.num_terms() as u32,
        };
        let reg = ModuleClass::Register { width: 2 };
        let hand_area = pla.area_lambda2() + reg.area_lambda2();
        let hand_cycle = pla.delay_ns() + reg.delay_ns();
        rows.push(CostRow {
            name: "traffic",
            auto_area,
            hand_area,
            auto_cycle,
            hand_cycle,
        });
    }

    rows
}

/// Formats rows for display.
pub fn table(rows: &[CostRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.auto_area.to_string(),
                r.hand_area.to_string(),
                format!("{:.2}", r.space_ratio()),
                r.auto_cycle.to_string(),
                r.hand_cycle.to_string(),
                format!("{:.2}", r.speed_ratio()),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automatic_costs_space_and_speed_on_datapaths() {
        for row in run() {
            if row.name == "traffic" {
                // A pure controller compiles to essentially the PLA a
                // human would draw: no meaningful penalty either way.
                assert!(
                    (0.7..1.5).contains(&row.space_ratio()),
                    "traffic should break even, ratio {:.2}",
                    row.space_ratio()
                );
                continue;
            }
            assert!(
                row.space_ratio() > 1.0,
                "{}: automatic should cost area, ratio {:.2}",
                row.name,
                row.space_ratio()
            );
            assert!(
                row.speed_ratio() >= 1.0,
                "{}: automatic should cost speed, ratio {:.2}",
                row.name,
                row.speed_ratio()
            );
        }
    }

    #[test]
    fn cost_is_bounded() {
        // The cost should be real but not absurd (sanity bound: within
        // 10x) — matching the era's reported overheads.
        for row in run() {
            assert!(row.space_ratio() < 10.0, "{}", row.name);
            assert!(row.speed_ratio() < 10.0, "{}", row.name);
        }
    }
}
