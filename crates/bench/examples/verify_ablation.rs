//! E11 — equivalence-checking ablation over seeded random designs.
//!
//! Verifies the default corpus both ways (minimized PLA vs. truth
//! table, synthesized control store vs. ISL machine), checks every row
//! (clean pair equivalent, proven-function-changing mutant refuted,
//! warm re-verify a pure `Stage::VERIFY` cache hit), prints the table
//! to stderr and one JSON object per row to stdout, and exits non-zero
//! if any row fails a check.
//!
//! ```text
//! cargo run --release -p silc-bench --example verify_ablation > e11.jsonl
//! ```

use silc_bench::e11::{run_corpus, verify_json, verify_table, CORPUS};
use silc_bench::render_table;

fn main() {
    let mut corpus: Vec<u64> = CORPUS.to_vec();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                // CI smoke subset: first three seeds, both checks each.
                corpus = vec![1, 2, 3];
            }
            "--seed" => {
                let n: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
                corpus = vec![n];
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }

    let rows = run_corpus(&corpus);
    let table = verify_table(&rows);
    eprint!(
        "{}",
        render_table(
            "E11: equivalence-checking ablation",
            &["check", "seed", "in/out", "clean", "mutant", "cold_us", "warm_us", "warm", "ok",],
            &table,
        )
    );
    print!("{}", verify_json(&rows));

    let failed: Vec<_> = rows.iter().filter(|r| !r.accepted()).collect();
    if !failed.is_empty() {
        for r in &failed {
            eprintln!(
                "FAIL: check={} seed={}: clean_pass={}, mutant_caught={}, warm={}h/{}m",
                r.check, r.seed, r.clean_pass, r.mutant_caught, r.warm_hits, r.warm_misses
            );
        }
        std::process::exit(1);
    }
    eprintln!(
        "all {} corpus points verified clean, refuted their mutants, and re-verified from cache",
        rows.len()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("verify_ablation: {msg}");
    eprintln!("usage: verify_ablation [--quick | --seed N]");
    std::process::exit(2);
}
