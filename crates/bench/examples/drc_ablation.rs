//! DRC engine ablation: spatial-index (parallel and serial) versus the
//! all-pairs brute-force oracle on the E6 shift-register arrays.
//!
//! ```text
//! cargo run --release -p silc-bench --example drc_ablation -- 8 16 32
//! ```
//!
//! Prints a human-readable table followed by one JSON object per row.

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap_or_else(|_| panic!("bad size {a:?}")))
        .collect();
    let sizes = if sizes.is_empty() {
        vec![8, 16, 32]
    } else {
        sizes
    };
    let rows = silc_bench::e6::drc_ablation(&sizes);
    println!(
        "{}",
        silc_bench::render_table(
            "E6: DRC engine ablation (indexed vs brute)",
            &[
                "n",
                "rects",
                "bins",
                "queries",
                "indexed ms",
                "serial ms",
                "brute ms",
                "speedup"
            ],
            &silc_bench::e6::ablation_table(&rows),
        )
    );
    print!("{}", silc_bench::e6::ablation_json(&rows));
}
