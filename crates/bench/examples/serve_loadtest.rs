//! Compile-farm load test (E9): replayable clients hammering `silc
//! serve` over TCP, reporting throughput and latency percentiles.
//!
//! Two modes:
//!
//! ```text
//! # A/B ablation, in-process: single-shard FIFO vs sharded-LRU farm.
//! # Exits non-zero unless farm warm throughput >= 2x baseline
//! # (release builds only).
//! cargo run --release -p silc-bench --example serve_loadtest
//!
//! # External: hammer an already-running server (e.g. the real binary
//! # in CI); no ratio check, but any bad_request or transport failure
//! # is fatal.
//! cargo run --release -p silc-bench --example serve_loadtest -- \
//!     --addr 127.0.0.1:7878 --clients 2 --duration-ms 2000
//! ```
//!
//! Prints a human table on stderr and one JSON object per run on
//! stdout (the JSONL artifact CI uploads).

use silc_bench::e9::{ab_comparison, load_json, load_table, run_load, LoadConfig};

struct Args {
    cfg: LoadConfig,
    addr: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = LoadConfig::default();
    let mut addr = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--clients" => cfg.clients = parse_positive(&value("--clients")?, "--clients")?,
            "--requests" => {
                cfg.requests_per_client = parse_positive(&value("--requests")?, "--requests")?;
            }
            "--duration-ms" => {
                cfg.duration_ms =
                    Some(parse_positive(&value("--duration-ms")?, "--duration-ms")? as u64);
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_string())?;
            }
            "--hot-percent" => {
                cfg.hot_percent = value("--hot-percent")?
                    .parse()
                    .map_err(|_| "--hot-percent needs 0..=100".to_string())?;
            }
            "--batch-percent" => {
                cfg.batch_percent = value("--batch-percent")?
                    .parse()
                    .map_err(|_| "--batch-percent needs 0..=100".to_string())?;
            }
            "--sim-cycles" => {
                cfg.sim_cycles = parse_positive(&value("--sim-cycles")?, "--sim-cycles")? as u64;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args { cfg, addr })
}

fn parse_positive(text: &str, name: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("{name} needs a positive number"))
}

const HEADER: [&str; 9] = [
    "mode",
    "clients",
    "reqs",
    "rps",
    "p50us",
    "p90us",
    "p99us",
    "bad/to/ovl/err",
    "hotmiss",
];

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("serve_loadtest: {e}");
        std::process::exit(2);
    });
    match args.addr {
        Some(addr) => external(&addr, &args.cfg),
        None => ablation(&args.cfg),
    }
}

/// Hammer a server someone else started. Used by the CI smoke test
/// against the real `silc serve` binary.
fn external(addr: &str, cfg: &LoadConfig) {
    let summary = run_load(addr, cfg, "external").unwrap_or_else(|e| {
        eprintln!("serve_loadtest: {e}");
        std::process::exit(1);
    });
    let rows = std::slice::from_ref(&summary);
    eprintln!(
        "{}",
        silc_bench::render_table("E9: serve load", &HEADER, &load_table(rows))
    );
    print!("{}", load_json(rows));
    if summary.bad_request > 0 || summary.error > 0 {
        eprintln!(
            "FAIL: {} bad_request, {} error response(s)",
            summary.bad_request, summary.error
        );
        std::process::exit(1);
    }
}

/// The headline A/B: FIFO single-shard baseline vs the sharded LRU farm.
fn ablation(cfg: &LoadConfig) {
    let report = ab_comparison(cfg).unwrap_or_else(|e| {
        eprintln!("serve_loadtest: {e}");
        std::process::exit(1);
    });
    let rows = [report.baseline.clone(), report.farm.clone()];
    eprintln!(
        "{}",
        silc_bench::render_table(
            "E9: compile farm vs single-lock baseline (warm, 8 clients)",
            &HEADER,
            &load_table(&rows),
        )
    );
    eprintln!("warm throughput ratio: {:.2}x", report.ratio);
    print!("{}", load_json(&rows));
    for row in &rows {
        if row.bad_request > 0 || row.error > 0 {
            eprintln!(
                "FAIL: mode {} saw {} bad_request, {} error response(s)",
                row.mode, row.bad_request, row.error
            );
            std::process::exit(1);
        }
    }
    // The acceptance bar only means anything on optimized builds.
    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the 2x throughput check");
        return;
    }
    if report.ratio < 2.0 {
        eprintln!(
            "FAIL: farm is only {:.2}x the baseline throughput (need >= 2x)",
            report.ratio
        );
        std::process::exit(1);
    }
}
