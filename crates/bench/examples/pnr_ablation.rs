//! E10 — place-and-route ablation over seeded random netlists.
//!
//! Routes the default corpus (4..40 cells, multiple seeds each) serial
//! and parallel, checks every row (100% routed, byte-identical CIF,
//! DRC-clean, extraction matches the source netlist), prints the table
//! to stderr and one JSON object per row to stdout, and exits non-zero
//! if any row fails a check.
//!
//! ```text
//! cargo run --release -p silc-bench --example pnr_ablation > e10.jsonl
//! ```

use silc_bench::e10::{pnr_json, pnr_table, run_corpus, CORPUS};
use silc_bench::render_table;

fn main() {
    let mut corpus: Vec<(usize, u64)> = CORPUS.to_vec();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                // CI smoke subset: small sizes, one seed each.
                corpus = vec![(4, 1), (8, 1), (16, 1)];
            }
            "--cells" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--cells needs a number"));
                corpus = vec![(n, 1)];
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }

    let rows = run_corpus(&corpus);
    let table = pnr_table(&rows);
    eprint!(
        "{}",
        render_table(
            "E10: place-and-route ablation",
            &[
                "cells",
                "seed",
                "routed",
                "wirelen",
                "vias",
                "rounds",
                "serial_us",
                "parallel_us",
                "ok",
            ],
            &table,
        )
    );
    print!("{}", pnr_json(&rows));

    let failed: Vec<_> = rows.iter().filter(|r| !r.accepted()).collect();
    if !failed.is_empty() {
        for r in &failed {
            eprintln!(
                "FAIL: cells={} seed={}: routed {}/{}, identical={}, drc_clean={}, lvs_ok={}",
                r.cells, r.seed, r.routed, r.nets, r.identical, r.drc_clean, r.lvs_ok
            );
        }
        std::process::exit(1);
    }
    eprintln!(
        "all {} corpus points routed 100%, byte-identical, drc-clean, lvs-clean",
        rows.len()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("pnr_ablation: {msg}");
    eprintln!("usage: pnr_ablation [--quick | --cells N]");
    std::process::exit(2);
}
