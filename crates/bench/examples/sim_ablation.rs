//! Simulation engine ablation: the compiled bytecode engine versus the
//! interpreter on the PDP-8 ISP description running a busy loop.
//!
//! ```text
//! cargo run --release -p silc-bench --example sim_ablation -- 10000 100000
//! ```
//!
//! Prints a human-readable table followed by one JSON object per row.
//! Every row is an equivalence witness (registers, core, state and run
//! report byte-identical) before it is a timing. Exits non-zero if the
//! largest budget does not show at least a 5x compiled speedup.

fn main() {
    let budgets: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap_or_else(|_| panic!("bad budget {a:?}")))
        .collect();
    let budgets = if budgets.is_empty() {
        vec![10_000, 100_000]
    } else {
        budgets
    };
    let rows = silc_bench::e1::sim_ablation(&budgets);
    println!(
        "{}",
        silc_bench::render_table(
            "E1: PDP-8 simulation, compiled vs interpreted",
            &["cycles", "interp ms", "compiled ms", "speedup"],
            &silc_bench::e1::sim_table(&rows),
        )
    );
    print!("{}", silc_bench::e1::sim_json(&rows));

    // The acceptance bar only means anything on optimized builds.
    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the 5x speedup check");
        return;
    }
    let last = rows.last().expect("at least one budget");
    if last.speedup < 5.0 {
        eprintln!(
            "FAIL: compiled engine is only {:.1}x faster at {} cycles (need >= 5x)",
            last.speedup, last.cycles
        );
        std::process::exit(1);
    }
}
