//! E7 — verification: times the verifiers (DRC, ISP cross-simulation,
//! extraction) and prints the pass/fail battery.

use criterion::{criterion_group, criterion_main, Criterion};
use silc_bench::e7;
use silc_pdp8::{assemble, IspCrossCheck};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let program = assemble(
        "*200
                 cla cll
         loop,   tad total
                 tad count
                 dca total
                 isz count
                 jmp loop
                 hlt
         count,  7770
         total,  0000",
    )
    .expect("assembles");
    c.bench_function("e7/isp_cross_check", |b| {
        b.iter(|| IspCrossCheck::run(black_box(&program), 2000).expect("simulates"))
    });
    c.bench_function("e7/seeded_error_detection", |b| {
        b.iter(|| e7::seeded_error_detection(black_box(10), 0xBEEF))
    });

    let rows = e7::run();
    println!(
        "{}",
        silc_bench::render_table(
            "E7: verification battery",
            &["check", "result", "detail"],
            &e7::table(&rows),
        )
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
