//! E4 — PLA programming: times exact and heuristic minimization on the
//! benchmark suite and prints the personality table.

use criterion::{criterion_group, criterion_main, Criterion};
use silc_bench::e4;
use silc_logic::functions::{bcd_to_seven_segment, traffic_light};
use silc_logic::{minimize_exact, minimize_heuristic};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let bcd = bcd_to_seven_segment();
    let traffic = traffic_light();
    c.bench_function("e4/minimize_exact_bcd7seg_sa", |b| {
        let on = bcd.on_cover(0).expect("cover");
        let dc = bcd.dc_cover(0).expect("cover");
        b.iter(|| minimize_exact(black_box(&on), black_box(&dc)).expect("minimizes"))
    });
    c.bench_function("e4/minimize_heuristic_traffic_ns1", |b| {
        let on = traffic.on_cover(0).expect("cover");
        let dc = traffic.dc_cover(0).expect("cover");
        b.iter(|| minimize_heuristic(black_box(&on), black_box(&dc)).expect("minimizes"))
    });

    let rows = e4::run();
    println!(
        "{}",
        silc_bench::render_table(
            "E4: PLA programming",
            &[
                "function",
                "i/o",
                "raw",
                "exact",
                "heur",
                "area",
                "area ratio",
                "fold"
            ],
            &e4::table(&rows),
        )
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
