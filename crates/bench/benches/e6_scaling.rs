//! E6 — compilation scaling: compile, flatten, DRC and CIF times versus
//! design size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silc_bench::e6;
use silc_drc::{
    check, check_flat, check_flat_brute, check_flat_serial, check_flat_unmerged, RuleSet,
};
use silc_layout::flatten_to_rects;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut compile = c.benchmark_group("e6/compile");
    for n in [4usize, 8, 16, 32] {
        compile.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| e6::compile_design(black_box(n)))
        });
    }
    compile.finish();

    let mut cif = c.benchmark_group("e6/emit_cif");
    for n in [4usize, 8, 16, 32] {
        let design = e6::compile_design(n);
        cif.bench_with_input(BenchmarkId::from_parameter(n), &design, |b, d| {
            b.iter(|| e6::emit_cif(black_box(d)))
        });
    }
    cif.finish();

    let mut drc = c.benchmark_group("e6/drc");
    for n in [4usize, 8, 16] {
        let design = e6::compile_design(n);
        drc.bench_with_input(BenchmarkId::from_parameter(n), &design, |b, d| {
            b.iter(|| {
                check(black_box(&d.library), d.top, &RuleSet::mead_conway_nmos()).expect("root")
            })
        });
    }
    drc.finish();

    // Ablation: maximal-rect merge before checking vs raw pairwise.
    let mut ablation = c.benchmark_group("e6/drc_merge_ablation");
    for n in [8usize, 16] {
        let design = e6::compile_design(n);
        let layers = flatten_to_rects(&design.library, design.top).expect("flattens");
        ablation.bench_with_input(BenchmarkId::new("merged", n), &layers, |b, l| {
            b.iter(|| check_flat(black_box(l), &RuleSet::mead_conway_nmos()))
        });
        ablation.bench_with_input(BenchmarkId::new("unmerged", n), &layers, |b, l| {
            b.iter(|| check_flat_unmerged(black_box(l), &RuleSet::mead_conway_nmos()))
        });
    }
    ablation.finish();

    // Engine ablation: spatial-index vs all-pairs candidate enumeration,
    // and parallel vs serial execution of the indexed engine. All three
    // produce byte-identical reports; only the time differs.
    let mut engine = c.benchmark_group("e6/drc_engine");
    for n in [8usize, 16, 32] {
        let design = e6::compile_design(n);
        let layers = flatten_to_rects(&design.library, design.top).expect("flattens");
        engine.bench_with_input(BenchmarkId::new("indexed_par", n), &layers, |b, l| {
            b.iter(|| check_flat(black_box(l), &RuleSet::mead_conway_nmos()))
        });
        engine.bench_with_input(BenchmarkId::new("indexed_serial", n), &layers, |b, l| {
            b.iter(|| check_flat_serial(black_box(l), &RuleSet::mead_conway_nmos()))
        });
        // The oracle is quadratic; skip it at the largest size where a
        // single iteration already takes tens of seconds.
        if n <= 16 {
            engine.bench_with_input(BenchmarkId::new("brute", n), &layers, |b, l| {
                b.iter(|| check_flat_brute(black_box(l), &RuleSet::mead_conway_nmos()))
            });
        }
    }
    engine.finish();

    let rows = e6::run(&[2, 4, 8, 16, 32]);
    println!(
        "{}",
        silc_bench::render_table(
            "E6: compilation scaling",
            &["n", "flat elems", "cif bytes", "drc violations"],
            &e6::table(&rows),
        )
    );

    // Single-shot engine comparison incl. the brute oracle at full size,
    // with a machine-readable JSONL summary on stdout.
    let ablation_rows = e6::drc_ablation(&[8, 16, 32]);
    println!(
        "{}",
        silc_bench::render_table(
            "E6: DRC engine ablation (indexed vs brute)",
            &[
                "n",
                "rects",
                "bins",
                "queries",
                "indexed ms",
                "serial ms",
                "brute ms",
                "speedup"
            ],
            &e6::ablation_table(&ablation_rows),
        )
    );
    print!("{}", e6::ablation_json(&ablation_rows));

    // Incremental-engine payoff: the same design compiled cold then warm
    // through the silc-incr query cache (byte-identity asserted inside).
    let mut warm_cold = c.benchmark_group("e6/incr_warm_vs_cold");
    for n in [8usize, 16, 32] {
        let source = silc_bench::e2::shift_array(n);
        let engine = silc_incr::Engine::in_memory();
        let options = silc_incr::CompileOptions::default();
        let mut stats = silc_incr::JobStats::default();
        silc_incr::compile_sil(&engine, &source, &options, &mut stats).expect("cold compile");
        warm_cold.bench_with_input(BenchmarkId::new("warm", n), &source, |b, s| {
            b.iter(|| {
                let mut stats = silc_incr::JobStats::default();
                silc_incr::compile_sil(black_box(&engine), s, &options, &mut stats)
                    .expect("warm compile")
            })
        });
    }
    warm_cold.finish();

    let warm_cold_rows = e6::incr_warm_vs_cold(&[8, 16, 32]);
    println!(
        "{}",
        silc_bench::render_table(
            "E6: incremental engine, warm vs cold",
            &["n", "cold ms", "warm ms", "speedup", "warm misses"],
            &e6::warm_cold_table(&warm_cold_rows),
        )
    );
    print!("{}", e6::warm_cold_json(&warm_cold_rows));
}

criterion_group!(benches, bench);
criterion_main!(benches);
