//! E8 — wiring management: times the routers and prints channel-height
//! and placement-quality curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silc_bench::e8;
use silc_route::river_route;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8/river_route");
    for n in [8usize, 32, 128] {
        let bottom: Vec<i64> = (0..n as i64).map(|i| i * 8).collect();
        let top: Vec<i64> = bottom.iter().map(|x| x + 12).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| river_route(black_box(&bottom), black_box(&top), 4).expect("routes"))
        });
    }
    group.finish();

    c.bench_function("e8/channel_sweep", |b| {
        b.iter(|| e8::channel_sweep(black_box(&[4, 8]), 99))
    });

    let rows = e8::river_sweep(&[1, 2, 4, 8, 16]);
    println!(
        "{}",
        silc_bench::render_table(
            "E8a: river channel height vs interlock depth",
            &["chain", "tracks", "height", "wire"],
            &e8::river_table(&rows),
        )
    );
    let (rows, skipped) = e8::channel_sweep(&[2, 4, 8, 12, 16], 2024);
    println!(
        "{}",
        silc_bench::render_table(
            "E8b: channel tracks vs density",
            &["nets", "density", "tracks"],
            &e8::channel_table(&rows),
        )
    );
    println!("(cyclic instances re-rolled: {skipped})");
    for nets in [4usize, 8, 16] {
        let p = e8::placement_comparison(nets, 7);
        println!(
            "E8c placement: {} nets, aligned {} vs scrambled {} lambda",
            p.nets, p.aligned_wire, p.scrambled_wire
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
