//! E2 — description leverage: times SIL compilation across design sizes
//! and prints source-vs-silicon leverage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silc_bench::e2;
use silc_lang::Compiler;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/compile_shift_array");
    for n in [4usize, 8, 16] {
        let source = e2::shift_array(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &source, |b, src| {
            b.iter(|| Compiler::new().compile(black_box(src)).expect("compiles"))
        });
    }
    group.finish();

    let rows = e2::run(&[2, 4, 8, 16]);
    println!(
        "{}",
        silc_bench::render_table(
            "E2: structured description leverage",
            &["design", "n", "src lines", "flat elems", "leverage"],
            &e2::table(&rows),
        )
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
