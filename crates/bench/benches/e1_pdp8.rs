//! E1 — PDP-8 synthesis: times the behavioral-to-structural compilation
//! and prints the package-count table the experiment reports.

use criterion::{criterion_group, criterion_main, Criterion};
use silc_bench::e1;
use silc_pdp8::isp_machine;
use silc_synth::{synthesize, Sharing, SynthOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let machine = isp_machine().expect("parses");
    c.bench_function("e1/synthesize_pdp8_shared", |b| {
        b.iter(|| {
            synthesize(
                black_box(&machine),
                &SynthOptions {
                    sharing: Sharing::Shared,
                },
            )
        })
    });
    c.bench_function("e1/synthesize_pdp8_per_op", |b| {
        b.iter(|| {
            synthesize(
                black_box(&machine),
                &SynthOptions {
                    sharing: Sharing::PerOperation,
                },
            )
        })
    });
    let (rows, result) = e1::table();
    println!(
        "{}",
        silc_bench::render_table(
            "E1: PDP-8 chip count",
            &["module", "count", "packages"],
            &rows
        )
    );
    println!(
        "claim: ratio {:.2} <= 1.50 -> {}",
        result.ratio,
        if result.ratio <= 1.5 {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
