//! E1 — PDP-8 synthesis: times the behavioral-to-structural compilation
//! and prints the package-count table the experiment reports.

use criterion::{criterion_group, criterion_main, Criterion};
use silc_bench::e1;
use silc_exec::CompiledSim;
use silc_pdp8::{assemble, isp_machine, load_program_into_isl};
use silc_rtl::Simulator;
use silc_synth::{synthesize, Sharing, SynthOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let machine = isp_machine().expect("parses");
    c.bench_function("e1/synthesize_pdp8_shared", |b| {
        b.iter(|| {
            synthesize(
                black_box(&machine),
                &SynthOptions {
                    sharing: Sharing::Shared,
                },
            )
        })
    });
    c.bench_function("e1/synthesize_pdp8_per_op", |b| {
        b.iter(|| {
            synthesize(
                black_box(&machine),
                &SynthOptions {
                    sharing: Sharing::PerOperation,
                },
            )
        })
    });
    let program = assemble("*200\nloop, iac\n jmp loop\n").expect("assembles");
    let compiled = silc_exec::compile(&machine);
    let mut image = vec![0u64; 4096];
    for &(addr, word) in &program.words {
        image[addr as usize] = u64::from(word);
    }
    let mut engines = c.benchmark_group("e1/sim_compiled_vs_interp");
    engines.bench_function("interp_10k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(black_box(&machine));
            load_program_into_isl(&mut sim, &program);
            sim.run(10_000).unwrap()
        })
    });
    engines.bench_function("compiled_10k", |b| {
        b.iter(|| {
            let mut sim = CompiledSim::new(black_box(&compiled));
            sim.load_mem("m", &image).unwrap();
            sim.set_reg("pc", u64::from(program.start)).unwrap();
            sim.run(10_000).unwrap()
        })
    });
    engines.finish();
    let sim_rows = e1::sim_ablation(&[10_000, 100_000]);
    println!(
        "{}",
        silc_bench::render_table(
            "E1: PDP-8 simulation, compiled vs interpreted",
            &["cycles", "interp ms", "compiled ms", "speedup"],
            &e1::sim_table(&sim_rows),
        )
    );
    print!("{}", e1::sim_json(&sim_rows));

    let (rows, result) = e1::table();
    println!(
        "{}",
        silc_bench::render_table(
            "E1: PDP-8 chip count",
            &["module", "count", "packages"],
            &rows
        )
    );
    println!(
        "claim: ratio {:.2} <= 1.50 -> {}",
        result.ratio,
        if result.ratio <= 1.5 {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
