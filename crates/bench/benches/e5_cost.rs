//! E5 — the space/speed cost of behavioral compilation, plus the
//! sharing-policy ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use silc_bench::e5;
use silc_rtl::parse;
use silc_synth::{synthesize, Sharing, SynthOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let machine = parse("machine acc { reg a[12]; port input x[12]; state s { a := a + x; } }")
        .expect("parses");
    c.bench_function("e5/synthesize_accumulator", |b| {
        b.iter(|| {
            synthesize(
                black_box(&machine),
                &SynthOptions {
                    sharing: Sharing::Shared,
                },
            )
        })
    });

    let rows = e5::run();
    println!(
        "{}",
        silc_bench::render_table(
            "E5: behavioral vs structural cost",
            &[
                "design",
                "auto λ²",
                "hand λ²",
                "space",
                "auto ns",
                "hand ns",
                "speed"
            ],
            &e5::table(&rows),
        )
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
