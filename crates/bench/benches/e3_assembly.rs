//! E3 — parameterised chip assembly: times datapath generation+assembly
//! across bit widths and prints the assembly table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silc_bench::e3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3/assemble_datapath");
    for bits in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| e3::run_one(black_box(bits)))
        });
    }
    group.finish();

    let rows = e3::run(&[4, 8, 16, 32]);
    println!(
        "{}",
        silc_bench::render_table(
            "E3: parameterised chip assembly",
            &["bits", "width", "height", "area", "wire", "tracks"],
            &e3::table(&rows),
        )
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
