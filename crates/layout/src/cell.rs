use crate::{CellId, Element, Layer, LayoutError};
use silc_geom::{Coord, Point, Rect, Transform};
use std::fmt;

/// A named connection point on a cell boundary.
///
/// Ports are the structural half of the paper's "unification of the
/// structural and physical hierarchies": the chip assembler and routers
/// connect cells port-to-port, and the extractor labels extracted nets by
/// the ports they touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Signal name, unique within the cell.
    pub name: String,
    /// The conducting layer the port presents.
    pub layer: Layer,
    /// Location in cell-local coordinates.
    pub at: Point,
}

impl Port {
    /// Creates a port.
    pub fn new(name: impl Into<String>, layer: Layer, at: Point) -> Port {
        Port {
            name: name.into(),
            layer,
            at,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.name, self.layer, self.at)
    }
}

/// A placement of one cell inside another, optionally replicated into a
/// `cols` × `rows` array with pitches `dx`, `dy` (the *repetition* facility
/// the paper requires of graphics languages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The instantiated cell.
    pub cell: CellId,
    /// Placement of array element (0, 0) in parent coordinates.
    pub transform: Transform,
    /// Columns of replication (>= 1).
    pub cols: u32,
    /// Rows of replication (>= 1).
    pub rows: u32,
    /// Column pitch in parent coordinates.
    pub dx: Coord,
    /// Row pitch in parent coordinates.
    pub dy: Coord,
}

impl Instance {
    /// A single (non-arrayed) placement.
    pub fn place(cell: CellId, transform: Transform) -> Instance {
        Instance {
            cell,
            transform,
            cols: 1,
            rows: 1,
            dx: 0,
            dy: 0,
        }
    }

    /// An arrayed placement.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::BadArray`] if `cols` or `rows` is zero.
    pub fn array(
        cell: CellId,
        transform: Transform,
        cols: u32,
        rows: u32,
        dx: Coord,
        dy: Coord,
    ) -> Result<Instance, LayoutError> {
        if cols == 0 || rows == 0 {
            return Err(LayoutError::BadArray { cols, rows });
        }
        Ok(Instance {
            cell,
            transform,
            cols,
            rows,
            dx,
            dy,
        })
    }

    /// Number of copies this instance expands to.
    pub fn count(&self) -> u64 {
        u64::from(self.cols) * u64::from(self.rows)
    }

    /// Iterates over the effective transforms of every array element, row
    /// by row.
    pub fn placements(&self) -> impl Iterator<Item = Transform> + '_ {
        let base = self.transform;
        let (dx, dy) = (self.dx, self.dy);
        let cols = self.cols;
        (0..self.rows).flat_map(move |r| {
            (0..cols).map(move |c| {
                let shift = Point::new(
                    base.offset.x + dx * Coord::from(c),
                    base.offset.y + dy * Coord::from(r),
                );
                Transform::new(base.orientation, shift)
            })
        })
    }
}

/// A design cell: named artwork plus sub-cell instances plus ports.
///
/// # Example
///
/// ```
/// use silc_layout::{Cell, Element, Layer};
/// use silc_geom::{Point, Rect};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Cell::new("pullup");
/// c.push_element(Element::rect(Layer::Poly, Rect::new(Point::new(0,0), Point::new(2,6))?));
/// assert_eq!(c.elements().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    name: String,
    elements: Vec<Element>,
    instances: Vec<Instance>,
    ports: Vec<Port>,
}

impl Cell {
    /// Creates an empty cell with the given name.
    pub fn new(name: impl Into<String>) -> Cell {
        Cell {
            name: name.into(),
            elements: Vec::new(),
            instances: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// The cell's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's own mask artwork (not including sub-cells).
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Sub-cell placements.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Declared connection points.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Adds a piece of artwork.
    pub fn push_element(&mut self, e: Element) {
        self.elements.push(e);
    }

    /// Adds a sub-cell placement. Prefer [`crate::Library::add_instance`],
    /// which also validates against hierarchy cycles; this unchecked form
    /// exists for building cells *before* they are inserted into a library
    /// (at which point insertion re-validates).
    pub fn push_instance(&mut self, i: Instance) {
        self.instances.push(i);
    }

    /// Declares a port.
    pub fn push_port(&mut self, p: Port) {
        self.ports.push(p);
    }

    /// Finds a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Bounding box of the cell's **own** artwork (instances excluded —
    /// see [`crate::CellStats`] for the deep bbox).
    pub fn local_bbox(&self) -> Option<Rect> {
        let mut it = self.elements.iter().map(Element::bbox);
        let first = it.next()?;
        Some(it.fold(first, |acc, b| acc.union(b)))
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} ({} elements, {} instances, {} ports)",
            self.name,
            self.elements.len(),
            self.instances.len(),
            self.ports.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::Orientation;

    #[test]
    fn array_validation() {
        let id = CellId::from_raw(0);
        assert!(Instance::array(id, Transform::IDENTITY, 0, 1, 5, 5).is_err());
        assert!(Instance::array(id, Transform::IDENTITY, 1, 0, 5, 5).is_err());
        let a = Instance::array(id, Transform::IDENTITY, 3, 2, 10, 20).unwrap();
        assert_eq!(a.count(), 6);
    }

    #[test]
    fn placements_walk_the_grid() {
        let id = CellId::from_raw(0);
        let base = Transform::new(Orientation::R90, Point::new(100, 50));
        let a = Instance::array(id, base, 2, 2, 10, 20).unwrap();
        let offsets: Vec<_> = a.placements().map(|t| t.offset).collect();
        assert_eq!(
            offsets,
            vec![
                Point::new(100, 50),
                Point::new(110, 50),
                Point::new(100, 70),
                Point::new(110, 70),
            ]
        );
        // Orientation is preserved across the array.
        assert!(a.placements().all(|t| t.orientation == Orientation::R90));
    }

    #[test]
    fn single_placement() {
        let id = CellId::from_raw(3);
        let i = Instance::place(id, Transform::IDENTITY);
        assert_eq!(i.count(), 1);
        assert_eq!(i.placements().count(), 1);
    }

    #[test]
    fn local_bbox_unions_elements() {
        let mut c = Cell::new("t");
        assert_eq!(c.local_bbox(), None);
        c.push_element(Element::rect(
            Layer::Poly,
            Rect::from_origin_size(Point::new(0, 0), 2, 2).unwrap(),
        ));
        c.push_element(Element::rect(
            Layer::Metal,
            Rect::from_origin_size(Point::new(10, 10), 2, 2).unwrap(),
        ));
        let bb = c.local_bbox().unwrap();
        assert_eq!(bb, Rect::new(Point::new(0, 0), Point::new(12, 12)).unwrap());
    }

    #[test]
    fn ports_lookup() {
        let mut c = Cell::new("t");
        c.push_port(Port::new("vdd", Layer::Metal, Point::new(0, 10)));
        c.push_port(Port::new("gnd", Layer::Metal, Point::new(0, 0)));
        assert_eq!(c.port("vdd").unwrap().at, Point::new(0, 10));
        assert!(c.port("clk").is_none());
    }

    #[test]
    fn display_counts() {
        let c = Cell::new("adder");
        assert_eq!(
            c.to_string(),
            "cell adder (0 elements, 0 instances, 0 ports)"
        );
    }
}
