use crate::CellId;
use std::error::Error;
use std::fmt;

/// Error produced by layout-database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// A cell name was already taken in the library.
    DuplicateCellName {
        /// The offending name.
        name: String,
    },
    /// A referenced cell id does not exist in the library.
    UnknownCell {
        /// The dangling id.
        id: CellId,
    },
    /// Adding the instance would make the hierarchy cyclic.
    RecursiveInstance {
        /// The cell the instance was being added to.
        parent: CellId,
        /// The cell the instance refers to.
        child: CellId,
    },
    /// Array replication counts must be at least 1.
    BadArray {
        /// Requested columns.
        cols: u32,
        /// Requested rows.
        rows: u32,
    },
    /// The cell (after flattening) contains no geometry, so a bounding box
    /// or area query has no answer.
    EmptyCell {
        /// Name of the empty cell.
        name: String,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DuplicateCellName { name } => {
                write!(f, "cell name `{name}` is already defined")
            }
            LayoutError::UnknownCell { id } => write!(f, "unknown cell id {id:?}"),
            LayoutError::RecursiveInstance { parent, child } => write!(
                f,
                "placing {child:?} inside {parent:?} would create a cycle"
            ),
            LayoutError::BadArray { cols, rows } => {
                write!(f, "array replication must be >= 1, got {cols} x {rows}")
            }
            LayoutError::EmptyCell { name } => {
                write!(f, "cell `{name}` contains no geometry")
            }
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_specifics() {
        let e = LayoutError::DuplicateCellName { name: "inv".into() };
        assert!(e.to_string().contains("inv"));
        let e = LayoutError::BadArray { cols: 0, rows: 3 };
        assert!(e.to_string().contains('0'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LayoutError>();
    }
}
