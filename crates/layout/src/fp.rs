//! [`Fingerprint`] implementations for the layout database.
//!
//! A [`Library`] fingerprint covers every cell in insertion order — name,
//! artwork, ports and instances — so any edit anywhere in the hierarchy
//! changes the digest, while an elaboration that reproduces the same
//! library byte-for-byte reproduces the same digest (the early-cutoff
//! property `silc-incr` relies on).

use crate::{Cell, CellId, Element, FlatElement, Instance, Layer, Library, Port, Shape};
use silc_geom::{Fingerprint, FpHasher};

impl Fingerprint for Layer {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_u8(self.index() as u8);
    }
}

impl Fingerprint for CellId {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_u32(self.raw());
    }
}

impl Fingerprint for Shape {
    fn fp_hash(&self, h: &mut FpHasher) {
        match self {
            Shape::Rect(r) => {
                h.write_u8(0);
                r.fp_hash(h);
            }
            Shape::Polygon(p) => {
                h.write_u8(1);
                p.fp_hash(h);
            }
            Shape::Wire(w) => {
                h.write_u8(2);
                w.fp_hash(h);
            }
        }
    }
}

impl Fingerprint for Element {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.layer.fp_hash(h);
        self.shape.fp_hash(h);
    }
}

impl Fingerprint for Port {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(&self.name);
        self.layer.fp_hash(h);
        self.at.fp_hash(h);
    }
}

impl Fingerprint for Instance {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.cell.fp_hash(h);
        self.transform.fp_hash(h);
        h.write_u32(self.cols);
        h.write_u32(self.rows);
        h.write_i64(self.dx);
        h.write_i64(self.dy);
    }
}

impl Fingerprint for Cell {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(self.name());
        self.elements().fp_hash(h);
        self.instances().fp_hash(h);
        self.ports().fp_hash(h);
    }
}

impl Fingerprint for Library {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_len(self.len());
        for (_, cell) in self.iter() {
            cell.fp_hash(h);
        }
    }
}

impl Fingerprint for FlatElement {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.element.fp_hash(h);
        self.source.fp_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::{Point, Rect, Transform};

    fn leaf(name: &str, w: i64) -> Cell {
        let mut c = Cell::new(name);
        c.push_element(Element::rect(
            Layer::Poly,
            Rect::from_origin_size(Point::new(0, 0), w, 2).unwrap(),
        ));
        c
    }

    #[test]
    fn identical_libraries_agree() {
        let build = || {
            let mut lib = Library::new();
            let a = lib.add_cell(leaf("a", 2)).unwrap();
            let mut top = leaf("top", 4);
            top.push_instance(Instance::place(a, Transform::IDENTITY));
            lib.add_cell(top).unwrap();
            lib
        };
        assert_eq!(build().fingerprint(), build().fingerprint());
    }

    #[test]
    fn any_edit_changes_the_digest() {
        let mut lib = Library::new();
        lib.add_cell(leaf("a", 2)).unwrap();
        let base = lib.fingerprint();

        let mut widened = Library::new();
        widened.add_cell(leaf("a", 3)).unwrap();
        assert_ne!(widened.fingerprint(), base);

        let mut renamed = Library::new();
        renamed.add_cell(leaf("b", 2)).unwrap();
        assert_ne!(renamed.fingerprint(), base);

        let mut with_port = Library::new();
        let mut cell = leaf("a", 2);
        cell.push_port(Port::new("out", Layer::Metal, Point::new(0, 0)));
        with_port.add_cell(cell).unwrap();
        assert_ne!(with_port.fingerprint(), base);
    }

    #[test]
    fn layer_digests_are_distinct() {
        let fps: Vec<_> = Layer::ALL.iter().map(|l| l.fingerprint()).collect();
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
