use crate::Layer;
use silc_geom::{Path, Polygon, Rect, Transform};
use std::fmt;

/// A mask shape: rectangle, polygon, or wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// An axis-aligned box — the overwhelmingly common case.
    Rect(Rect),
    /// An arbitrary simple polygon.
    Polygon(Polygon),
    /// A wire: centre line swept by a square pen (CIF `W`).
    Wire(Path),
}

impl Shape {
    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        match self {
            Shape::Rect(r) => *r,
            Shape::Polygon(p) => p.bbox(),
            Shape::Wire(w) => w.bbox(),
        }
    }

    /// Maps the shape through a placement transform.
    pub fn transform(&self, t: Transform) -> Shape {
        match self {
            Shape::Rect(r) => Shape::Rect(t.apply_rect(*r)),
            Shape::Polygon(p) => Shape::Polygon(p.transform(t)),
            Shape::Wire(w) => Shape::Wire(w.transform(t)),
        }
    }

    /// Decomposes the shape into rectangles covering exactly the same mask
    /// area where possible:
    ///
    /// * a rect maps to itself;
    /// * a Manhattan wire maps to one rect per segment;
    /// * a **rectilinear** polygon is sliced into horizontal trapezoids
    ///   (exact);
    /// * a non-rectilinear polygon or diagonal wire is approximated by its
    ///   bounding box (such artwork is rare and flagged by
    ///   [`Shape::is_exactly_rectangular`]).
    pub fn to_rects(&self) -> Vec<Rect> {
        match self {
            Shape::Rect(r) => vec![*r],
            Shape::Wire(w) if w.is_manhattan() => w.to_rects(),
            Shape::Wire(w) => vec![w.bbox()],
            Shape::Polygon(p) if p.is_rectilinear() => rectilinear_decompose(p),
            Shape::Polygon(p) => vec![p.bbox()],
        }
    }

    /// True when [`Shape::to_rects`] is exact (no bounding-box
    /// approximation).
    pub fn is_exactly_rectangular(&self) -> bool {
        match self {
            Shape::Rect(_) => true,
            Shape::Wire(w) => w.is_manhattan(),
            Shape::Polygon(p) => p.is_rectilinear(),
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Rect(r) => write!(f, "{r}"),
            Shape::Polygon(p) => write!(f, "{p}"),
            Shape::Wire(w) => write!(f, "{w}"),
        }
    }
}

impl From<Rect> for Shape {
    fn from(r: Rect) -> Shape {
        Shape::Rect(r)
    }
}

impl From<Polygon> for Shape {
    fn from(p: Polygon) -> Shape {
        Shape::Polygon(p)
    }
}

impl From<Path> for Shape {
    fn from(w: Path) -> Shape {
        Shape::Wire(w)
    }
}

/// A layer-tagged shape: one piece of mask artwork.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Mask layer the shape is drawn on.
    pub layer: Layer,
    /// The geometry.
    pub shape: Shape,
}

impl Element {
    /// Creates an element from any shape-convertible geometry.
    pub fn new(layer: Layer, shape: impl Into<Shape>) -> Element {
        Element {
            layer,
            shape: shape.into(),
        }
    }

    /// Convenience constructor for the common box case.
    pub fn rect(layer: Layer, r: Rect) -> Element {
        Element {
            layer,
            shape: Shape::Rect(r),
        }
    }

    /// Bounding box of the artwork.
    pub fn bbox(&self) -> Rect {
        self.shape.bbox()
    }

    /// The element mapped through a placement transform.
    pub fn transform(&self, t: Transform) -> Element {
        Element {
            layer: self.layer,
            shape: self.shape.transform(t),
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.layer, self.shape)
    }
}

/// Slices a rectilinear polygon into disjoint rectangles by horizontal
/// bands: for each band between consecutive distinct vertex y-coordinates,
/// collect the x-intervals where the polygon interior covers the band.
fn rectilinear_decompose(poly: &Polygon) -> Vec<Rect> {
    use silc_geom::Point;
    let verts = poly.vertices();
    let n = verts.len();
    let mut ys: Vec<i64> = verts.iter().map(|v| v.y).collect();
    ys.sort_unstable();
    ys.dedup();

    let mut rects = Vec::new();
    for band in ys.windows(2) {
        let (y0, y1) = (band[0], band[1]);
        // Find vertical edges spanning this band; sort their x.
        let mut xs: Vec<i64> = Vec::new();
        for i in 0..n {
            let a = verts[i];
            let b = verts[(i + 1) % n];
            if a.x == b.x {
                let (lo, hi) = (a.y.min(b.y), a.y.max(b.y));
                if lo <= y0 && y1 <= hi {
                    xs.push(a.x);
                }
            }
        }
        xs.sort_unstable();
        // Alternating fill: pairs of crossings bound interior spans.
        for pair in xs.chunks(2) {
            if pair.len() == 2 && pair[0] < pair[1] {
                rects.push(
                    Rect::new(Point::new(pair[0], y0), Point::new(pair[1], y1))
                        .expect("band with distinct bounds is non-empty"),
                );
            }
        }
    }
    rects
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::{Orientation, Point};

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn rect_shape_roundtrip() {
        let r = Rect::from_origin_size(p(0, 0), 4, 2).unwrap();
        let s: Shape = r.into();
        assert_eq!(s.bbox(), r);
        assert_eq!(s.to_rects(), vec![r]);
        assert!(s.is_exactly_rectangular());
    }

    #[test]
    fn wire_decomposition() {
        let w = Path::new(2, vec![p(0, 0), p(10, 0)]).unwrap();
        let s: Shape = w.into();
        assert_eq!(s.to_rects().len(), 1);
        assert!(s.is_exactly_rectangular());
    }

    #[test]
    fn diagonal_wire_approximated() {
        let w = Path::new(2, vec![p(0, 0), p(5, 5)]).unwrap();
        let s: Shape = w.into();
        assert!(!s.is_exactly_rectangular());
        assert_eq!(s.to_rects(), vec![s.bbox()]);
    }

    #[test]
    fn l_polygon_decomposes_exactly() {
        // L shape: area 4*2 + 2*4 = 16.
        let l = Polygon::new(vec![p(0, 0), p(4, 0), p(4, 2), p(2, 2), p(2, 6), p(0, 6)]).unwrap();
        let s: Shape = l.clone().into();
        let rects = s.to_rects();
        let total: i64 = rects.iter().map(|r| r.area()).sum();
        assert_eq!(total * 2, l.double_area());
        // Disjoint.
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.overlaps(*b), "{a} overlaps {b}");
            }
        }
        // Every rect lies inside the polygon (check centres).
        for r in &rects {
            assert!(l.contains_point(r.center()));
        }
    }

    #[test]
    fn u_polygon_decomposes_exactly() {
        // U shape with two prongs: tests bands with multiple spans.
        let u = Polygon::new(vec![
            p(0, 0),
            p(6, 0),
            p(6, 6),
            p(4, 6),
            p(4, 2),
            p(2, 2),
            p(2, 6),
            p(0, 6),
        ])
        .unwrap();
        let rects = Shape::from(u.clone()).to_rects();
        let total: i64 = rects.iter().map(|r| r.area()).sum();
        assert_eq!(total * 2, u.double_area());
        // Some band must produce two spans.
        assert!(rects.len() >= 3);
    }

    #[test]
    fn triangle_approximated_by_bbox() {
        let t = Polygon::new(vec![p(0, 0), p(4, 0), p(0, 4)]).unwrap();
        let s: Shape = t.into();
        assert!(!s.is_exactly_rectangular());
        assert_eq!(s.to_rects().len(), 1);
    }

    #[test]
    fn element_transform_moves_bbox() {
        let e = Element::rect(Layer::Poly, Rect::from_origin_size(p(0, 0), 2, 6).unwrap());
        let t = Transform::new(Orientation::R90, p(10, 0));
        let moved = e.transform(t);
        assert_eq!(moved.layer, Layer::Poly);
        assert_eq!(moved.bbox().width(), 6);
        assert_eq!(moved.bbox().height(), 2);
    }

    #[test]
    fn display_forms() {
        let e = Element::rect(Layer::Metal, Rect::from_origin_size(p(0, 0), 1, 1).unwrap());
        assert_eq!(e.to_string(), "metal [(0, 0) .. (1, 1)]");
    }
}
