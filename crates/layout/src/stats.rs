use crate::{flatten, CellId, Layer, LayoutError, Library};
use silc_geom::{Coord, Rect};

/// Exact area of the union of a set of rectangles (overlaps counted once),
/// by plane sweep with coordinate compression.
///
/// This is how mask-level area is measured: generators routinely overlap
/// rectangles (wire joints, contact surrounds) and double-counting would
/// distort every area experiment.
///
/// # Example
///
/// ```
/// use silc_layout::union_area;
/// use silc_geom::{Point, Rect};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Rect::new(Point::new(0, 0), Point::new(4, 4))?;
/// let b = Rect::new(Point::new(2, 2), Point::new(6, 6))?;
/// assert_eq!(union_area(&[a, b]), 16 + 16 - 4);
/// # Ok(())
/// # }
/// ```
pub fn union_area(rects: &[Rect]) -> Coord {
    if rects.is_empty() {
        return 0;
    }
    // Events: at x = left, +1 over [bottom, top); at x = right, -1.
    let mut ys: Vec<Coord> = Vec::with_capacity(rects.len() * 2);
    for r in rects {
        ys.push(r.bottom());
        ys.push(r.top());
    }
    ys.sort_unstable();
    ys.dedup();

    #[derive(Clone, Copy)]
    struct Event {
        x: Coord,
        y0: usize,
        y1: usize,
        delta: i32,
    }
    let yindex = |y: Coord| ys.binary_search(&y).expect("y was inserted");
    let mut events: Vec<Event> = Vec::with_capacity(rects.len() * 2);
    for r in rects {
        let y0 = yindex(r.bottom());
        let y1 = yindex(r.top());
        events.push(Event {
            x: r.left(),
            y0,
            y1,
            delta: 1,
        });
        events.push(Event {
            x: r.right(),
            y0,
            y1,
            delta: -1,
        });
    }
    events.sort_by_key(|e| e.x);

    // coverage[i] counts rectangles covering band ys[i]..ys[i+1].
    let mut coverage = vec![0i32; ys.len().saturating_sub(1)];
    let covered_length = |cov: &[i32]| -> Coord {
        cov.iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| ys[i + 1] - ys[i])
            .sum()
    };

    let mut area: Coord = 0;
    let mut prev_x = events[0].x;
    let mut i = 0;
    while i < events.len() {
        let x = events[i].x;
        area += covered_length(&coverage) * (x - prev_x);
        while i < events.len() && events[i].x == x {
            let e = events[i];
            for cov in coverage.iter_mut().take(e.y1).skip(e.y0) {
                *cov += e.delta;
            }
            i += 1;
        }
        prev_x = x;
    }
    area
}

/// Union area of a single layer of a flattened design.
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCell`] if `root` is not in the library.
pub fn layer_area(lib: &Library, root: CellId, layer: Layer) -> Result<Coord, LayoutError> {
    let layers = crate::flatten_to_rects(lib, root)?;
    Ok(union_area(&layers[layer.index()]))
}

/// Summary statistics for a cell hierarchy — the measurements experiments
/// E2/E3/E6 report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStats {
    /// Name of the root cell.
    pub name: String,
    /// Artwork elements in the root's *definition* (pre-expansion).
    pub local_elements: usize,
    /// Artwork elements after full expansion.
    pub flat_elements: usize,
    /// Bounding box of the expanded design (None for an empty cell).
    pub bbox: Option<Rect>,
    /// Union area per layer, indexed by [`Layer::index`].
    pub area_by_layer: Vec<Coord>,
}

impl CellStats {
    /// Computes statistics for `root`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::UnknownCell`] if `root` is not in the
    /// library.
    pub fn compute(lib: &Library, root: CellId) -> Result<CellStats, LayoutError> {
        let cell = lib
            .cell(root)
            .ok_or(LayoutError::UnknownCell { id: root })?;
        let flat = flatten(lib, root)?;
        let bbox = flat
            .iter()
            .map(|f| f.element.bbox())
            .reduce(|a, b| a.union(b));
        let mut per_layer: Vec<Vec<Rect>> = vec![Vec::new(); Layer::ALL.len()];
        for fe in &flat {
            per_layer[fe.element.layer.index()].extend(fe.element.shape.to_rects());
        }
        Ok(CellStats {
            name: cell.name().to_string(),
            local_elements: cell.elements().len(),
            flat_elements: flat.len(),
            bbox,
            area_by_layer: per_layer.iter().map(|v| union_area(v)).collect(),
        })
    }

    /// Total conducting-layer area (diff + poly + metal).
    pub fn conducting_area(&self) -> Coord {
        Layer::ALL
            .iter()
            .filter(|l| l.is_conducting())
            .map(|l| self.area_by_layer[l.index()])
            .sum()
    }

    /// Die area: bounding-box area, 0 for an empty design.
    pub fn die_area(&self) -> Coord {
        self.bbox.map_or(0, |b| b.area())
    }

    /// The leverage ratio measured in experiment E2: expanded artwork per
    /// item of source description. Returns `None` for an empty definition.
    pub fn expansion_ratio(&self) -> Option<f64> {
        if self.flat_elements == 0 {
            None
        } else {
            Some(self.flat_elements as f64 / self.local_elements.max(1) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cell, Element, Instance};
    use proptest::prelude::*;
    use silc_geom::{Point, Transform};

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::new(x, y), w, h).unwrap()
    }

    #[test]
    fn union_of_disjoint_adds() {
        assert_eq!(union_area(&[rect(0, 0, 2, 2), rect(10, 10, 3, 3)]), 4 + 9);
    }

    #[test]
    fn union_of_identical_counts_once() {
        assert_eq!(union_area(&[rect(0, 0, 5, 5), rect(0, 0, 5, 5)]), 25);
    }

    #[test]
    fn union_of_overlapping() {
        assert_eq!(union_area(&[rect(0, 0, 4, 4), rect(2, 2, 4, 4)]), 28);
    }

    #[test]
    fn union_of_nested() {
        assert_eq!(union_area(&[rect(0, 0, 10, 10), rect(3, 3, 2, 2)]), 100);
    }

    #[test]
    fn union_empty() {
        assert_eq!(union_area(&[]), 0);
    }

    #[test]
    fn union_cross_shape() {
        // Plus sign: horizontal 10x2 and vertical 2x10 crossing at centre.
        let h = rect(-5, -1, 10, 2);
        let v = rect(-1, -5, 2, 10);
        assert_eq!(union_area(&[h, v]), 20 + 20 - 4);
    }

    #[test]
    fn stats_of_array() {
        let mut lib = Library::new();
        let mut bit = Cell::new("bit");
        bit.push_element(Element::rect(Layer::Metal, rect(0, 0, 3, 3)));
        let bit_id = lib.add_cell(bit).unwrap();
        let mut word = Cell::new("word");
        word.push_instance(Instance::array(bit_id, Transform::IDENTITY, 8, 1, 4, 0).unwrap());
        let word_id = lib.add_cell(word).unwrap();

        let stats = CellStats::compute(&lib, word_id).unwrap();
        assert_eq!(stats.local_elements, 0);
        assert_eq!(stats.flat_elements, 8);
        // 3-wide boxes on a 4 pitch: disjoint, 8 * 9 = 72.
        assert_eq!(stats.area_by_layer[Layer::Metal.index()], 72);
        assert_eq!(stats.conducting_area(), 72);
        assert_eq!(stats.bbox.unwrap(), rect(0, 0, 4 * 7 + 3, 3));
        assert!(stats.expansion_ratio().unwrap() >= 8.0);
    }

    #[test]
    fn stats_of_empty_cell() {
        let mut lib = Library::new();
        let id = lib.add_cell(Cell::new("void")).unwrap();
        let stats = CellStats::compute(&lib, id).unwrap();
        assert_eq!(stats.bbox, None);
        assert_eq!(stats.die_area(), 0);
        assert_eq!(stats.expansion_ratio(), None);
    }

    /// Brute-force union area on a small grid for cross-checking.
    fn naive_union_area(rects: &[Rect]) -> i64 {
        let mut count = 0;
        for x in -20..60i64 {
            for y in -20..60i64 {
                let cell = rect(x, y, 1, 1);
                if rects.iter().any(|r| r.contains_rect(cell)) {
                    count += 1;
                }
            }
        }
        count
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn sweep_matches_naive(specs in prop::collection::vec((0i64..30, 0i64..30, 1i64..12, 1i64..12), 1..12)) {
            let rects: Vec<_> = specs.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
            prop_assert_eq!(union_area(&rects), naive_union_area(&rects));
        }

        #[test]
        fn union_bounded_by_sum_and_bbox(specs in prop::collection::vec((0i64..30, 0i64..30, 1i64..12, 1i64..12), 1..12)) {
            let rects: Vec<_> = specs.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
            let u = union_area(&rects);
            let sum: i64 = rects.iter().map(|r| r.area()).sum();
            let bbox = rects.iter().copied().reduce(|a, b| a.union(b)).unwrap();
            prop_assert!(u <= sum);
            prop_assert!(u <= bbox.area());
            prop_assert!(u >= rects.iter().map(|r| r.area()).max().unwrap());
        }
    }
}
