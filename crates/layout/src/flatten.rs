use crate::{CellId, Element, Layer, LayoutError, Library};
use silc_geom::{Rect, Transform};

/// One piece of artwork after flattening: the element in root coordinates,
/// plus the id of the leaf cell it came from (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatElement {
    /// The transformed artwork.
    pub element: Element,
    /// The cell whose definition contained the artwork.
    pub source: CellId,
}

/// Flattens the hierarchy under `root` into a list of elements in root
/// coordinates, expanding instance arrays.
///
/// Because the library is a DAG by construction, flattening always
/// terminates; cost is proportional to the *expanded* size of the design,
/// which is exactly the leverage hierarchical description buys (experiment
/// E2 measures this ratio).
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCell`] if `root` is not in the library.
///
/// # Example
///
/// ```
/// use silc_layout::{flatten, Cell, Element, Instance, Layer, Library};
/// use silc_geom::{Point, Rect, Transform};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lib = Library::new();
/// let mut bit = Cell::new("bit");
/// bit.push_element(Element::rect(Layer::Metal, Rect::new(Point::new(0,0), Point::new(3,3))?));
/// let bit_id = lib.add_cell(bit)?;
/// let mut word = Cell::new("word");
/// word.push_instance(Instance::array(bit_id, Transform::IDENTITY, 8, 1, 4, 0)?);
/// let word_id = lib.add_cell(word)?;
/// assert_eq!(flatten(&lib, word_id)?.len(), 8);
/// # Ok(())
/// # }
/// ```
pub fn flatten(lib: &Library, root: CellId) -> Result<Vec<FlatElement>, LayoutError> {
    if lib.cell(root).is_none() {
        return Err(LayoutError::UnknownCell { id: root });
    }
    let mut out = Vec::new();
    flatten_into(lib, root, Transform::IDENTITY, &mut out);
    Ok(out)
}

fn flatten_into(lib: &Library, id: CellId, t: Transform, out: &mut Vec<FlatElement>) {
    let cell = lib.cell(id).expect("validated by caller");
    for e in cell.elements() {
        out.push(FlatElement {
            element: e.transform(t),
            source: id,
        });
    }
    for inst in cell.instances() {
        for placement in inst.placements() {
            flatten_into(lib, inst.cell, t.then(placement), out);
        }
    }
}

/// Flattens and decomposes every element into per-layer rectangles — the
/// form the design-rule checker and extractor consume.
///
/// Returns a vector indexed by [`Layer::index`], each entry holding that
/// layer's rectangles in root coordinates.
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCell`] if `root` is not in the library.
pub fn flatten_to_rects(lib: &Library, root: CellId) -> Result<Vec<Vec<Rect>>, LayoutError> {
    let flat = flatten(lib, root)?;
    let mut layers: Vec<Vec<Rect>> = vec![Vec::new(); Layer::ALL.len()];
    for fe in &flat {
        let idx = fe.element.layer.index();
        layers[idx].extend(fe.element.shape.to_rects());
    }
    Ok(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cell, Instance};
    use silc_geom::{Orientation, Point};

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::new(x, y), w, h).unwrap()
    }

    fn lib_with_bit() -> (Library, CellId) {
        let mut lib = Library::new();
        let mut bit = Cell::new("bit");
        bit.push_element(Element::rect(Layer::Metal, rect(0, 0, 3, 3)));
        let id = lib.add_cell(bit).unwrap();
        (lib, id)
    }

    #[test]
    fn flatten_leaf_is_identity() {
        let (lib, bit) = lib_with_bit();
        let flat = flatten(&lib, bit).unwrap();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].element.bbox(), rect(0, 0, 3, 3));
        assert_eq!(flat[0].source, bit);
    }

    #[test]
    fn flatten_expands_arrays() {
        let (mut lib, bit) = lib_with_bit();
        let mut word = Cell::new("word");
        word.push_instance(Instance::array(bit, Transform::IDENTITY, 4, 2, 10, 20).unwrap());
        let word_id = lib.add_cell(word).unwrap();
        let flat = flatten(&lib, word_id).unwrap();
        assert_eq!(flat.len(), 8);
        // Last copy sits at (30, 20).
        let bboxes: Vec<_> = flat.iter().map(|f| f.element.bbox()).collect();
        assert!(bboxes.contains(&rect(30, 20, 3, 3)));
    }

    #[test]
    fn nested_transforms_compose() {
        let (mut lib, bit) = lib_with_bit();
        let mut mid = Cell::new("mid");
        mid.push_instance(Instance::place(
            bit,
            Transform::new(Orientation::R90, Point::new(10, 0)),
        ));
        let mid_id = lib.add_cell(mid).unwrap();
        let mut top = Cell::new("top");
        top.push_instance(Instance::place(
            mid_id,
            Transform::new(Orientation::R90, Point::new(0, 100)),
        ));
        let top_id = lib.add_cell(top).unwrap();
        let flat = flatten(&lib, top_id).unwrap();
        assert_eq!(flat.len(), 1);
        // Composition: R90 then R90 is R180; bit (0..3, 0..3) under
        // mid-transform lands at (7..10, 0..3); under top R90+(0,100) that
        // maps to x in (-3..0), y in (107..110).
        assert_eq!(flat[0].element.bbox(), rect(-3, 107, 3, 3));
    }

    #[test]
    fn unknown_root_rejected() {
        let lib = Library::new();
        assert!(flatten(&lib, CellId::from_raw(0)).is_err());
    }

    #[test]
    fn rects_bucketed_by_layer() {
        let (mut lib, bit) = lib_with_bit();
        let mut top = Cell::new("top");
        top.push_element(Element::rect(Layer::Poly, rect(50, 0, 2, 2)));
        top.push_instance(Instance::array(bit, Transform::IDENTITY, 3, 1, 5, 0).unwrap());
        let top_id = lib.add_cell(top).unwrap();
        let layers = flatten_to_rects(&lib, top_id).unwrap();
        assert_eq!(layers[Layer::Metal.index()].len(), 3);
        assert_eq!(layers[Layer::Poly.index()].len(), 1);
        assert!(layers[Layer::Contact.index()].is_empty());
    }

    #[test]
    fn diamond_sharing_expands_twice() {
        // top instantiates mid twice; mid instantiates bit once: 2 copies.
        let (mut lib, bit) = lib_with_bit();
        let mut mid = Cell::new("mid");
        mid.push_instance(Instance::place(bit, Transform::IDENTITY));
        let mid_id = lib.add_cell(mid).unwrap();
        let mut top = Cell::new("top");
        top.push_instance(Instance::place(mid_id, Transform::IDENTITY));
        top.push_instance(Instance::place(
            mid_id,
            Transform::translate(Point::new(100, 0)),
        ));
        let top_id = lib.add_cell(top).unwrap();
        assert_eq!(flatten(&lib, top_id).unwrap().len(), 2);
    }
}
