use crate::{Cell, Instance, LayoutError};
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a [`Cell`] stored in a [`Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(u32);

impl CellId {
    /// Builds an id from its raw index. Only useful in tests and
    /// serialization code; ordinary code receives ids from
    /// [`Library::add_cell`].
    pub const fn from_raw(raw: u32) -> CellId {
        CellId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// An arena of cells forming a design hierarchy (a DAG).
///
/// The library owns all cells; instances refer to cells by [`CellId`].
/// Structural invariants maintained:
///
/// * cell names are unique ([`LayoutError::DuplicateCellName`]);
/// * every instance refers to an existing cell
///   ([`LayoutError::UnknownCell`]);
/// * the instance graph is acyclic ([`LayoutError::RecursiveInstance`]).
#[derive(Debug, Clone, Default)]
pub struct Library {
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
}

impl Library {
    /// Creates an empty library.
    pub fn new() -> Library {
        Library::default()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells have been added.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Adds a cell, validating its name and any instances it already
    /// carries.
    ///
    /// # Errors
    ///
    /// * [`LayoutError::DuplicateCellName`] if the name is taken.
    /// * [`LayoutError::UnknownCell`] if an instance refers outside the
    ///   library (a fresh cell can only instantiate cells added before it,
    ///   which also guarantees acyclicity).
    pub fn add_cell(&mut self, cell: Cell) -> Result<CellId, LayoutError> {
        if self.by_name.contains_key(cell.name()) {
            return Err(LayoutError::DuplicateCellName {
                name: cell.name().to_string(),
            });
        }
        for inst in cell.instances() {
            if inst.cell.raw() as usize >= self.cells.len() {
                return Err(LayoutError::UnknownCell { id: inst.cell });
            }
        }
        let id = CellId(self.cells.len() as u32);
        self.by_name.insert(cell.name().to_string(), id);
        self.cells.push(cell);
        Ok(id)
    }

    /// Looks up a cell by id.
    pub fn cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.get(id.raw() as usize)
    }

    /// Looks up a cell id by name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Adds an instance to an existing cell, re-validating the DAG
    /// property (needed because, unlike [`Library::add_cell`], this can
    /// point "forward" to cells added later).
    ///
    /// # Errors
    ///
    /// * [`LayoutError::UnknownCell`] for a dangling parent or child.
    /// * [`LayoutError::RecursiveInstance`] if the child (transitively)
    ///   instantiates the parent.
    pub fn add_instance(&mut self, parent: CellId, inst: Instance) -> Result<(), LayoutError> {
        if self.cell(parent).is_none() {
            return Err(LayoutError::UnknownCell { id: parent });
        }
        if self.cell(inst.cell).is_none() {
            return Err(LayoutError::UnknownCell { id: inst.cell });
        }
        if inst.cell == parent || self.reaches(inst.cell, parent) {
            return Err(LayoutError::RecursiveInstance {
                parent,
                child: inst.cell,
            });
        }
        self.cells[parent.raw() as usize].push_instance(inst);
        Ok(())
    }

    /// True when `from` transitively instantiates `target`.
    fn reaches(&self, from: CellId, target: CellId) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; self.cells.len()];
        while let Some(id) = stack.pop() {
            if id == target {
                return true;
            }
            let idx = id.raw() as usize;
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            for inst in self.cells[idx].instances() {
                stack.push(inst.cell);
            }
        }
        false
    }

    /// Iterates over `(id, cell)` pairs in insertion order — which is a
    /// valid bottom-up (children-before-parents) order for cells built via
    /// [`Library::add_cell`] alone. When [`Library::add_instance`] has
    /// introduced forward references, use [`Library::topological_order`].
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Returns all cell ids in children-before-parents order.
    pub fn topological_order(&self) -> Vec<CellId> {
        let n = self.cells.len();
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in progress, 2 done
        for start in 0..n {
            self.topo_visit(start, &mut state, &mut order);
        }
        order
    }

    fn topo_visit(&self, idx: usize, state: &mut [u8], order: &mut Vec<CellId>) {
        if state[idx] != 0 {
            return;
        }
        state[idx] = 1;
        for inst in self.cells[idx].instances() {
            self.topo_visit(inst.cell.raw() as usize, state, order);
        }
        state[idx] = 2;
        order.push(CellId(idx as u32));
    }

    /// Imports every cell of `other` into this library, returning the id
    /// each of `other`'s cells received here (indexable by the old id's
    /// raw value). Name collisions are resolved by appending `$imp<n>`.
    ///
    /// This is how generator output (a PLA, a ROM) is composed into a
    /// SIL-compiled design: build in separate libraries, import, place.
    pub fn import(&mut self, other: &Library) -> Vec<CellId> {
        let order = other.topological_order();
        let mut mapping: Vec<Option<CellId>> = vec![None; other.len()];
        for id in order {
            let cell = other.cell(id).expect("topological ids are valid");
            let mut name = cell.name().to_string();
            let mut n = 0;
            while self.by_name.contains_key(&name) {
                n += 1;
                name = format!("{}$imp{n}", cell.name());
            }
            let mut copy = Cell::new(name);
            for e in cell.elements() {
                copy.push_element(e.clone());
            }
            for p in cell.ports() {
                copy.push_port(p.clone());
            }
            for inst in cell.instances() {
                let child = mapping[inst.cell.raw() as usize]
                    .expect("children precede parents in topological order");
                let mut remapped = inst.clone();
                remapped.cell = child;
                copy.push_instance(remapped);
            }
            let new_id = self
                .add_cell(copy)
                .expect("name uniquified and children already present");
            mapping[id.raw() as usize] = Some(new_id);
        }
        mapping
            .into_iter()
            .map(|m| m.expect("all visited"))
            .collect()
    }

    /// Cells that no other cell instantiates (design roots).
    pub fn roots(&self) -> Vec<CellId> {
        let mut referenced = vec![false; self.cells.len()];
        for cell in &self.cells {
            for inst in cell.instances() {
                referenced[inst.cell.raw() as usize] = true;
            }
        }
        referenced
            .iter()
            .enumerate()
            .filter(|&(_, &r)| !r)
            .map(|(i, _)| CellId(i as u32))
            .collect()
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "library ({} cells)", self.cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Element, Layer};
    use silc_geom::{Point, Rect, Transform};

    fn leaf(name: &str) -> Cell {
        let mut c = Cell::new(name);
        c.push_element(Element::rect(
            Layer::Poly,
            Rect::from_origin_size(Point::new(0, 0), 2, 2).unwrap(),
        ));
        c
    }

    #[test]
    fn add_and_lookup() {
        let mut lib = Library::new();
        let a = lib.add_cell(leaf("a")).unwrap();
        assert_eq!(lib.cell_by_name("a"), Some(a));
        assert_eq!(lib.cell(a).unwrap().name(), "a");
        assert!(lib.cell_by_name("b").is_none());
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut lib = Library::new();
        lib.add_cell(leaf("a")).unwrap();
        assert!(matches!(
            lib.add_cell(leaf("a")),
            Err(LayoutError::DuplicateCellName { .. })
        ));
    }

    #[test]
    fn forward_reference_in_new_cell_rejected() {
        let mut lib = Library::new();
        let mut c = Cell::new("parent");
        c.push_instance(Instance::place(CellId::from_raw(7), Transform::IDENTITY));
        assert!(matches!(
            lib.add_cell(c),
            Err(LayoutError::UnknownCell { .. })
        ));
    }

    #[test]
    fn cycles_rejected() {
        let mut lib = Library::new();
        let a = lib.add_cell(leaf("a")).unwrap();
        let b = lib.add_cell(leaf("b")).unwrap();
        lib.add_instance(a, Instance::place(b, Transform::IDENTITY))
            .unwrap();
        // b -> a would close the loop a -> b -> a.
        assert!(matches!(
            lib.add_instance(b, Instance::place(a, Transform::IDENTITY)),
            Err(LayoutError::RecursiveInstance { .. })
        ));
        // Self-instantiation is also a cycle.
        assert!(matches!(
            lib.add_instance(a, Instance::place(a, Transform::IDENTITY)),
            Err(LayoutError::RecursiveInstance { .. })
        ));
    }

    #[test]
    fn deep_cycle_rejected() {
        let mut lib = Library::new();
        let ids: Vec<_> = (0..5)
            .map(|i| lib.add_cell(leaf(&format!("c{i}"))).unwrap())
            .collect();
        for w in ids.windows(2) {
            lib.add_instance(w[0], Instance::place(w[1], Transform::IDENTITY))
                .unwrap();
        }
        // c4 -> c0 closes a length-5 loop.
        assert!(lib
            .add_instance(ids[4], Instance::place(ids[0], Transform::IDENTITY))
            .is_err());
    }

    #[test]
    fn topological_order_is_children_first() {
        let mut lib = Library::new();
        let a = lib.add_cell(leaf("a")).unwrap();
        let b = lib.add_cell(leaf("b")).unwrap();
        let top = lib.add_cell(leaf("top")).unwrap();
        lib.add_instance(top, Instance::place(a, Transform::IDENTITY))
            .unwrap();
        lib.add_instance(a, Instance::place(b, Transform::IDENTITY))
            .unwrap();
        let order = lib.topological_order();
        let pos = |id: CellId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(b) < pos(a));
        assert!(pos(a) < pos(top));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn roots_found() {
        let mut lib = Library::new();
        let a = lib.add_cell(leaf("a")).unwrap();
        let top = lib.add_cell(leaf("top")).unwrap();
        lib.add_instance(top, Instance::place(a, Transform::IDENTITY))
            .unwrap();
        assert_eq!(lib.roots(), vec![top]);
    }

    #[test]
    fn import_remaps_hierarchy_and_names() {
        let mut a = Library::new();
        let leaf_a = a.add_cell(leaf("bit")).unwrap();
        let mut row = leaf("row");
        row.push_instance(Instance::place(leaf_a, Transform::IDENTITY));
        let row_a = a.add_cell(row).unwrap();

        let mut b = Library::new();
        b.add_cell(leaf("bit")).unwrap(); // collision with the import
        let mapping = b.import(&a);

        // Hierarchy preserved under new ids.
        let new_row = mapping[row_a.raw() as usize];
        let row_cell = b.cell(new_row).unwrap();
        assert_eq!(row_cell.instances().len(), 1);
        assert_eq!(row_cell.instances()[0].cell, mapping[leaf_a.raw() as usize]);
        // Collision renamed.
        assert!(b.cell_by_name("bit$imp1").is_some());
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn import_into_empty_library_is_identity_shaped() {
        let mut a = Library::new();
        let x = a.add_cell(leaf("x")).unwrap();
        let mut b = Library::new();
        let mapping = b.import(&a);
        assert_eq!(b.cell(mapping[x.raw() as usize]).unwrap().name(), "x");
    }

    #[test]
    fn iter_yields_all() {
        let mut lib = Library::new();
        lib.add_cell(leaf("a")).unwrap();
        lib.add_cell(leaf("b")).unwrap();
        let names: Vec<_> = lib.iter().map(|(_, c)| c.name().to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
