use std::fmt;
use std::str::FromStr;

/// A mask layer of the Mead–Conway nMOS process.
///
/// The layer set — and the two-letter CIF names — are those of the process
/// used throughout *Introduction to VLSI Systems* and the Caltech
/// Intermediate Form of the paper's reference \[8\].
///
/// | Layer | CIF | Purpose |
/// |---|---|---|
/// | `Diffusion` | `ND` | n⁺ diffusion: transistor sources/drains, short wires |
/// | `Poly` | `NP` | polysilicon: gates and wiring |
/// | `Metal` | `NM` | metal: low-resistance wiring, power |
/// | `Contact` | `NC` | contact cuts between layers |
/// | `Implant` | `NI` | depletion implant: marks depletion-mode pullups |
/// | `Buried` | `NB` | buried contact: poly–diffusion connection |
/// | `Glass` | `NG` | overglass openings for bonding pads |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// n⁺ diffusion (`ND`).
    Diffusion,
    /// Polysilicon (`NP`).
    Poly,
    /// Metal (`NM`).
    Metal,
    /// Contact cut (`NC`).
    Contact,
    /// Depletion implant (`NI`).
    Implant,
    /// Buried contact (`NB`).
    Buried,
    /// Overglass opening (`NG`).
    Glass,
}

impl Layer {
    /// All layers in mask order.
    pub const ALL: [Layer; 7] = [
        Layer::Diffusion,
        Layer::Poly,
        Layer::Metal,
        Layer::Contact,
        Layer::Implant,
        Layer::Buried,
        Layer::Glass,
    ];

    /// The CIF layer name used in `L` commands.
    pub const fn cif_name(self) -> &'static str {
        match self {
            Layer::Diffusion => "ND",
            Layer::Poly => "NP",
            Layer::Metal => "NM",
            Layer::Contact => "NC",
            Layer::Implant => "NI",
            Layer::Buried => "NB",
            Layer::Glass => "NG",
        }
    }

    /// True for layers that carry signals (participate in connectivity):
    /// diffusion, poly and metal. Contacts join conducting layers but are
    /// not themselves routing layers; implant and glass are modifiers.
    pub const fn is_conducting(self) -> bool {
        matches!(self, Layer::Diffusion | Layer::Poly | Layer::Metal)
    }

    /// A stable small index, useful for per-layer tables.
    pub const fn index(self) -> usize {
        match self {
            Layer::Diffusion => 0,
            Layer::Poly => 1,
            Layer::Metal => 2,
            Layer::Contact => 3,
            Layer::Implant => 4,
            Layer::Buried => 5,
            Layer::Glass => 6,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Layer::Diffusion => "diff",
            Layer::Poly => "poly",
            Layer::Metal => "metal",
            Layer::Contact => "contact",
            Layer::Implant => "implant",
            Layer::Buried => "buried",
            Layer::Glass => "glass",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing a layer name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayerError {
    name: String,
}

impl fmt::Display for ParseLayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown layer name `{}`", self.name)
    }
}

impl std::error::Error for ParseLayerError {}

impl FromStr for Layer {
    type Err = ParseLayerError;

    /// Accepts both the human name (`diff`, `poly`, ...) and the CIF name
    /// (`ND`, `NP`, ...), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let layer = match lower.as_str() {
            "diff" | "diffusion" | "nd" => Layer::Diffusion,
            "poly" | "np" => Layer::Poly,
            "metal" | "nm" => Layer::Metal,
            "contact" | "cut" | "nc" => Layer::Contact,
            "implant" | "ni" => Layer::Implant,
            "buried" | "nb" => Layer::Buried,
            "glass" | "ng" => Layer::Glass,
            _ => {
                return Err(ParseLayerError {
                    name: s.to_string(),
                })
            }
        };
        Ok(layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cif_names_are_unique() {
        let mut names: Vec<_> = Layer::ALL.iter().map(|l| l.cif_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Layer::ALL.len());
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut idx: Vec<_> = Layer::ALL.iter().map(|l| l.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..Layer::ALL.len()).collect::<Vec<_>>());
    }

    #[test]
    fn parse_roundtrips_both_name_forms() {
        for layer in Layer::ALL {
            assert_eq!(layer.cif_name().parse::<Layer>().unwrap(), layer);
            assert_eq!(layer.to_string().parse::<Layer>().unwrap(), layer);
            // Case-insensitive.
            assert_eq!(
                layer.cif_name().to_lowercase().parse::<Layer>().unwrap(),
                layer
            );
        }
    }

    #[test]
    fn unknown_layer_rejected() {
        let err = "metal2".parse::<Layer>().unwrap_err();
        assert!(err.to_string().contains("metal2"));
    }

    #[test]
    fn conducting_layers() {
        assert!(Layer::Diffusion.is_conducting());
        assert!(Layer::Poly.is_conducting());
        assert!(Layer::Metal.is_conducting());
        assert!(!Layer::Contact.is_conducting());
        assert!(!Layer::Implant.is_conducting());
        assert!(!Layer::Glass.is_conducting());
    }
}
