use crate::{Coord, GeomError, Point, Rect, Transform};
use std::fmt;

/// A wire: a centre-line point sequence swept with a square pen of a given
/// width (the semantics of the CIF `W` command).
///
/// Paths are how routers talk about interconnect before it is decomposed
/// into boxes for mask making. [`Path::to_rects`] performs that
/// decomposition for Manhattan (axis-aligned) paths.
///
/// # Example
///
/// ```
/// use silc_geom::{Path, Point};
/// # fn main() -> Result<(), silc_geom::GeomError> {
/// let wire = Path::new(2, vec![Point::new(0, 0), Point::new(10, 0), Point::new(10, 8)])?;
/// assert_eq!(wire.length(), 18);
/// let rects = wire.to_rects();
/// assert_eq!(rects.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    width: Coord,
    points: Vec<Point>,
}

impl Path {
    /// Creates a wire of `width` through `points`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DegeneratePath`] when `points` is empty, the
    /// width is not strictly positive, or two consecutive points coincide.
    pub fn new(width: Coord, points: Vec<Point>) -> Result<Path, GeomError> {
        if points.is_empty() || width <= 0 {
            return Err(GeomError::DegeneratePath {
                points: points.len(),
                width,
            });
        }
        for w in points.windows(2) {
            if w[0] == w[1] {
                return Err(GeomError::DegeneratePath {
                    points: points.len(),
                    width,
                });
            }
        }
        Ok(Path { width, points })
    }

    /// Pen width.
    pub const fn width(&self) -> Coord {
        self.width
    }

    /// Centre-line points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Total centre-line length (Manhattan for axis-aligned segments; for a
    /// diagonal segment, the L1 length of the segment is reported, which
    /// upper-bounds wire resistance on a Manhattan grid).
    pub fn length(&self) -> Coord {
        self.points
            .windows(2)
            .map(|w| w[0].manhattan_distance(w[1]))
            .sum()
    }

    /// True when every segment is horizontal or vertical.
    pub fn is_manhattan(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| (w[1] - w[0]).is_axis_aligned())
    }

    /// Bounding box of the swept wire, including the half-width flange on
    /// all sides (CIF pens extend beyond endpoints).
    pub fn bbox(&self) -> Rect {
        let mut min = self.points[0];
        let mut max = self.points[0];
        for &p in &self.points[1..] {
            min = min.min(p);
            max = max.max(p);
        }
        let h = self.width / 2;
        let extra = self.width - h; // handles odd widths: h + extra == width
        Rect::new(
            Point::new(min.x - h, min.y - h),
            Point::new(max.x + extra, max.y + extra),
        )
        .expect("wire of positive width has non-empty bbox")
    }

    /// Decomposes a Manhattan path into one rectangle per segment, each
    /// widened by half the pen width and extended by half the pen width at
    /// both ends (square-pen semantics, so corners are covered).
    ///
    /// # Panics
    ///
    /// Panics if the path is not Manhattan — callers should check
    /// [`is_manhattan`](Path::is_manhattan) first; the routers only ever
    /// build Manhattan paths.
    pub fn to_rects(&self) -> Vec<Rect> {
        assert!(self.is_manhattan(), "to_rects requires a Manhattan path");
        let h = self.width / 2;
        let extra = self.width - h;
        if self.points.len() == 1 {
            // A single point swept by the pen: one square.
            let p = self.points[0];
            return vec![Rect::new(
                Point::new(p.x - h, p.y - h),
                Point::new(p.x + extra, p.y + extra),
            )
            .expect("positive width")];
        }
        self.points
            .windows(2)
            .map(|w| {
                let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
                Rect::new(
                    Point::new(a.x - h, a.y - h),
                    Point::new(b.x + extra, b.y + extra),
                )
                .expect("segment swept by positive pen is non-empty")
            })
            .collect()
    }

    /// Returns the path mapped through `t`.
    pub fn transform(&self, t: Transform) -> Path {
        Path {
            width: self.width,
            points: self.points.iter().map(|&p| t.apply(p)).collect(),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire(w={})[", self.width)?;
        for (i, v) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Orientation;

    fn p(x: Coord, y: Coord) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Path::new(2, vec![]).is_err());
        assert!(Path::new(0, vec![p(0, 0)]).is_err());
        assert!(Path::new(-3, vec![p(0, 0), p(1, 0)]).is_err());
        assert!(Path::new(2, vec![p(0, 0), p(0, 0)]).is_err());
    }

    #[test]
    fn length_sums_segments() {
        let w = Path::new(2, vec![p(0, 0), p(10, 0), p(10, 8)]).unwrap();
        assert_eq!(w.length(), 18);
        assert!(w.is_manhattan());
    }

    #[test]
    fn single_point_wire_is_a_square() {
        let w = Path::new(4, vec![p(10, 10)]).unwrap();
        let rects = w.to_rects();
        assert_eq!(rects.len(), 1);
        assert_eq!(rects[0], Rect::centered(p(10, 10), 4, 4).unwrap());
    }

    #[test]
    fn to_rects_covers_corners() {
        let w = Path::new(2, vec![p(0, 0), p(10, 0), p(10, 8)]).unwrap();
        let rects = w.to_rects();
        assert_eq!(rects.len(), 2);
        // Horizontal segment: widened to height 2, extended 1 beyond ends.
        assert_eq!(rects[0], Rect::new(p(-1, -1), p(11, 1)).unwrap());
        // Vertical segment.
        assert_eq!(rects[1], Rect::new(p(9, -1), p(11, 9)).unwrap());
        // The corner point is inside both (electrically continuous).
        assert!(rects[0].contains_point(p(10, 0)));
        assert!(rects[1].contains_point(p(10, 0)));
    }

    #[test]
    fn odd_width_still_covers_width() {
        let w = Path::new(3, vec![p(0, 0), p(4, 0)]).unwrap();
        let r = w.to_rects()[0];
        assert_eq!(r.height(), 3);
        assert_eq!(r.width(), 4 + 3);
    }

    #[test]
    fn bbox_includes_flange() {
        let w = Path::new(2, vec![p(0, 0), p(10, 0)]).unwrap();
        assert_eq!(w.bbox(), Rect::new(p(-1, -1), p(11, 1)).unwrap());
    }

    #[test]
    fn diagonal_detected() {
        let w = Path::new(2, vec![p(0, 0), p(5, 5)]).unwrap();
        assert!(!w.is_manhattan());
    }

    #[test]
    #[should_panic(expected = "Manhattan")]
    fn to_rects_panics_on_diagonal() {
        let w = Path::new(2, vec![p(0, 0), p(5, 5)]).unwrap();
        let _ = w.to_rects();
    }

    #[test]
    fn transform_preserves_length_and_width() {
        let w = Path::new(2, vec![p(0, 0), p(10, 0), p(10, 8)]).unwrap();
        let t = Transform::new(Orientation::R90, p(100, 0));
        let moved = w.transform(t);
        assert_eq!(moved.length(), w.length());
        assert_eq!(moved.width(), w.width());
        assert!(moved.is_manhattan());
    }
}
