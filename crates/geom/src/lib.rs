//! # silc-geom — integer lambda-grid geometry for silicon compilation
//!
//! This crate is the geometric substrate of the SILC silicon compiler: every
//! mask feature a silicon compiler emits is ultimately a polygon on an integer
//! grid. Following the Mead–Conway design style the paper builds on, all
//! coordinates are expressed in **lambda** (`λ`), the scalable resolution unit
//! of the process; conversion to physical units (centimicrons, as used by the
//! Caltech Intermediate Form) happens only at the manufacturing interface.
//!
//! The crate provides:
//!
//! * [`Point`] and [`Vector`] — positions and displacements on the grid.
//! * [`Rect`] — axis-aligned rectangles, the workhorse of Manhattan layout.
//! * [`Polygon`] — simple polygons for non-rectangular artwork.
//! * [`Path`] — wires: centre-line point sequences with a width.
//! * [`Orientation`] and [`Transform`] — the eight Manhattan symmetries
//!   (rotations by multiples of 90° and mirrorings) plus translation, closed
//!   under composition, as required for hierarchical cell instantiation.
//! * [`Interval`] and [`IntervalSet`] — one-dimensional interval algebra used
//!   by the design-rule checker and the routers.
//! * [`Fingerprint`], [`Fp`], [`FpHasher`] — stable 128-bit content hashing,
//!   the key substrate of the `silc-incr` incremental compilation engine.
//!
//! # Example
//!
//! ```
//! use silc_geom::{Point, Rect, Transform, Orientation};
//!
//! # fn main() -> Result<(), silc_geom::GeomError> {
//! let r = Rect::new(Point::new(0, 0), Point::new(4, 2))?;
//! let t = Transform::new(Orientation::R90, Point::new(10, 0));
//! let moved = t.apply_rect(r);
//! assert_eq!(moved.width(), 2);
//! assert_eq!(moved.height(), 4);
//! # Ok(())
//! # }
//! ```

mod error;
mod fp;
mod index;
mod interval;
mod path;
mod point;
mod polygon;
mod rect;
mod transform;

pub use error::GeomError;
pub use fp::{Fingerprint, Fp, FpHasher};
pub use index::{band_decompose, RectIndex};
pub use interval::{Interval, IntervalSet};
pub use path::Path;
pub use point::{Point, Vector};
pub use polygon::Polygon;
pub use rect::Rect;
pub use transform::{Orientation, Transform};

/// The coordinate type used throughout SILC: a signed 64-bit integer count of
/// lambda units (or, at the CIF boundary, centimicrons).
///
/// Sixty-four bits comfortably covers any die: a 1 cm die at λ = 0.25 µm is
/// only 4×10⁴ λ across.
pub type Coord = i64;
