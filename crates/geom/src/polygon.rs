use crate::{Coord, GeomError, Point, Rect, Transform};
use std::fmt;

/// A simple polygon on the lambda grid.
///
/// CIF's `P` command describes arbitrary polygons; most silicon-compiler
/// output is rectangles, but pads, arrows and a few analogue structures need
/// polygons. Vertices are stored in the order given (either winding);
/// [`Polygon::double_area`] is always reported positive.
///
/// # Example
///
/// ```
/// use silc_geom::{Point, Polygon};
/// # fn main() -> Result<(), silc_geom::GeomError> {
/// let tri = Polygon::new(vec![
///     Point::new(0, 0), Point::new(4, 0), Point::new(0, 4),
/// ])?;
/// assert_eq!(tri.double_area(), 16); // area is 8
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its vertex loop (the closing edge from last to
    /// first vertex is implicit).
    ///
    /// # Errors
    ///
    /// * [`GeomError::DegeneratePolygon`] — fewer than three vertices, zero
    ///   area, or repeated consecutive vertices.
    /// * [`GeomError::SelfIntersectingPolygon`] — non-adjacent edges cross.
    pub fn new(vertices: Vec<Point>) -> Result<Polygon, GeomError> {
        if vertices.len() < 3 {
            return Err(GeomError::DegeneratePolygon {
                vertices: vertices.len(),
            });
        }
        let n = vertices.len();
        for i in 0..n {
            if vertices[i] == vertices[(i + 1) % n] {
                return Err(GeomError::DegeneratePolygon { vertices: n });
            }
        }
        let poly = Polygon { vertices };
        if poly.has_self_intersection() {
            return Err(GeomError::SelfIntersectingPolygon);
        }
        if poly.double_area() == 0 {
            return Err(GeomError::DegeneratePolygon { vertices: n });
        }
        Ok(poly)
    }

    /// Converts a rectangle into a four-vertex polygon (counter-clockwise).
    pub fn from_rect(r: Rect) -> Polygon {
        Polygon {
            vertices: r.corners().to_vec(),
        }
    }

    /// The vertex loop.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false: valid polygons have at least three vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Twice the (unsigned) enclosed area, via the shoelace formula. Twice
    /// the area is always an integer on an integer grid; use this to avoid
    /// rounding.
    pub fn double_area(&self) -> Coord {
        self.signed_double_area().abs()
    }

    /// Twice the signed area: positive for counter-clockwise winding.
    pub fn signed_double_area(&self) -> Coord {
        let n = self.vertices.len();
        let mut acc = 0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        acc
    }

    /// True when the vertex loop is counter-clockwise.
    pub fn is_counter_clockwise(&self) -> bool {
        self.signed_double_area() > 0
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for &v in &self.vertices[1..] {
            min = min.min(v);
            max = max.max(v);
        }
        // A polygon that collapses to a horizontal/vertical segment is
        // rejected at construction (zero area), so this cannot fail — but a
        // diagonal degenerate could in theory; widen by nothing and rely on
        // the non-zero-area invariant.
        Rect::new(min, max).expect("non-degenerate polygon has non-empty bbox")
    }

    /// True if every edge is horizontal or vertical (rectilinear artwork).
    pub fn is_rectilinear(&self) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| {
            let d = self.vertices[(i + 1) % n] - self.vertices[i];
            d.is_axis_aligned()
        })
    }

    /// Point-in-polygon test (boundary counts as inside), by the winding
    /// crossing rule.
    pub fn contains_point(&self, p: Point) -> bool {
        let n = self.vertices.len();
        // Boundary check first.
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if on_segment(a, b, p) {
                return true;
            }
        }
        let mut inside = false;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if (a.y > p.y) != (b.y > p.y) {
                // Edge straddles the horizontal ray; compare x of crossing.
                // x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                let num = (p.y - a.y) * (b.x - a.x);
                let den = b.y - a.y;
                // p.x < x_cross  <=>  p.x * den < a.x * den + num  (sign-safe)
                let lhs = (p.x - a.x) * den;
                if (den > 0 && lhs < num) || (den < 0 && lhs > num) {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Returns the polygon mapped through `t`.
    pub fn transform(&self, t: Transform) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&p| t.apply(p)).collect(),
        }
    }

    fn has_self_intersection(&self) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a1 = self.vertices[i];
            let a2 = self.vertices[(i + 1) % n];
            for j in (i + 1)..n {
                // Skip adjacent edges (sharing a vertex).
                if j == i || (j + 1) % n == i || (i + 1) % n == j {
                    continue;
                }
                let b1 = self.vertices[j];
                let b2 = self.vertices[(j + 1) % n];
                if segments_properly_intersect(a1, a2, b1, b2) {
                    return true;
                }
            }
        }
        false
    }
}

fn orient(a: Point, b: Point, c: Point) -> Coord {
    (b - a).cross(c - a)
}

fn on_segment(a: Point, b: Point, p: Point) -> bool {
    orient(a, b, p) == 0
        && p.x >= a.x.min(b.x)
        && p.x <= a.x.max(b.x)
        && p.y >= a.y.min(b.y)
        && p.y <= a.y.max(b.y)
}

fn segments_properly_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    let d1 = orient(b1, b2, a1);
    let d2 = orient(b1, b2, a2);
    let d3 = orient(a1, a2, b1);
    let d4 = orient(a1, a2, b2);
    if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) && ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
        return true;
    }
    // Collinear overlap also counts as self-intersection.
    (d1 == 0 && on_segment(b1, b2, a1))
        || (d2 == 0 && on_segment(b1, b2, a2))
        || (d3 == 0 && on_segment(a1, a2, b1))
        || (d4 == 0 && on_segment(a1, a2, b2))
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "poly[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Orientation;

    fn p(x: Coord, y: Coord) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn triangle_area() {
        let t = Polygon::new(vec![p(0, 0), p(4, 0), p(0, 4)]).unwrap();
        assert_eq!(t.double_area(), 16);
        assert!(t.is_counter_clockwise());
    }

    #[test]
    fn clockwise_winding_detected() {
        let t = Polygon::new(vec![p(0, 0), p(0, 4), p(4, 0)]).unwrap();
        assert!(!t.is_counter_clockwise());
        assert_eq!(t.double_area(), 16);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(matches!(
            Polygon::new(vec![p(0, 0), p(1, 1)]),
            Err(GeomError::DegeneratePolygon { vertices: 2 })
        ));
        // Collinear points: zero area.
        assert!(Polygon::new(vec![p(0, 0), p(2, 2), p(4, 4)]).is_err());
        // Repeated consecutive vertex.
        assert!(Polygon::new(vec![p(0, 0), p(0, 0), p(4, 0), p(0, 4)]).is_err());
    }

    #[test]
    fn rejects_self_intersecting_bowtie() {
        let bowtie = Polygon::new(vec![p(0, 0), p(4, 4), p(4, 0), p(0, 4)]);
        assert!(matches!(bowtie, Err(GeomError::SelfIntersectingPolygon)));
    }

    #[test]
    fn from_rect_roundtrip() {
        let r = Rect::from_origin_size(p(1, 2), 5, 3).unwrap();
        let poly = Polygon::from_rect(r);
        assert_eq!(poly.len(), 4);
        assert_eq!(poly.double_area(), 2 * r.area());
        assert_eq!(poly.bbox(), r);
        assert!(poly.is_rectilinear());
        assert!(poly.is_counter_clockwise());
    }

    #[test]
    fn l_shape_is_rectilinear() {
        let l = Polygon::new(vec![p(0, 0), p(4, 0), p(4, 2), p(2, 2), p(2, 6), p(0, 6)]).unwrap();
        assert!(l.is_rectilinear());
        assert_eq!(l.double_area(), 2 * (4 * 2 + 2 * 4));
        assert_eq!(l.bbox(), Rect::from_origin_size(p(0, 0), 4, 6).unwrap());
    }

    #[test]
    fn point_containment() {
        let l = Polygon::new(vec![p(0, 0), p(4, 0), p(4, 2), p(2, 2), p(2, 6), p(0, 6)]).unwrap();
        assert!(l.contains_point(p(1, 1)));
        assert!(l.contains_point(p(3, 1)));
        assert!(l.contains_point(p(1, 5)));
        assert!(!l.contains_point(p(3, 3))); // in the notch
        assert!(l.contains_point(p(0, 0))); // corner counts
        assert!(l.contains_point(p(2, 4))); // on the inner edge
        assert!(!l.contains_point(p(5, 5)));
    }

    #[test]
    fn non_rectilinear_detected() {
        let t = Polygon::new(vec![p(0, 0), p(4, 0), p(0, 4)]).unwrap();
        assert!(!t.is_rectilinear());
    }

    #[test]
    fn transform_preserves_area() {
        let t = Polygon::new(vec![p(0, 0), p(4, 0), p(0, 4)]).unwrap();
        let moved = t.transform(Transform::new(Orientation::R90, p(10, 10)));
        assert_eq!(moved.double_area(), t.double_area());
        // R90 is a proper rotation: winding preserved.
        assert_eq!(moved.is_counter_clockwise(), t.is_counter_clockwise());
        // Mirroring reverses winding.
        let mirrored = t.transform(Transform::new(Orientation::MX, Point::ORIGIN));
        assert_ne!(mirrored.is_counter_clockwise(), t.is_counter_clockwise());
    }

    #[test]
    fn display_lists_vertices() {
        let t = Polygon::new(vec![p(0, 0), p(1, 0), p(0, 1)]).unwrap();
        assert_eq!(t.to_string(), "poly[(0, 0) (1, 0) (0, 1)]");
    }
}
