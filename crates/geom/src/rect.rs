use crate::{Coord, GeomError, Point, Vector};
use std::fmt;

/// An axis-aligned rectangle with strictly positive extent on both axes.
///
/// Rectangles are half-open conceptually — two rectangles that merely share
/// an edge have zero overlap area but *do* [`touch`](Rect::touches). The
/// canonical representation keeps `min <= max` componentwise, established at
/// construction, so every `Rect` in the system is valid by construction
/// (static enforcement of the non-empty invariant).
///
/// # Example
///
/// ```
/// use silc_geom::{Point, Rect};
/// # fn main() -> Result<(), silc_geom::GeomError> {
/// let a = Rect::new(Point::new(0, 0), Point::new(4, 4))?;
/// let b = Rect::new(Point::new(2, 2), Point::new(6, 6))?;
/// let i = a.intersection(b).expect("they overlap");
/// assert_eq!(i.area(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners, in any order.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyRect`] if the corners coincide on either
    /// axis (zero width or height).
    pub fn new(a: Point, b: Point) -> Result<Rect, GeomError> {
        let min = a.min(b);
        let max = a.max(b);
        if min.x == max.x || min.y == max.y {
            return Err(GeomError::EmptyRect {
                width: max.x - min.x,
                height: max.y - min.y,
            });
        }
        Ok(Rect { min, max })
    }

    /// Creates a rectangle from its lower-left corner and a size.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyRect`] if `width` or `height` is not
    /// strictly positive.
    pub fn from_origin_size(origin: Point, width: Coord, height: Coord) -> Result<Rect, GeomError> {
        if width <= 0 || height <= 0 {
            return Err(GeomError::EmptyRect { width, height });
        }
        Ok(Rect {
            min: origin,
            max: Point::new(origin.x + width, origin.y + height),
        })
    }

    /// Creates a rectangle centred on `center`. Used heavily by the CIF
    /// writer, whose `B` (box) command is centre-based.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyRect`] if `width` or `height` is not
    /// strictly positive.
    ///
    /// # Panics
    ///
    /// Does not panic; odd sizes are allowed and round the centre down
    /// (`center` is then the centre of the *doubled* grid, as in CIF).
    pub fn centered(center: Point, width: Coord, height: Coord) -> Result<Rect, GeomError> {
        if width <= 0 || height <= 0 {
            return Err(GeomError::EmptyRect { width, height });
        }
        let min = Point::new(center.x - width / 2, center.y - height / 2);
        Ok(Rect {
            min,
            max: Point::new(min.x + width, min.y + height),
        })
    }

    /// Lower-left corner.
    pub const fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub const fn max(&self) -> Point {
        self.max
    }

    /// Left edge x-coordinate.
    pub const fn left(&self) -> Coord {
        self.min.x
    }

    /// Right edge x-coordinate.
    pub const fn right(&self) -> Coord {
        self.max.x
    }

    /// Bottom edge y-coordinate.
    pub const fn bottom(&self) -> Coord {
        self.min.y
    }

    /// Top edge y-coordinate.
    pub const fn top(&self) -> Coord {
        self.max.y
    }

    /// Horizontal extent (always positive).
    pub const fn width(&self) -> Coord {
        self.max.x - self.min.x
    }

    /// Vertical extent (always positive).
    pub const fn height(&self) -> Coord {
        self.max.y - self.min.y
    }

    /// Area in square lambda.
    pub const fn area(&self) -> Coord {
        self.width() * self.height()
    }

    /// Centre point, rounded toward the lower-left on odd extents.
    pub const fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x).div_euclid(2),
            (self.min.y + self.max.y).div_euclid(2),
        )
    }

    /// Doubled centre coordinates `(2cx, 2cy)`; exact even for odd extents.
    /// The CIF `B` command needs exact centres, which this provides without
    /// fractions.
    pub const fn center_doubled(&self) -> (Coord, Coord) {
        (self.min.x + self.max.x, self.min.y + self.max.y)
    }

    /// The smaller of width and height — the "width" in the design-rule
    /// sense for a maximal rectangle.
    pub fn min_dimension(&self) -> Coord {
        self.width().min(self.height())
    }

    /// Returns the rectangle translated by `v`.
    pub fn translate(&self, v: Vector) -> Rect {
        Rect {
            min: self.min + v,
            max: self.max + v,
        }
    }

    /// Returns the rectangle grown outward by `margin` on all sides
    /// (negative `margin` shrinks it).
    ///
    /// Returns `None` when shrinking collapses the rectangle to zero or
    /// negative extent.
    pub fn inflate(&self, margin: Coord) -> Option<Rect> {
        let min = Point::new(self.min.x - margin, self.min.y - margin);
        let max = Point::new(self.max.x + margin, self.max.y + margin);
        if min.x >= max.x || min.y >= max.y {
            None
        } else {
            Some(Rect { min, max })
        }
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True if `other` lies entirely inside (or coincides with) `self`.
    pub fn contains_rect(&self, other: Rect) -> bool {
        other.min.x >= self.min.x
            && other.min.y >= self.min.y
            && other.max.x <= self.max.x
            && other.max.y <= self.max.y
    }

    /// True if the two rectangles share interior area (edge-sharing does not
    /// count).
    pub fn overlaps(&self, other: Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// True if the rectangles overlap *or* abut along an edge or corner.
    /// Touching geometry is electrically connected, so the extractor uses
    /// this rather than [`overlaps`](Rect::overlaps).
    pub fn touches(&self, other: Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Intersection with `other`, or `None` when interiors are disjoint.
    pub fn intersection(&self, other: Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect {
            min: self.min.max(other.min),
            max: self.max.min(other.max),
        })
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: Rect) -> Rect {
        Rect {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Minimum separation between the two rectangles measured independently
    /// per axis, as design rules do: the gap along x (0 when x-spans overlap)
    /// and along y.
    ///
    /// Two rectangles violate a spacing rule `s` when both gaps are `< s`
    /// and the rectangles do not overlap.
    pub fn axis_gaps(&self, other: Rect) -> (Coord, Coord) {
        let gx = if self.max.x < other.min.x {
            other.min.x - self.max.x
        } else if other.max.x < self.min.x {
            self.min.x - other.max.x
        } else {
            0
        };
        let gy = if self.max.y < other.min.y {
            other.min.y - self.max.y
        } else if other.max.y < self.min.y {
            self.min.y - other.max.y
        } else {
            0
        };
        (gx, gy)
    }

    /// The four corner points in counter-clockwise order starting at the
    /// lower-left.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    #[test]
    fn corners_normalize() {
        let a = Rect::new(Point::new(4, 4), Point::new(0, 0)).unwrap();
        assert_eq!(a.min(), Point::new(0, 0));
        assert_eq!(a.max(), Point::new(4, 4));
    }

    #[test]
    fn empty_rect_rejected() {
        assert!(matches!(
            Rect::new(Point::new(0, 0), Point::new(0, 4)),
            Err(GeomError::EmptyRect { .. })
        ));
        assert!(Rect::from_origin_size(Point::ORIGIN, 0, 5).is_err());
        assert!(Rect::from_origin_size(Point::ORIGIN, 5, -1).is_err());
        assert!(Rect::centered(Point::ORIGIN, 0, 2).is_err());
    }

    #[test]
    fn from_origin_size_and_accessors() {
        let a = Rect::from_origin_size(Point::new(1, 2), 3, 4).unwrap();
        assert_eq!(a.left(), 1);
        assert_eq!(a.bottom(), 2);
        assert_eq!(a.right(), 4);
        assert_eq!(a.top(), 6);
        assert_eq!(a.width(), 3);
        assert_eq!(a.height(), 4);
        assert_eq!(a.area(), 12);
        assert_eq!(a.min_dimension(), 3);
    }

    #[test]
    fn centered_box() {
        let a = Rect::centered(Point::new(0, 0), 4, 2).unwrap();
        assert_eq!(a.min(), Point::new(-2, -1));
        assert_eq!(a.max(), Point::new(2, 1));
        assert_eq!(a.center(), Point::new(0, 0));
        assert_eq!(a.center_doubled(), (0, 0));
    }

    #[test]
    fn center_doubled_is_exact_for_odd_extent() {
        let a = r(0, 0, 3, 5);
        assert_eq!(a.center_doubled(), (3, 5));
        // Integer centre rounds down.
        assert_eq!(a.center(), Point::new(1, 2));
    }

    #[test]
    fn overlap_vs_touch() {
        let a = r(0, 0, 4, 4);
        let b = r(4, 0, 8, 4); // shares an edge
        let c = r(5, 0, 8, 4); // 1 lambda gap
        let d = r(2, 2, 6, 6); // true overlap
        assert!(!a.overlaps(b));
        assert!(a.touches(b));
        assert!(!a.overlaps(c));
        assert!(!a.touches(c));
        assert!(a.overlaps(d));
        assert!(a.touches(d));
    }

    #[test]
    fn corner_touch_counts_as_touch() {
        let a = r(0, 0, 2, 2);
        let b = r(2, 2, 4, 4);
        assert!(a.touches(b));
        assert!(!a.overlaps(b));
    }

    #[test]
    fn intersection_and_union() {
        let a = r(0, 0, 4, 4);
        let b = r(2, 2, 6, 6);
        assert_eq!(a.intersection(b), Some(r(2, 2, 4, 4)));
        assert_eq!(a.union(b), r(0, 0, 6, 6));
        let c = r(10, 10, 12, 12);
        assert_eq!(a.intersection(c), None);
    }

    #[test]
    fn containment() {
        let outer = r(0, 0, 10, 10);
        let inner = r(2, 2, 8, 8);
        assert!(outer.contains_rect(inner));
        assert!(!inner.contains_rect(outer));
        assert!(outer.contains_rect(outer));
        assert!(outer.contains_point(Point::new(0, 0)));
        assert!(outer.contains_point(Point::new(10, 10)));
        assert!(!outer.contains_point(Point::new(11, 5)));
    }

    #[test]
    fn inflate_and_deflate() {
        let a = r(2, 2, 6, 6);
        assert_eq!(a.inflate(1), Some(r(1, 1, 7, 7)));
        assert_eq!(a.inflate(-1), Some(r(3, 3, 5, 5)));
        assert_eq!(a.inflate(-2), None); // collapses
    }

    #[test]
    fn axis_gaps_cases() {
        let a = r(0, 0, 2, 2);
        // Diagonal neighbour, 3 apart in x, 1 apart in y.
        let b = r(5, 3, 7, 5);
        assert_eq!(a.axis_gaps(b), (3, 1));
        assert_eq!(b.axis_gaps(a), (3, 1));
        // Overlapping spans give zero gaps.
        let c = r(1, 1, 3, 3);
        assert_eq!(a.axis_gaps(c), (0, 0));
        // Abutting gives zero gap.
        let d = r(2, 0, 4, 2);
        assert_eq!(a.axis_gaps(d), (0, 0));
    }

    #[test]
    fn translate_preserves_size() {
        let a = r(0, 0, 3, 5);
        let b = a.translate(Vector::new(7, -2));
        assert_eq!(b.width(), 3);
        assert_eq!(b.height(), 5);
        assert_eq!(b.min(), Point::new(7, -2));
    }

    #[test]
    fn corners_are_ccw() {
        let a = r(0, 0, 2, 3);
        let c = a.corners();
        // Shoelace over the corner loop should give positive (CCW) area.
        let mut acc = 0;
        for i in 0..4 {
            let p = c[i];
            let q = c[(i + 1) % 4];
            acc += p.x * q.y - q.x * p.y;
        }
        assert_eq!(acc, 2 * a.area());
    }

    proptest! {
        #[test]
        fn union_contains_both(x0 in -50i64..50, y0 in -50i64..50, w0 in 1i64..20, h0 in 1i64..20,
                               x1 in -50i64..50, y1 in -50i64..50, w1 in 1i64..20, h1 in 1i64..20) {
            let a = Rect::from_origin_size(Point::new(x0, y0), w0, h0).unwrap();
            let b = Rect::from_origin_size(Point::new(x1, y1), w1, h1).unwrap();
            let u = a.union(b);
            prop_assert!(u.contains_rect(a));
            prop_assert!(u.contains_rect(b));
        }

        #[test]
        fn intersection_is_contained(x0 in -50i64..50, y0 in -50i64..50, w0 in 1i64..20, h0 in 1i64..20,
                                     x1 in -50i64..50, y1 in -50i64..50, w1 in 1i64..20, h1 in 1i64..20) {
            let a = Rect::from_origin_size(Point::new(x0, y0), w0, h0).unwrap();
            let b = Rect::from_origin_size(Point::new(x1, y1), w1, h1).unwrap();
            if let Some(i) = a.intersection(b) {
                prop_assert!(a.contains_rect(i));
                prop_assert!(b.contains_rect(i));
                prop_assert!(i.area() <= a.area().min(b.area()));
            } else {
                prop_assert!(!a.overlaps(b));
            }
        }

        #[test]
        fn overlap_is_symmetric(x0 in -50i64..50, y0 in -50i64..50, w0 in 1i64..20, h0 in 1i64..20,
                                x1 in -50i64..50, y1 in -50i64..50, w1 in 1i64..20, h1 in 1i64..20) {
            let a = Rect::from_origin_size(Point::new(x0, y0), w0, h0).unwrap();
            let b = Rect::from_origin_size(Point::new(x1, y1), w1, h1).unwrap();
            prop_assert_eq!(a.overlaps(b), b.overlaps(a));
            prop_assert_eq!(a.touches(b), b.touches(a));
        }
    }
}
