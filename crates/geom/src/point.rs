use crate::Coord;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A position on the lambda grid.
///
/// `Point` is an absolute location; displacements between points are
/// [`Vector`]s. The distinction keeps transform code honest: orientations act
/// on vectors, translations act on points.
///
/// # Example
///
/// ```
/// use silc_geom::{Point, Vector};
/// let p = Point::new(3, 4);
/// let q = p + Vector::new(1, -1);
/// assert_eq!(q, Point::new(4, 3));
/// assert_eq!(q - p, Vector::new(1, -1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate in lambda.
    pub x: Coord,
    /// Vertical coordinate in lambda.
    pub y: Coord,
}

/// A displacement on the lambda grid.
///
/// See [`Point`] for the point/vector distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vector {
    /// Horizontal displacement in lambda.
    pub x: Coord,
    /// Vertical displacement in lambda.
    pub y: Coord,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point at `(x, y)`.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Returns this point viewed as a displacement from the origin.
    pub const fn to_vector(self) -> Vector {
        Vector {
            x: self.x,
            y: self.y,
        }
    }

    /// Componentwise minimum of two points (lower-left corner of their
    /// bounding box).
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum of two points (upper-right corner of their
    /// bounding box).
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Manhattan (L1) distance to `other`, the natural metric for wiring on
    /// a Manhattan grid.
    ///
    /// ```
    /// use silc_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, 4)), 7);
    /// ```
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Vector {
    /// The zero displacement.
    pub const ZERO: Vector = Vector { x: 0, y: 0 };

    /// Creates a vector `(x, y)`.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Vector { x, y }
    }

    /// Returns the point reached by following this vector from the origin.
    pub const fn to_point(self) -> Point {
        Point {
            x: self.x,
            y: self.y,
        }
    }

    /// L1 norm of the displacement.
    pub fn manhattan_length(self) -> Coord {
        self.x.abs() + self.y.abs()
    }

    /// True if the vector is horizontal or vertical (one component zero).
    /// The zero vector counts as axis-aligned.
    pub fn is_axis_aligned(self) -> bool {
        self.x == 0 || self.y == 0
    }

    /// Cross product z-component, used for polygon orientation tests.
    pub fn cross(self, other: Vector) -> Coord {
        self.x * other.y - self.y * other.x
    }

    /// Dot product.
    pub fn dot(self, other: Vector) -> Coord {
        self.x * other.x + self.y * other.y
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vector> for Point {
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sub for Point {
    type Output = Vector;
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vector {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<Coord> for Vector {
    type Output = Vector;
    fn mul(self, rhs: Coord) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

impl From<(Coord, Coord)> for Vector {
    fn from((x, y): (Coord, Coord)) -> Self {
        Vector::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(2, 3);
        let v = Vector::new(5, -1);
        assert_eq!(p + v, Point::new(7, 2));
        assert_eq!(p - v, Point::new(-3, 4));
        assert_eq!((p + v) - p, v);
        assert_eq!(p + Vector::ZERO, p);
    }

    #[test]
    fn assign_ops() {
        let mut p = Point::new(1, 1);
        p += Vector::new(2, 3);
        assert_eq!(p, Point::new(3, 4));
        p -= Vector::new(1, 1);
        assert_eq!(p, Point::new(2, 3));
        let mut v = Vector::new(1, 1);
        v += Vector::new(4, 4);
        assert_eq!(v, Vector::new(5, 5));
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(-3, 7);
        let b = Point::new(10, -2);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn min_max_corners() {
        let a = Point::new(5, 1);
        let b = Point::new(2, 9);
        assert_eq!(a.min(b), Point::new(2, 1));
        assert_eq!(a.max(b), Point::new(5, 9));
    }

    #[test]
    fn cross_and_dot() {
        let x = Vector::new(1, 0);
        let y = Vector::new(0, 1);
        assert_eq!(x.cross(y), 1);
        assert_eq!(y.cross(x), -1);
        assert_eq!(x.dot(y), 0);
        assert_eq!(x.dot(x), 1);
    }

    #[test]
    fn axis_alignment() {
        assert!(Vector::new(0, 5).is_axis_aligned());
        assert!(Vector::new(5, 0).is_axis_aligned());
        assert!(Vector::ZERO.is_axis_aligned());
        assert!(!Vector::new(1, 1).is_axis_aligned());
    }

    #[test]
    fn scalar_multiply_and_negate() {
        let v = Vector::new(2, -3);
        assert_eq!(v * 3, Vector::new(6, -9));
        assert_eq!(-v, Vector::new(-2, 3));
    }

    #[test]
    fn conversions() {
        let p: Point = (4, 5).into();
        assert_eq!(p, Point::new(4, 5));
        assert_eq!(p.to_vector().to_point(), p);
        let v: Vector = (1, 2).into();
        assert_eq!(v, Vector::new(1, 2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
        assert_eq!(Vector::new(1, -2).to_string(), "<1, -2>");
    }

    proptest! {
        #[test]
        fn add_then_sub_roundtrips(x in -1000i64..1000, y in -1000i64..1000,
                                   dx in -1000i64..1000, dy in -1000i64..1000) {
            let p = Point::new(x, y);
            let v = Vector::new(dx, dy);
            prop_assert_eq!((p + v) - v, p);
        }

        #[test]
        fn triangle_inequality(ax in -100i64..100, ay in -100i64..100,
                               bx in -100i64..100, by in -100i64..100,
                               cx in -100i64..100, cy in -100i64..100) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.manhattan_distance(c)
                <= a.manhattan_distance(b) + b.manhattan_distance(c));
        }

        #[test]
        fn cross_is_antisymmetric(ax in -100i64..100, ay in -100i64..100,
                                  bx in -100i64..100, by in -100i64..100) {
            let a = Vector::new(ax, ay);
            let b = Vector::new(bx, by);
            prop_assert_eq!(a.cross(b), -b.cross(a));
        }
    }
}
