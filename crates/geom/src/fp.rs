//! Stable content fingerprints — the keys of the incremental engine.
//!
//! `silc-incr` memoizes every pipeline stage by the **content hash** of
//! its inputs, so the hash must be (a) stable across processes and
//! toolchain versions (it is persisted in the on-disk cache), (b) cheap,
//! and (c) collision-resistant enough that a 128-bit digest over designs
//! of at most a few million elements never collides in practice. The
//! standard-library `Hasher`s guarantee none of that, so this module
//! implements FNV-1a/128 by hand and a [`Fingerprint`] trait in the
//! spirit of `std::hash::Hash`, with explicit domain separation (length
//! prefixes and variant tags) so `["ab","c"]` and `["a","bc"]` differ.
//!
//! The trait lives here, at the bottom of the crate graph, so every
//! pipeline crate (`lang`, `layout`, `drc`, `cif`, `extract`, `rtl`,
//! `netlist`) can implement it for its own types without depending on
//! the engine.
//!
//! # Example
//!
//! ```
//! use silc_geom::{Fingerprint, Point, Rect};
//!
//! let a = Rect::new(Point::new(0, 0), Point::new(4, 2)).unwrap();
//! let b = Rect::new(Point::new(0, 0), Point::new(4, 2)).unwrap();
//! assert_eq!(a.fingerprint(), b.fingerprint());
//! assert_ne!(a.fingerprint(), Point::new(0, 0).fingerprint());
//! ```

use crate::{Interval, Path, Point, Polygon, Rect, Transform, Vector};
use std::fmt;

/// A 128-bit stable content hash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fp(u128);

impl Fp {
    /// The raw 128-bit digest.
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Rebuilds a fingerprint from its raw digest (e.g. read back from a
    /// persistent cache header).
    pub const fn from_raw(raw: u128) -> Fp {
        Fp(raw)
    }

    /// The digest as 16 little-endian bytes, for serialization.
    pub const fn to_le_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Rebuilds a fingerprint from [`Fp::to_le_bytes`] output.
    pub const fn from_le_bytes(bytes: [u8; 16]) -> Fp {
        Fp(u128::from_le_bytes(bytes))
    }

    /// 32-hex-digit rendering, used in cache file names.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({:032x})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming FNV-1a/128 hasher behind [`Fingerprint`].
///
/// FNV-1a is fully specified (offset basis and prime are published
/// constants), byte-order independent, and needs only `u128` arithmetic,
/// so digests are identical on every platform and toolchain.
#[derive(Debug, Clone)]
pub struct FpHasher {
    state: u128,
}

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl FpHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> FpHasher {
        FpHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes (no length prefix — callers that hash
    /// variable-length data should write the length first).
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize`, widened to 64 bits for portability.
    pub fn write_len(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a string with a length prefix.
    pub fn write_str(&mut self, s: &str) {
        self.write_len(s.len());
        self.write(s.as_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> Fp {
        Fp(self.state)
    }
}

impl Default for FpHasher {
    fn default() -> FpHasher {
        FpHasher::new()
    }
}

/// Stable content hashing, implemented by every type that can key or
/// feed an incremental query.
///
/// Implementations must be **pure functions of the value's content**: no
/// addresses, no map iteration order, no clocks. Two values that compare
/// equal must fingerprint equal; values that differ should differ (the
/// 128-bit digest makes accidental collisions negligible).
pub trait Fingerprint {
    /// Absorbs this value's content into `h`.
    fn fp_hash(&self, h: &mut FpHasher);

    /// The standalone digest of this value.
    fn fingerprint(&self) -> Fp {
        let mut h = FpHasher::new();
        self.fp_hash(&mut h);
        h.finish()
    }
}

impl Fingerprint for u8 {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_u8(*self);
    }
}

impl Fingerprint for u32 {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_u32(*self);
    }
}

impl Fingerprint for u64 {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_u64(*self);
    }
}

impl Fingerprint for i64 {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_i64(*self);
    }
}

impl Fingerprint for usize {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_len(*self);
    }
}

impl Fingerprint for bool {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_u8(u8::from(*self));
    }
}

impl Fingerprint for str {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(self);
    }
}

impl Fingerprint for String {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_str(self);
    }
}

impl<T: Fingerprint + ?Sized> Fingerprint for &T {
    fn fp_hash(&self, h: &mut FpHasher) {
        (**self).fp_hash(h);
    }
}

impl<T: Fingerprint> Fingerprint for [T] {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_len(self.len());
        for item in self {
            item.fp_hash(h);
        }
    }
}

impl<T: Fingerprint> Fingerprint for Vec<T> {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.as_slice().fp_hash(h);
    }
}

impl<T: Fingerprint> Fingerprint for Option<T> {
    fn fp_hash(&self, h: &mut FpHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.fp_hash(h);
            }
        }
    }
}

impl<A: Fingerprint, B: Fingerprint> Fingerprint for (A, B) {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.0.fp_hash(h);
        self.1.fp_hash(h);
    }
}

impl<A: Fingerprint, B: Fingerprint, C: Fingerprint> Fingerprint for (A, B, C) {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.0.fp_hash(h);
        self.1.fp_hash(h);
        self.2.fp_hash(h);
    }
}

impl Fingerprint for Point {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_i64(self.x);
        h.write_i64(self.y);
    }
}

impl Fingerprint for Vector {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_i64(self.x);
        h.write_i64(self.y);
    }
}

impl Fingerprint for Rect {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.min().fp_hash(h);
        self.max().fp_hash(h);
    }
}

impl Fingerprint for crate::Orientation {
    fn fp_hash(&self, h: &mut FpHasher) {
        let idx = crate::Orientation::ALL
            .iter()
            .position(|o| o == self)
            .expect("ALL lists every orientation") as u8;
        h.write_u8(idx);
    }
}

impl Fingerprint for Transform {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.orientation.fp_hash(h);
        self.offset.fp_hash(h);
    }
}

impl Fingerprint for Polygon {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.vertices().fp_hash(h);
    }
}

impl Fingerprint for Path {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_i64(self.width());
        self.points().fp_hash(h);
    }
}

impl Fingerprint for Interval {
    fn fp_hash(&self, h: &mut FpHasher) {
        h.write_i64(self.lo());
        h.write_i64(self.hi());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Orientation;

    #[test]
    fn digest_is_stable_across_runs() {
        // FNV-1a/128 of the empty input is the offset basis; of "a" it is
        // a published test vector. Pinning both here guards the persisted
        // cache format against accidental algorithm changes.
        assert_eq!(FpHasher::new().finish().raw(), FNV_OFFSET);
        let mut h = FpHasher::new();
        h.write(b"a");
        assert_eq!(h.finish().to_hex(), "d228cb696f1a8caf78912b704e4a8964");
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        let a = vec!["ab".to_string(), "c".to_string()];
        let b = vec!["a".to_string(), "bc".to_string()];
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn option_tags_separate_none_from_zero() {
        let none: Option<u8> = None;
        let zero: Option<u8> = Some(0);
        assert_ne!(none.fingerprint(), zero.fingerprint());
    }

    #[test]
    fn geometry_round_trips() {
        let r = Rect::new(Point::new(-3, 2), Point::new(7, 9)).unwrap();
        assert_eq!(r.fingerprint(), r.fingerprint());
        let t1 = Transform::new(Orientation::R90, Point::new(1, 2));
        let t2 = Transform::new(Orientation::R270, Point::new(1, 2));
        assert_ne!(t1.fingerprint(), t2.fingerprint());
        let w = Path::new(2, vec![Point::new(0, 0), Point::new(4, 0)]).unwrap();
        let w2 = Path::new(3, vec![Point::new(0, 0), Point::new(4, 0)]).unwrap();
        assert_ne!(w.fingerprint(), w2.fingerprint());
    }

    #[test]
    fn fp_bytes_round_trip() {
        let mut h = FpHasher::new();
        h.write_str("roundtrip");
        let fp = h.finish();
        assert_eq!(Fp::from_le_bytes(fp.to_le_bytes()), fp);
        assert_eq!(Fp::from_raw(fp.raw()), fp);
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(format!("{fp}"), fp.to_hex());
    }
}
