//! # Spatial indexing for rectangle sets
//!
//! The geometry engine behind the design-rule checker and the circuit
//! extractor. Both tools repeatedly answer the same question — *which
//! rectangles lie within distance `s` of this one?* — and answering it by
//! scanning every rectangle turns million-rect flat layouts into O(n²)
//! work. [`RectIndex`] bins rectangles into a uniform grid sized from the
//! average feature dimension, so a query inspects only the bins the probe
//! (grown by its margin) overlaps: O(n·k) overall, with k the local
//! neighbourhood size, which for real mask geometry is a small constant.
//!
//! Design notes:
//!
//! * **CSR storage.** Bins are a compressed flat `starts`/`entries` pair
//!   rather than `Vec<Vec<u32>>` — one allocation, cache-friendly scans.
//! * **Anchor deduplication.** A rectangle spanning several bins is
//!   reported once per query without a visited set: it is emitted only
//!   from the first bin of the query window it occupies.
//! * **Deterministic order.** Queries return candidate ids in ascending
//!   insertion order, so algorithms built on the index produce output
//!   byte-identical to their brute-force counterparts.
//! * **Small inputs skip the grid.** Below a size threshold the index is
//!   a plain slice and queries scan it; building hash maps for a dozen
//!   rects costs more than it saves.
//!
//! [`band_decompose`] is the companion sweep-line primitive: it slices a
//! bag of overlapping rectangles into disjoint maximal horizontal bands
//! (the canonical form the DRC merges regions from), maintaining an
//! active set along the sweep instead of re-filtering every rectangle
//! per band.

use crate::{Coord, Point, Rect};

/// Inputs smaller than this skip grid construction; linear scans win.
const GRID_THRESHOLD: usize = 16;

/// Maximum bins per axis; bounds index memory on huge dies.
const MAX_BINS_PER_AXIS: Coord = 1024;

/// A uniform-grid spatial index over a fixed set of rectangles.
///
/// Build once with [`RectIndex::build`], then run any number of
/// [`query`](RectIndex::query) / [`query_point`](RectIndex::query_point) /
/// [`neighbors_within`](RectIndex::neighbors_within) lookups. Rectangle
/// ids are indices into the original slice (and into
/// [`rect`](RectIndex::rect)).
///
/// # Example
///
/// ```
/// use silc_geom::{Point, Rect, RectIndex};
/// # fn main() -> Result<(), silc_geom::GeomError> {
/// let rects = vec![
///     Rect::new(Point::new(0, 0), Point::new(2, 2))?,
///     Rect::new(Point::new(10, 10), Point::new(12, 12))?,
/// ];
/// let index = RectIndex::build(&rects);
/// // Only the nearby rect is a candidate within margin 3.
/// assert_eq!(index.query(rects[0], 3), vec![0]);
/// assert_eq!(index.query(rects[0], 20), vec![0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RectIndex {
    rects: Vec<Rect>,
    grid: Option<Grid>,
}

#[derive(Debug, Clone)]
struct Grid {
    origin: Point,
    cell: Coord,
    nx: u32,
    ny: u32,
    /// CSR row starts, length `nx * ny + 1`.
    starts: Vec<u32>,
    /// Rectangle ids, grouped by bin.
    entries: Vec<u32>,
    /// Per-rectangle minimum (bx, by) bin, for anchor deduplication.
    anchors: Vec<(u32, u32)>,
}

impl RectIndex {
    /// Builds an index over `rects`. Ids are slice positions.
    pub fn build(rects: &[Rect]) -> RectIndex {
        let rects = rects.to_vec();
        if rects.len() < GRID_THRESHOLD {
            return RectIndex { rects, grid: None };
        }

        let bounds = rects
            .iter()
            .copied()
            .reduce(|a, b| a.union(b))
            .expect("len checked above");

        // Bin edge: twice the mean feature dimension, clamped so the
        // grid never exceeds MAX_BINS_PER_AXIS bins per axis.
        let mean_dim: Coord = rects
            .iter()
            .map(|r| (r.width() + r.height()) / 2)
            .sum::<Coord>()
            / rects.len() as Coord;
        let ceil_div = |a: Coord, b: Coord| (a + b - 1) / b;
        let mut cell = (mean_dim * 2).max(1);
        cell = cell
            .max(ceil_div(bounds.width(), MAX_BINS_PER_AXIS))
            .max(ceil_div(bounds.height(), MAX_BINS_PER_AXIS));

        let nx = (bounds.width() / cell + 1) as u32;
        let ny = (bounds.height() / cell + 1) as u32;
        let origin = bounds.min();
        let bin_of =
            |v: Coord, o: Coord, n: u32| -> u32 { (((v - o) / cell).max(0) as u32).min(n - 1) };

        // CSR fill: count, prefix-sum, scatter.
        let n_bins = nx as usize * ny as usize;
        let mut counts = vec![0u32; n_bins + 1];
        let mut anchors = Vec::with_capacity(rects.len());
        for r in &rects {
            let bx0 = bin_of(r.left(), origin.x, nx);
            let bx1 = bin_of(r.right(), origin.x, nx);
            let by0 = bin_of(r.bottom(), origin.y, ny);
            let by1 = bin_of(r.top(), origin.y, ny);
            anchors.push((bx0, by0));
            for by in by0..=by1 {
                for bx in bx0..=bx1 {
                    counts[(by * nx + bx) as usize + 1] += 1;
                }
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let starts = counts;
        let mut cursor = starts[..n_bins].to_vec();
        let mut entries = vec![0u32; starts[n_bins] as usize];
        for (id, r) in rects.iter().enumerate() {
            let (bx0, by0) = anchors[id];
            let bx1 = bin_of(r.right(), origin.x, nx);
            let by1 = bin_of(r.top(), origin.y, ny);
            for by in by0..=by1 {
                for bx in bx0..=bx1 {
                    let bin = (by * nx + bx) as usize;
                    entries[cursor[bin] as usize] = id as u32;
                    cursor[bin] += 1;
                }
            }
        }

        RectIndex {
            rects,
            grid: Some(Grid {
                origin,
                cell,
                nx,
                ny,
                starts,
                entries,
                anchors,
            }),
        }
    }

    /// Number of indexed rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when the index holds no rectangles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Number of uniform-grid bins behind this index, or 0 when the
    /// input was small enough that queries are plain linear scans.
    /// Observability only — the DRC's `--stats` output reports it.
    pub fn bin_count(&self) -> usize {
        self.grid.as_ref().map_or(0, |g| g.starts.len() - 1)
    }

    /// The indexed rectangle with id `id`.
    pub fn rect(&self, id: u32) -> Rect {
        self.rects[id as usize]
    }

    /// All indexed rectangles, in id order.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Ids of every rectangle that touches (overlaps or abuts, including
    /// corner contact) `probe` grown outward by `margin`, in ascending id
    /// order.
    ///
    /// With `margin = 0` this is exactly the set of rectangles touching
    /// `probe`; with `margin = s` it is a superset of every rectangle
    /// within spacing `s` of `probe` on both axes — the candidate set a
    /// spacing rule must examine.
    pub fn query(&self, probe: Rect, margin: Coord) -> Vec<u32> {
        let (l, b) = (probe.left() - margin, probe.bottom() - margin);
        let (r, t) = (probe.right() + margin, probe.top() + margin);
        let touches = |c: Rect| c.left() <= r && l <= c.right() && c.bottom() <= t && b <= c.top();

        let Some(grid) = &self.grid else {
            return (0..self.rects.len() as u32)
                .filter(|&id| touches(self.rects[id as usize]))
                .collect();
        };

        let bin_of = |v: Coord, o: Coord, n: u32| -> u32 {
            (((v - o) / grid.cell).max(0) as u32).min(n - 1)
        };
        let qbx0 = bin_of(l, grid.origin.x, grid.nx);
        let qbx1 = bin_of(r, grid.origin.x, grid.nx);
        let qby0 = bin_of(b, grid.origin.y, grid.ny);
        let qby1 = bin_of(t, grid.origin.y, grid.ny);

        let mut out = Vec::new();
        for by in qby0..=qby1 {
            for bx in qbx0..=qbx1 {
                let bin = (by * grid.nx + bx) as usize;
                let lo = grid.starts[bin] as usize;
                let hi = grid.starts[bin + 1] as usize;
                for &id in &grid.entries[lo..hi] {
                    // Anchor dedup: only the first query-window bin this
                    // rectangle occupies reports it.
                    let (abx, aby) = grid.anchors[id as usize];
                    if abx.max(qbx0) != bx || aby.max(qby0) != by {
                        continue;
                    }
                    if touches(self.rects[id as usize]) {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Ids of every rectangle containing `p` (boundary inclusive), in
    /// ascending id order.
    pub fn query_point(&self, p: Point) -> Vec<u32> {
        let Some(grid) = &self.grid else {
            return (0..self.rects.len() as u32)
                .filter(|&id| self.rects[id as usize].contains_point(p))
                .collect();
        };
        let bin_of = |v: Coord, o: Coord, n: u32| -> u32 {
            (((v - o) / grid.cell).max(0) as u32).min(n - 1)
        };
        let bx = bin_of(p.x, grid.origin.x, grid.nx);
        let by = bin_of(p.y, grid.origin.y, grid.ny);
        let bin = (by * grid.nx + bx) as usize;
        let lo = grid.starts[bin] as usize;
        let hi = grid.starts[bin + 1] as usize;
        let mut out: Vec<u32> = grid.entries[lo..hi]
            .iter()
            .copied()
            .filter(|&id| self.rects[id as usize].contains_point(p))
            .collect();
        out.sort_unstable();
        // A point on a bin boundary may also hit rects anchored in the
        // previous bin row/column; the inclusive binning of rectangle
        // edges guarantees any rect *containing* p occupies p's bin, so
        // no second lookup is needed.
        out.dedup();
        out
    }

    /// Nearest-neighbour iteration for spacing rules: ids `j != id` whose
    /// rectangle is within spacing `s` of rectangle `id` on **both** axes
    /// (the design-rule notion of "closer than `s`"), ascending.
    pub fn neighbors_within(&self, id: u32, s: Coord) -> Vec<u32> {
        let probe = self.rects[id as usize];
        self.query(probe, s)
            .into_iter()
            .filter(|&j| {
                if j == id {
                    return false;
                }
                let (gx, gy) = probe.axis_gaps(self.rects[j as usize]);
                gx < s && gy < s
            })
            .collect()
    }
}

/// Decomposes a bag of (possibly overlapping) rectangles into disjoint
/// maximal rectangles by horizontal-band sweep.
///
/// The plane is cut at every distinct rectangle top/bottom; within each
/// band the x-spans of rectangles crossing it are merged; vertically
/// adjacent bands with identical spans are then fused. The sweep keeps an
/// active set ordered by entry (rectangles sorted by bottom edge, expired
/// by top edge) so each band costs O(active) rather than O(n).
///
/// Output is deterministic: sorted by `(left, right, bottom)`.
pub fn band_decompose(rects: &[Rect]) -> Vec<Rect> {
    if rects.is_empty() {
        return Vec::new();
    }
    let mut ys: Vec<Coord> = rects.iter().flat_map(|r| [r.bottom(), r.top()]).collect();
    ys.sort_unstable();
    ys.dedup();

    // Sweep bottom-to-top with an active set.
    let mut by_bottom: Vec<usize> = (0..rects.len()).collect();
    by_bottom.sort_unstable_by_key(|&i| rects[i].bottom());
    let mut next = 0usize;
    let mut active: Vec<usize> = Vec::new();

    let mut bands: Vec<Rect> = Vec::new();
    for w in ys.windows(2) {
        let (y0, y1) = (w[0], w[1]);
        while next < by_bottom.len() && rects[by_bottom[next]].bottom() <= y0 {
            active.push(by_bottom[next]);
            next += 1;
        }
        active.retain(|&i| rects[i].top() > y0);
        if active.is_empty() {
            continue;
        }
        let mut spans: Vec<(Coord, Coord)> = active
            .iter()
            .map(|&i| (rects[i].left(), rects[i].right()))
            .collect();
        spans.sort_unstable();
        let mut merged: Vec<(Coord, Coord)> = Vec::new();
        for (lo, hi) in spans {
            match merged.last_mut() {
                Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        for (lo, hi) in merged {
            bands.push(
                Rect::new(Point::new(lo, y0), Point::new(hi, y1))
                    .expect("bands have positive extent"),
            );
        }
    }

    // Fuse vertically adjacent bands with identical x spans.
    bands.sort_unstable_by_key(|r| (r.left(), r.right(), r.bottom()));
    let mut fused: Vec<Rect> = Vec::new();
    for band in bands {
        match fused.last_mut() {
            Some(last)
                if last.left() == band.left()
                    && last.right() == band.right()
                    && last.top() == band.bottom() =>
            {
                *last = last.union(band);
            }
            _ => fused.push(band),
        }
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::from_origin_size(Point::new(x, y), w, h).unwrap()
    }

    /// Brute-force oracle for query().
    fn brute_query(rects: &[Rect], probe: Rect, margin: Coord) -> Vec<u32> {
        let grown = Rect::new(
            Point::new(probe.left() - margin, probe.bottom() - margin),
            Point::new(probe.right() + margin, probe.top() + margin),
        )
        .unwrap();
        (0..rects.len() as u32)
            .filter(|&i| rects[i as usize].touches(grown))
            .collect()
    }

    #[test]
    fn small_input_linear_path() {
        let rects = vec![rect(0, 0, 2, 2), rect(5, 0, 2, 2), rect(100, 100, 2, 2)];
        let idx = RectIndex::build(&rects);
        assert_eq!(idx.query(rects[0], 3), vec![0, 1]);
        assert_eq!(idx.query(rects[0], 0), vec![0]);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn grid_path_finds_edge_and_corner_touches() {
        // 40 rects in a row, each abutting the next: force the grid path.
        let rects: Vec<Rect> = (0..40).map(|i| rect(i * 4, 0, 4, 4)).collect();
        let idx = RectIndex::build(&rects);
        // Rect 10 touches 9 and 11 (shared edges) at margin 0.
        assert_eq!(idx.query(rects[10], 0), vec![9, 10, 11]);
        // Corner touch across a diagonal.
        let mut diag: Vec<Rect> = (0..20).map(|i| rect(i * 3, i * 3, 3, 3)).collect();
        diag.push(rect(100, 0, 2, 2)); // far away
        let idx = RectIndex::build(&diag);
        assert_eq!(idx.query(diag[5], 0), vec![4, 5, 6]);
    }

    #[test]
    fn query_point_hits_boundary() {
        let rects: Vec<Rect> = (0..30).map(|i| rect(i * 10, 0, 5, 5)).collect();
        let idx = RectIndex::build(&rects);
        assert_eq!(idx.query_point(Point::new(12, 3)), vec![1]);
        assert_eq!(idx.query_point(Point::new(15, 5)), vec![1]); // corner
        assert!(idx.query_point(Point::new(7, 3)).is_empty());
    }

    #[test]
    fn neighbors_within_excludes_self_and_far() {
        let rects: Vec<Rect> = (0..30).map(|i| rect(i * 10, 0, 4, 4)).collect();
        let idx = RectIndex::build(&rects);
        // Gap between consecutive rects is 6.
        assert!(idx.neighbors_within(5, 6).is_empty());
        assert_eq!(idx.neighbors_within(5, 7), vec![4, 6]);
    }

    #[test]
    fn empty_index() {
        let idx = RectIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(idx.query(rect(0, 0, 1, 1), 100).is_empty());
        assert!(idx.query_point(Point::ORIGIN).is_empty());
    }

    #[test]
    fn band_decompose_basics() {
        assert!(band_decompose(&[]).is_empty());
        // Two abutting halves fuse into one rect.
        let out = band_decompose(&[rect(0, 0, 4, 2), rect(0, 2, 4, 2)]);
        assert_eq!(out, vec![rect(0, 0, 4, 4)]);
        // Overlap resolves to disjoint cover of the union.
        let out = band_decompose(&[rect(0, 0, 4, 4), rect(2, 2, 4, 4)]);
        let area: i64 = out.iter().map(Rect::area).sum();
        assert_eq!(area, 28);
        for (i, a) in out.iter().enumerate() {
            for b in &out[i + 1..] {
                assert!(!a.overlaps(*b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn query_matches_brute_force(
            specs in prop::collection::vec((0i64..60, 0i64..60, 1i64..10, 1i64..10), 1..60),
            probe in (0i64..60, 0i64..60, 1i64..10, 1i64..10),
            margin in 0i64..8,
        ) {
            let rects: Vec<Rect> = specs.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
            let idx = RectIndex::build(&rects);
            let p = rect(probe.0, probe.1, probe.2, probe.3);
            prop_assert_eq!(idx.query(p, margin), brute_query(&rects, p, margin));
        }

        #[test]
        fn query_point_matches_brute_force(
            specs in prop::collection::vec((0i64..40, 0i64..40, 1i64..8, 1i64..8), 1..50),
            px in 0i64..48, py in 0i64..48,
        ) {
            let rects: Vec<Rect> = specs.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
            let idx = RectIndex::build(&rects);
            let p = Point::new(px, py);
            let brute: Vec<u32> = (0..rects.len() as u32)
                .filter(|&i| rects[i as usize].contains_point(p))
                .collect();
            prop_assert_eq!(idx.query_point(p), brute);
        }

        #[test]
        fn band_decompose_preserves_area_and_disjointness(
            specs in prop::collection::vec((0i64..30, 0i64..30, 1i64..10, 1i64..10), 1..20),
        ) {
            let rects: Vec<Rect> = specs.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
            let bands = band_decompose(&rects);
            for (i, a) in bands.iter().enumerate() {
                for b in &bands[i + 1..] {
                    prop_assert!(!a.overlaps(*b), "{a} overlaps {b}");
                }
            }
            // Exact cover: every input corner-sample point is covered
            // iff some input rect covers it.
            for &(x, y, w, h) in &specs {
                let inner = Point::new(x + w / 2, y + h / 2);
                prop_assert!(bands.iter().any(|b| b.contains_point(inner)));
            }
            let total_input_bbox = rects.iter().copied().reduce(|a, b| a.union(b)).unwrap();
            let band_bbox = bands.iter().copied().reduce(|a, b| a.union(b)).unwrap();
            prop_assert_eq!(total_input_bbox, band_bbox);
        }
    }
}
