use crate::{Point, Rect, Vector};
use std::fmt;

/// One of the eight Manhattan symmetries: the dihedral group D4.
///
/// Hierarchical layout places each cell instance under one of these
/// orientations plus a translation. Closure under composition is what makes
/// arbitrary nesting of cells work, so the group operation
/// ([`compose`](Orientation::compose)) and inverses are provided and tested
/// for the group laws.
///
/// Naming: `R<n>` rotates counter-clockwise by `n` degrees; `M` variants
/// mirror about the y-axis (negate x) *before* rotating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// Rotate 90° counter-clockwise.
    R90,
    /// Rotate 180°.
    R180,
    /// Rotate 270° counter-clockwise.
    R270,
    /// Mirror x (reflect about the y-axis).
    MX,
    /// Mirror x then rotate 90°. Equals a reflection about the diagonal.
    MX90,
    /// Mirror x then rotate 180°. Equals mirror y.
    MX180,
    /// Mirror x then rotate 270°. Equals a reflection about the
    /// anti-diagonal.
    MX270,
}

impl Orientation {
    /// All eight orientations, identity first.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MX,
        Orientation::MX90,
        Orientation::MX180,
        Orientation::MX270,
    ];

    /// Applies the orientation to a displacement vector.
    pub fn apply(self, v: Vector) -> Vector {
        let Vector { x, y } = v;
        match self {
            Orientation::R0 => Vector::new(x, y),
            Orientation::R90 => Vector::new(-y, x),
            Orientation::R180 => Vector::new(-x, -y),
            Orientation::R270 => Vector::new(y, -x),
            Orientation::MX => Vector::new(-x, y),
            Orientation::MX90 => Vector::new(-y, -x),
            Orientation::MX180 => Vector::new(x, -y),
            Orientation::MX270 => Vector::new(y, x),
        }
    }

    /// Group composition: `a.compose(b)` applies `b` first, then `a`.
    pub fn compose(self, other: Orientation) -> Orientation {
        // Represent as (mirror, rotation quarter-turns): v -> R^r (M^m v).
        let (m1, r1) = self.decompose();
        let (m2, r2) = other.decompose();
        // self ∘ other: first M^m2 R^r2... careful: our canonical form is
        // "mirror first, then rotate". other = R^r2 M^m2, self = R^r1 M^m1.
        // self∘other = R^r1 M^m1 R^r2 M^m2. Use M R = R^-1 M to normalize:
        // M^m1 R^r2 = R^(r2 * sign) M^m1 where sign = -1 if m1 else +1.
        let r2_adj = if m1 { (4 - r2) % 4 } else { r2 };
        let r = (r1 + r2_adj) % 4;
        let m = m1 ^ m2;
        Orientation::recompose(m, r)
    }

    /// The inverse element: `o.compose(o.inverse()) == R0`.
    pub fn inverse(self) -> Orientation {
        for cand in Orientation::ALL {
            if self.compose(cand) == Orientation::R0 {
                return cand;
            }
        }
        unreachable!("every group element has an inverse")
    }

    /// True if the orientation swaps the x and y axes (odd quarter-turns),
    /// i.e. widths and heights exchange.
    pub fn swaps_axes(self) -> bool {
        matches!(
            self,
            Orientation::R90 | Orientation::R270 | Orientation::MX90 | Orientation::MX270
        )
    }

    /// True for the four reflected (improper) elements.
    pub fn is_mirrored(self) -> bool {
        matches!(
            self,
            Orientation::MX | Orientation::MX90 | Orientation::MX180 | Orientation::MX270
        )
    }

    fn decompose(self) -> (bool, u8) {
        match self {
            Orientation::R0 => (false, 0),
            Orientation::R90 => (false, 1),
            Orientation::R180 => (false, 2),
            Orientation::R270 => (false, 3),
            Orientation::MX => (true, 0),
            Orientation::MX90 => (true, 1),
            Orientation::MX180 => (true, 2),
            Orientation::MX270 => (true, 3),
        }
    }

    fn recompose(mirror: bool, rot: u8) -> Orientation {
        match (mirror, rot % 4) {
            (false, 0) => Orientation::R0,
            (false, 1) => Orientation::R90,
            (false, 2) => Orientation::R180,
            (false, 3) => Orientation::R270,
            (true, 0) => Orientation::MX,
            (true, 1) => Orientation::MX90,
            (true, 2) => Orientation::MX180,
            (true, 3) => Orientation::MX270,
            _ => unreachable!(),
        }
    }

    /// The CIF direction vector of the rotated +x axis, for the `R` clause
    /// of a CIF `C` (call) command.
    pub fn cif_direction(self) -> Vector {
        self.apply(Vector::new(1, 0))
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::R0 => "R0",
            Orientation::R90 => "R90",
            Orientation::R180 => "R180",
            Orientation::R270 => "R270",
            Orientation::MX => "MX",
            Orientation::MX90 => "MX90",
            Orientation::MX180 => "MX180",
            Orientation::MX270 => "MX270",
        };
        f.write_str(s)
    }
}

/// A rigid placement: orientation followed by translation.
///
/// `Transform` maps cell-local coordinates into parent coordinates:
/// `p' = orient(p) + offset`. Composition follows function application
/// order: `(a * b)(p) = a(b(p))` — see [`Transform::then`].
///
/// # Example
///
/// ```
/// use silc_geom::{Orientation, Point, Transform, Vector};
/// let t = Transform::new(Orientation::R90, Point::new(5, 0));
/// assert_eq!(t.apply(Point::new(1, 0)), Point::new(5, 1));
/// let back = t.inverse();
/// assert_eq!(back.apply(t.apply(Point::new(2, 3))), Point::new(2, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transform {
    /// Orientation applied before translation.
    pub orientation: Orientation,
    /// Translation applied after orientation, in parent coordinates.
    pub offset: Point,
}

impl Transform {
    /// The identity placement.
    pub const IDENTITY: Transform = Transform {
        orientation: Orientation::R0,
        offset: Point::ORIGIN,
    };

    /// Creates a transform from an orientation and a final translation.
    pub const fn new(orientation: Orientation, offset: Point) -> Transform {
        Transform {
            orientation,
            offset,
        }
    }

    /// A pure translation.
    pub const fn translate(offset: Point) -> Transform {
        Transform {
            orientation: Orientation::R0,
            offset,
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Point) -> Point {
        let v = self.orientation.apply(p.to_vector());
        Point::new(v.x + self.offset.x, v.y + self.offset.y)
    }

    /// Applies the transform to a rectangle (the image of an axis-aligned
    /// rectangle under a Manhattan transform is axis-aligned).
    pub fn apply_rect(&self, r: Rect) -> Rect {
        let a = self.apply(r.min());
        let b = self.apply(r.max());
        Rect::new(a, b).expect("manhattan transform of a non-empty rect is non-empty")
    }

    /// Composition `self ∘ other`: apply `other` first, then `self`. This is
    /// the operation used when flattening hierarchy — a child instance's
    /// transform is composed under its parent's.
    pub fn then(&self, inner: Transform) -> Transform {
        Transform {
            orientation: self.orientation.compose(inner.orientation),
            offset: self.apply(inner.offset),
        }
    }

    /// The inverse placement.
    pub fn inverse(&self) -> Transform {
        let inv = self.orientation.inverse();
        let back = inv.apply(-self.offset.to_vector());
        Transform {
            orientation: inv,
            offset: back.to_point(),
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}", self.orientation, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rotations_act_correctly() {
        let v = Vector::new(1, 0);
        assert_eq!(Orientation::R0.apply(v), Vector::new(1, 0));
        assert_eq!(Orientation::R90.apply(v), Vector::new(0, 1));
        assert_eq!(Orientation::R180.apply(v), Vector::new(-1, 0));
        assert_eq!(Orientation::R270.apply(v), Vector::new(0, -1));
        assert_eq!(Orientation::MX.apply(v), Vector::new(-1, 0));
        assert_eq!(
            Orientation::MX180.apply(Vector::new(1, 2)),
            Vector::new(1, -2)
        );
    }

    #[test]
    fn composition_matches_sequential_application() {
        let v = Vector::new(3, 7);
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                assert_eq!(
                    a.compose(b).apply(v),
                    a.apply(b.apply(v)),
                    "compose mismatch for {a} o {b}"
                );
            }
        }
    }

    #[test]
    fn group_laws() {
        // Identity, inverses, closure (closure is by construction).
        for a in Orientation::ALL {
            assert_eq!(a.compose(Orientation::R0), a);
            assert_eq!(Orientation::R0.compose(a), a);
            assert_eq!(a.compose(a.inverse()), Orientation::R0);
            assert_eq!(a.inverse().compose(a), Orientation::R0);
        }
        // Associativity on all triples.
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                for c in Orientation::ALL {
                    assert_eq!(a.compose(b).compose(c), a.compose(b.compose(c)));
                }
            }
        }
    }

    #[test]
    fn mirror_elements_flagged() {
        assert!(!Orientation::R90.is_mirrored());
        assert!(Orientation::MX90.is_mirrored());
        assert!(Orientation::R90.swaps_axes());
        assert!(!Orientation::MX.swaps_axes());
    }

    #[test]
    fn rect_transform_swaps_dimensions() {
        let r = Rect::from_origin_size(Point::new(0, 0), 4, 2).unwrap();
        let t = Transform::new(Orientation::R90, Point::ORIGIN);
        let rr = t.apply_rect(r);
        assert_eq!(rr.width(), 2);
        assert_eq!(rr.height(), 4);
        assert_eq!(rr.area(), r.area());
    }

    #[test]
    fn transform_then_matches_nested_application() {
        let inner = Transform::new(Orientation::R90, Point::new(3, 1));
        let outer = Transform::new(Orientation::MX, Point::new(-2, 5));
        let p = Point::new(7, -4);
        assert_eq!(outer.then(inner).apply(p), outer.apply(inner.apply(p)));
    }

    #[test]
    fn transform_inverse_roundtrips() {
        let ts = [
            Transform::IDENTITY,
            Transform::new(Orientation::R90, Point::new(10, -3)),
            Transform::new(Orientation::MX270, Point::new(-7, 2)),
        ];
        for t in ts {
            let p = Point::new(13, 21);
            assert_eq!(t.inverse().apply(t.apply(p)), p);
            assert_eq!(t.apply(t.inverse().apply(p)), p);
        }
    }

    #[test]
    fn cif_direction_of_rotations() {
        assert_eq!(Orientation::R0.cif_direction(), Vector::new(1, 0));
        assert_eq!(Orientation::R90.cif_direction(), Vector::new(0, 1));
        assert_eq!(Orientation::R180.cif_direction(), Vector::new(-1, 0));
    }

    #[test]
    fn display_names() {
        assert_eq!(Orientation::MX90.to_string(), "MX90");
        let t = Transform::new(Orientation::R180, Point::new(1, 2));
        assert_eq!(t.to_string(), "R180 + (1, 2)");
    }

    fn arb_orientation() -> impl Strategy<Value = Orientation> {
        (0usize..8).prop_map(|i| Orientation::ALL[i])
    }

    proptest! {
        #[test]
        fn orientation_preserves_manhattan_length(
            o in arb_orientation(), x in -100i64..100, y in -100i64..100,
        ) {
            let v = Vector::new(x, y);
            prop_assert_eq!(o.apply(v).manhattan_length(), v.manhattan_length());
        }

        #[test]
        fn transform_preserves_rect_area(
            o in arb_orientation(),
            ox in -100i64..100, oy in -100i64..100,
            x in -50i64..50, y in -50i64..50, w in 1i64..30, h in 1i64..30,
        ) {
            let t = Transform::new(o, Point::new(ox, oy));
            let r = Rect::from_origin_size(Point::new(x, y), w, h).unwrap();
            prop_assert_eq!(t.apply_rect(r).area(), r.area());
        }

        #[test]
        fn then_is_associative(
            o1 in arb_orientation(), o2 in arb_orientation(), o3 in arb_orientation(),
            x1 in -20i64..20, y1 in -20i64..20,
            x2 in -20i64..20, y2 in -20i64..20,
            x3 in -20i64..20, y3 in -20i64..20,
        ) {
            let a = Transform::new(o1, Point::new(x1, y1));
            let b = Transform::new(o2, Point::new(x2, y2));
            let c = Transform::new(o3, Point::new(x3, y3));
            prop_assert_eq!(a.then(b).then(c), a.then(b.then(c)));
        }
    }
}
