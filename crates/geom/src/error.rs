use std::error::Error;
use std::fmt;

/// Error produced when constructing or manipulating geometric objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// A rectangle was given zero or negative extent on some axis.
    EmptyRect {
        /// Requested width (may be zero or negative).
        width: i64,
        /// Requested height (may be zero or negative).
        height: i64,
    },
    /// A polygon had fewer than three vertices.
    DegeneratePolygon {
        /// Number of vertices supplied.
        vertices: usize,
    },
    /// A polygon's edges intersect each other (it is not simple).
    SelfIntersectingPolygon,
    /// A path had no points, or a non-positive width.
    DegeneratePath {
        /// Number of centre-line points supplied.
        points: usize,
        /// Requested wire width.
        width: i64,
    },
    /// An interval's low bound exceeded its high bound.
    InvalidInterval {
        /// Low bound supplied.
        lo: i64,
        /// High bound supplied.
        hi: i64,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::EmptyRect { width, height } => {
                write!(f, "rectangle has empty extent ({width} x {height})")
            }
            GeomError::DegeneratePolygon { vertices } => {
                write!(f, "polygon needs at least 3 vertices, got {vertices}")
            }
            GeomError::SelfIntersectingPolygon => {
                write!(f, "polygon edges intersect each other")
            }
            GeomError::DegeneratePath { points, width } => {
                write!(f, "path is degenerate ({points} points, width {width})")
            }
            GeomError::InvalidInterval { lo, hi } => {
                write!(f, "interval low bound {lo} exceeds high bound {hi}")
            }
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            GeomError::EmptyRect {
                width: 0,
                height: 3,
            },
            GeomError::DegeneratePolygon { vertices: 2 },
            GeomError::SelfIntersectingPolygon,
            GeomError::DegeneratePath {
                points: 0,
                width: 2,
            },
            GeomError::InvalidInterval { lo: 5, hi: 1 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
