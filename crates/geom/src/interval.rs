use crate::{Coord, GeomError};
use std::fmt;

/// A closed 1-D interval `[lo, hi]` with `lo <= hi`.
///
/// Intervals are the working currency of scanline algorithms: channel
/// density computation, maximal-rect merging in the DRC, and span occupancy
/// in the routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    lo: Coord,
    hi: Coord,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidInterval`] when `lo > hi`. Point
    /// intervals (`lo == hi`) are allowed.
    pub fn new(lo: Coord, hi: Coord) -> Result<Interval, GeomError> {
        if lo > hi {
            return Err(GeomError::InvalidInterval { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// Low bound.
    pub const fn lo(&self) -> Coord {
        self.lo
    }

    /// High bound.
    pub const fn hi(&self) -> Coord {
        self.hi
    }

    /// `hi - lo`.
    pub const fn length(&self) -> Coord {
        self.hi - self.lo
    }

    /// True when `x` lies within the closed interval.
    pub fn contains(&self, x: Coord) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// True when the closed intervals share at least a point.
    pub fn overlaps(&self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// True when the *open* interiors intersect (shared endpoints do not
    /// count). Channel routing uses this: two nets may share a track if
    /// their spans merely abut.
    pub fn overlaps_open(&self, other: Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Intersection of the closed intervals, if non-empty.
    pub fn intersection(&self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Smallest interval covering both.
    pub fn hull(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// A set of disjoint closed intervals, kept sorted and coalesced.
///
/// Inserting an interval merges it with any intervals it touches or
/// overlaps, so the set is always minimal. Used for scanline coverage
/// (union area) and track occupancy.
///
/// # Example
///
/// ```
/// use silc_geom::{Interval, IntervalSet};
/// # fn main() -> Result<(), silc_geom::GeomError> {
/// let mut s = IntervalSet::new();
/// s.insert(Interval::new(0, 4)?);
/// s.insert(Interval::new(6, 9)?);
/// s.insert(Interval::new(4, 6)?); // bridges the gap
/// assert_eq!(s.iter().count(), 1);
/// assert_eq!(s.total_length(), 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    // Sorted by lo; pairwise disjoint and non-touching.
    spans: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> IntervalSet {
        IntervalSet::default()
    }

    /// Number of disjoint spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no interval has been inserted.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Inserts an interval, coalescing with any spans it touches.
    pub fn insert(&mut self, iv: Interval) {
        // Find insertion window of spans that touch/overlap iv.
        let mut lo = iv.lo;
        let mut hi = iv.hi;
        let start = self.spans.partition_point(|s| s.hi < lo);
        let mut end = start;
        while end < self.spans.len() && self.spans[end].lo <= hi {
            lo = lo.min(self.spans[end].lo);
            hi = hi.max(self.spans[end].hi);
            end += 1;
        }
        self.spans.splice(start..end, [Interval { lo, hi }]);
    }

    /// True when `x` is covered by some span.
    pub fn contains(&self, x: Coord) -> bool {
        let i = self.spans.partition_point(|s| s.hi < x);
        i < self.spans.len() && self.spans[i].contains(x)
    }

    /// True when the closed interval `iv` intersects the set.
    pub fn overlaps(&self, iv: Interval) -> bool {
        let i = self.spans.partition_point(|s| s.hi < iv.lo);
        i < self.spans.len() && self.spans[i].lo <= iv.hi
    }

    /// True when the *open* interior of `iv` intersects the set (abutment
    /// allowed).
    pub fn overlaps_open(&self, iv: Interval) -> bool {
        self.spans.iter().any(|s| s.overlaps_open(iv))
    }

    /// Sum of span lengths (total covered measure).
    pub fn total_length(&self) -> Coord {
        self.spans.iter().map(Interval::length).sum()
    }

    /// Iterates over the disjoint spans in increasing order.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.spans.iter()
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut s = IntervalSet::new();
        for iv in iter {
            s.insert(iv);
        }
        s
    }
}

impl Extend<Interval> for IntervalSet {
    fn extend<I: IntoIterator<Item = Interval>>(&mut self, iter: I) {
        for iv in iter {
            self.insert(iv);
        }
    }
}

impl<'a> IntoIterator for &'a IntervalSet {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;
    fn into_iter(self) -> Self::IntoIter {
        self.spans.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(lo: Coord, hi: Coord) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn interval_basics() {
        let a = iv(2, 8);
        assert_eq!(a.length(), 6);
        assert!(a.contains(2));
        assert!(a.contains(8));
        assert!(!a.contains(9));
        assert!(Interval::new(5, 3).is_err());
        assert!(Interval::new(5, 5).is_ok());
    }

    #[test]
    fn closed_vs_open_overlap() {
        let a = iv(0, 4);
        let b = iv(4, 8);
        assert!(a.overlaps(b));
        assert!(!a.overlaps_open(b));
        let c = iv(3, 5);
        assert!(a.overlaps_open(c));
    }

    #[test]
    fn intersection_and_hull() {
        let a = iv(0, 5);
        let b = iv(3, 9);
        assert_eq!(a.intersection(b), Some(iv(3, 5)));
        assert_eq!(a.hull(b), iv(0, 9));
        assert_eq!(iv(0, 1).intersection(iv(3, 4)), None);
    }

    #[test]
    fn set_coalesces_touching_spans() {
        let mut s = IntervalSet::new();
        s.insert(iv(0, 4));
        s.insert(iv(6, 9));
        assert_eq!(s.len(), 2);
        s.insert(iv(4, 6));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next(), Some(&iv(0, 9)));
    }

    #[test]
    fn set_merges_overlapping_runs() {
        let mut s = IntervalSet::new();
        for i in 0..10 {
            s.insert(iv(i * 3, i * 3 + 2)); // gaps of 1 between spans
        }
        assert_eq!(s.len(), 10);
        s.insert(iv(0, 30)); // swallows everything
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_length(), 30);
    }

    #[test]
    fn set_membership_queries() {
        let s: IntervalSet = [iv(0, 2), iv(10, 12)].into_iter().collect();
        assert!(s.contains(1));
        assert!(s.contains(10));
        assert!(!s.contains(5));
        assert!(s.overlaps(iv(2, 3)));
        assert!(!s.overlaps_open(iv(2, 3)));
        assert!(!s.overlaps(iv(4, 9)));
    }

    #[test]
    fn extend_works() {
        let mut s = IntervalSet::new();
        s.extend([iv(0, 1), iv(5, 6)]);
        assert_eq!(s.len(), 2);
    }

    proptest! {
        #[test]
        fn set_invariants_hold(ranges in prop::collection::vec((0i64..200, 0i64..20), 0..40)) {
            let mut s = IntervalSet::new();
            for (lo, len) in ranges {
                s.insert(iv(lo, lo + len));
            }
            // Spans are sorted, disjoint and non-touching.
            let spans: Vec<_> = s.iter().copied().collect();
            for w in spans.windows(2) {
                prop_assert!(w[0].hi() < w[1].lo(), "spans must not touch: {} {}", w[0], w[1]);
            }
            // Total length equals the length of the union computed naively.
            let mut covered = vec![false; 260];
            for sp in &spans {
                for x in sp.lo()..sp.hi() {
                    covered[x as usize] = true;
                }
            }
            let naive: i64 = covered.iter().filter(|&&c| c).count() as i64;
            prop_assert_eq!(s.total_length(), naive);
        }

        #[test]
        fn insertion_order_is_irrelevant(ranges in prop::collection::vec((0i64..100, 1i64..10), 1..12)) {
            let ivs: Vec<_> = ranges.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let forward: IntervalSet = ivs.iter().copied().collect();
            let backward: IntervalSet = ivs.iter().rev().copied().collect();
            prop_assert_eq!(forward, backward);
        }
    }
}
