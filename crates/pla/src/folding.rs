//! Simple column folding for PLA personalities.
//!
//! Large PLAs waste area on sparsely used input columns. *Column folding*
//! lets two input columns share one physical column when the product
//! terms using them occupy disjoint **row ranges**: one signal enters
//! from the top of the column, the other from the bottom, and the column
//! is split between them. This module computes a greedy fold plan and the
//! resulting width saving — the classic technique contemporary with the
//! paper (folding entered the literature right as PLAs became the
//! dominant regular block).
//!
//! The plan is a *metric* (reported by experiment E4's area column and
//! usable by floorplanning); the stylized layout generator emits the
//! unfolded form — see `DESIGN.md`'s substitution table.

use crate::PlaSpec;
use silc_geom::Coord;
use silc_logic::Lit;
use std::fmt;

/// A computed fold plan for the AND plane of a personality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldPlan {
    /// Pairs of AND-plane column indices sharing a physical column; the
    /// first occupies the upper row range, the second the lower.
    /// Column indexing: column `2i` is input `i` true, `2i + 1` its
    /// complement.
    pub pairs: Vec<(usize, usize)>,
    /// Unfolded AND-plane column count (`2 × inputs`).
    pub original_columns: usize,
    /// Physical column count after folding.
    pub folded_columns: usize,
}

impl FoldPlan {
    /// Columns eliminated by the plan.
    pub fn columns_saved(&self) -> usize {
        self.original_columns - self.folded_columns
    }

    /// Fraction of AND-plane width saved (0.0 when nothing folds).
    pub fn width_saving(&self) -> f64 {
        if self.original_columns == 0 {
            0.0
        } else {
            self.columns_saved() as f64 / self.original_columns as f64
        }
    }

    /// AND-plane width in lambda after folding, at the generator's column
    /// pitch.
    pub fn folded_and_plane_width(&self) -> Coord {
        self.folded_columns as Coord * crate::layout_gen::COL_PITCH
    }
}

impl fmt::Display for FoldPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fold plan: {} -> {} columns ({} pairs, {:.0}% saved)",
            self.original_columns,
            self.folded_columns,
            self.pairs.len(),
            self.width_saving() * 100.0
        )
    }
}

/// Computes a greedy column-fold plan for `spec`'s AND plane.
///
/// Two columns are *compatible* when the row ranges they are used in do
/// not overlap (with one spare row between them for the column break).
/// The greedy pass sorts columns by the first row they use and pairs each
/// unpaired column with the next compatible one — the standard
/// interval-style heuristic.
///
/// Unused columns (an input polarity no term samples) fold away entirely
/// and are not counted in the physical column total.
pub fn fold_plan(spec: &PlaSpec) -> FoldPlan {
    let n_cols = 2 * spec.num_inputs();
    // Row usage range per column.
    let mut range: Vec<Option<(usize, usize)>> = vec![None; n_cols];
    for (r, (cube, _)) in spec.terms().iter().enumerate() {
        for i in 0..spec.num_inputs() {
            let col = match cube.lit(i) {
                Lit::One => Some(2 * i),
                Lit::Zero => Some(2 * i + 1),
                Lit::DontCare => None,
            };
            if let Some(c) = col {
                let e = range[c].get_or_insert((r, r));
                e.0 = e.0.min(r);
                e.1 = e.1.max(r);
            }
        }
    }

    // Used columns sorted by first-use row.
    let mut used: Vec<(usize, (usize, usize))> = range
        .iter()
        .enumerate()
        .filter_map(|(c, r)| r.map(|r| (c, r)))
        .collect();
    used.sort_by_key(|&(_, (lo, _))| lo);

    let mut paired = vec![false; n_cols];
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for a in 0..used.len() {
        let (ca, (_, hi_a)) = used[a];
        if paired[ca] {
            continue;
        }
        for &(cb, (lo_b, _)) in &used[a + 1..] {
            if paired[cb] || ca == cb {
                continue;
            }
            // Need a clear row between the two segments for the break.
            if lo_b > hi_a + 1 {
                paired[ca] = true;
                paired[cb] = true;
                pairs.push((ca, cb));
                break;
            }
        }
    }

    let unpaired_used = used.iter().filter(|&&(c, _)| !paired[c]).count();
    FoldPlan {
        folded_columns: pairs.len() + unpaired_used,
        original_columns: n_cols,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Minimize;
    use silc_logic::functions::{benchmark_suite, majority, traffic_light};
    use silc_logic::{Cube, OutBit, TruthTable};

    #[test]
    fn disjoint_row_ranges_fold() {
        // Two terms: the first uses input a (rows 0), the second input b
        // (row 2) — with a gap row between, columns can share.
        let mut t = TruthTable::new(2, 1);
        t.push_row(Cube::parse("1-").unwrap(), vec![OutBit::On])
            .unwrap();
        t.push_row(Cube::parse("0-").unwrap(), vec![OutBit::On])
            .unwrap();
        t.push_row(Cube::parse("-1").unwrap(), vec![OutBit::On])
            .unwrap();
        let spec = PlaSpec::from_truth_table(&t, Minimize::None).unwrap();
        let plan = fold_plan(&spec);
        // Columns used: a(row0), a'(row1), b(row2). a (rows 0..0) and b
        // (rows 2..2) can share (gap at row 1).
        assert_eq!(plan.original_columns, 4);
        assert_eq!(plan.pairs.len(), 1);
        assert_eq!(plan.folded_columns, 2);
        assert_eq!(plan.columns_saved(), 2);
    }

    #[test]
    fn dense_columns_do_not_fold() {
        // Majority-3: every column is used across overlapping row ranges.
        let spec = PlaSpec::from_truth_table(&majority(3), Minimize::Exact).unwrap();
        let plan = fold_plan(&spec);
        assert!(plan.pairs.is_empty(), "{plan}");
        // Unused complement columns still fold away from the physical
        // count.
        assert!(plan.folded_columns <= plan.original_columns);
    }

    #[test]
    fn fold_preserves_row_disjointness_invariant() {
        for (name, table) in benchmark_suite() {
            let spec = PlaSpec::from_truth_table(&table, Minimize::Heuristic).unwrap();
            let plan = fold_plan(&spec);
            // Recompute ranges and verify every pair is truly disjoint.
            let n = spec.num_inputs();
            let mut range = vec![None::<(usize, usize)>; 2 * n];
            for (r, (cube, _)) in spec.terms().iter().enumerate() {
                for i in 0..n {
                    let col = match cube.lit(i) {
                        silc_logic::Lit::One => Some(2 * i),
                        silc_logic::Lit::Zero => Some(2 * i + 1),
                        silc_logic::Lit::DontCare => None,
                    };
                    if let Some(c) = col {
                        let e = range[c].get_or_insert((r, r));
                        e.0 = e.0.min(r);
                        e.1 = e.1.max(r);
                    }
                }
            }
            for &(a, b) in &plan.pairs {
                let (_, hi_a) = range[a].expect("paired columns are used");
                let (lo_b, _) = range[b].expect("paired columns are used");
                assert!(lo_b > hi_a + 1, "{name}: pair ({a},{b}) overlaps");
            }
            assert!(plan.folded_columns <= plan.original_columns);
        }
    }

    #[test]
    fn traffic_controller_folds_meaningfully() {
        let spec = PlaSpec::from_truth_table(&traffic_light(), Minimize::Exact).unwrap();
        let plan = fold_plan(&spec);
        // The exact personality is sparse enough that something folds or
        // at least unused polarities vanish.
        assert!(plan.folded_columns < plan.original_columns, "{plan}");
        assert!(plan.folded_and_plane_width() < 2 * 5 * crate::layout_gen::COL_PITCH);
    }

    #[test]
    fn display_reports_savings() {
        let spec = PlaSpec::from_truth_table(&majority(3), Minimize::Exact).unwrap();
        let s = fold_plan(&spec).to_string();
        assert!(s.contains("fold plan"));
        assert!(s.contains("columns"));
    }
}
