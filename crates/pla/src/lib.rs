//! # silc-pla — programmed logic array generation
//!
//! "There is also an increasing necessity for program descriptions of
//! sub-structures. This occurs when regular blocks, such as memories and
//! PLAs, are programmed for specific functions." — this crate is that
//! program-to-silicon path for PLAs:
//!
//! * [`PlaSpec`] — the personality matrix: product terms (input cubes)
//!   and the outputs each term drives, built from a
//!   [`silc_logic::TruthTable`] with selectable minimization
//!   ([`Minimize`]) and cross-output **term sharing** (identical cubes
//!   from different outputs occupy one row);
//! * [`generate_layout`] — a stylized Mead–Conway nMOS PLA layout: poly
//!   input columns and metal product rows in the AND plane, the
//!   transpose in the OR plane, depletion pullups on the row ends, a
//!   butting-contact seam between the planes, and ports for every input
//!   and output. The artwork is DRC-clean under
//!   `RuleSet::mead_conway_nmos` (experiment E7 checks exactly that).
//!
//! The layout is *stylistically* faithful (layers, transistor formation,
//! contact discipline, pitches) rather than a transistor-complete
//! electrical PLA — ground diffusion returns are omitted; DESIGN.md
//! documents the substitution.
//!
//! # Example
//!
//! ```
//! use silc_logic::functions::traffic_light;
//! use silc_pla::{generate_layout, Minimize, PlaSpec};
//! use silc_layout::Library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = PlaSpec::from_truth_table(&traffic_light(), Minimize::Exact)?;
//! let mut lib = Library::new();
//! let id = generate_layout(&spec, &mut lib, "traffic")?;
//! assert!(lib.cell(id).is_some());
//! # Ok(())
//! # }
//! ```

mod folding;
mod layout_gen;
mod spec;

pub use folding::{fold_plan, FoldPlan};
pub use layout_gen::{generate_layout, generate_layout_traced, PlaError};
pub use spec::{Minimize, PlaSpec};
