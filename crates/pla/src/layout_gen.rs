use crate::PlaSpec;
use silc_geom::{Coord, Point, Rect, Transform};
use silc_layout::{Cell, CellId, Element, Instance, Layer, LayoutError, Library, Port};
use silc_logic::Lit;
use std::error::Error;
use std::fmt;

/// Column pitch in lambda (per input polarity column / output column).
pub const COL_PITCH: Coord = 12;
/// Row pitch in lambda (per product term).
pub const ROW_PITCH: Coord = 12;

/// Error produced by PLA layout generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlaError {
    /// The personality has no terms, inputs or outputs.
    EmptyPla,
    /// The layout database rejected the generated cells.
    Layout(String),
}

impl fmt::Display for PlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaError::EmptyPla => write!(f, "cannot generate an empty PLA"),
            PlaError::Layout(m) => write!(f, "layout construction failed: {m}"),
        }
    }
}

impl Error for PlaError {}

impl From<LayoutError> for PlaError {
    fn from(e: LayoutError) -> PlaError {
        PlaError::Layout(e.to_string())
    }
}

fn rect(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
    Rect::new(Point::new(x0, y0), Point::new(x1, y1)).expect("generator geometry is non-empty")
}

/// Geometry of the PLA floorplan for a given personality.
struct Plan {
    n_in: usize,
    /// x of poly input column `k` (two per input: true, complement).
    col_x: Vec<Coord>,
    /// x of the AND/OR seam connector.
    seam_x: Coord,
    /// x of output metal column `j`.
    out_x: Vec<Coord>,
    /// y of product row `r`.
    row_y: Vec<Coord>,
    /// x of the pullup column (left of the AND plane).
    pullup_x: Coord,
    y_bot: Coord,
    y_top: Coord,
}

impl Plan {
    fn of(spec: &PlaSpec) -> Plan {
        let n_in = spec.num_inputs();
        let n_out = spec.num_outputs();
        let n_terms = spec.num_terms();
        let col_x: Vec<Coord> = (0..2 * n_in).map(|k| k as Coord * COL_PITCH).collect();
        let last_col = *col_x.last().unwrap_or(&0);
        let seam_x = last_col + COL_PITCH;
        let out_x: Vec<Coord> = (0..n_out)
            .map(|j| seam_x + COL_PITCH + j as Coord * COL_PITCH)
            .collect();
        let row_y: Vec<Coord> = (0..n_terms).map(|r| r as Coord * ROW_PITCH).collect();
        Plan {
            n_in,
            col_x,
            seam_x,
            out_x,
            row_y,
            pullup_x: -COL_PITCH,
            y_bot: -6,
            y_top: (n_terms.max(1) as Coord - 1) * ROW_PITCH + 6,
        }
    }
}

/// The layout dimensions `(width, height)` in lambda that
/// [`generate_layout`] will produce for `spec`.
pub(crate) fn dimensions(spec: &PlaSpec) -> (Coord, Coord) {
    let plan = Plan::of(spec);
    let left = plan.pullup_x - 4; // pullup implant is the leftmost feature
    let right = plan.out_x.last().map_or(plan.seam_x + 2, |x| x + 4);
    (right - left, plan.y_top - plan.y_bot)
}

/// Generates the stylized nMOS PLA layout for `spec` into `lib`,
/// returning the new top cell.
///
/// The produced hierarchy: one `<name>_and` crosspoint cell, one
/// `<name>_or` crosspoint cell, one `<name>_pullup` and one `<name>_seam`
/// cell, instanced once per programmed site — the regular-block structure
/// that makes PLAs compile so compactly.
///
/// Ports: one poly port per input (true column, at the bottom edge) and
/// one metal port per output (at the bottom edge).
///
/// # Errors
///
/// * [`PlaError::EmptyPla`] for a personality with no terms, inputs or
///   outputs.
/// * [`PlaError::Layout`] if cell names collide in `lib`.
pub fn generate_layout(spec: &PlaSpec, lib: &mut Library, name: &str) -> Result<CellId, PlaError> {
    generate_layout_traced(spec, lib, name, &silc_trace::Tracer::disabled())
}

/// [`generate_layout`] with a [`silc_trace::Tracer`]: records a
/// `pla.layout` span and a `pla.devices` counter.
///
/// # Errors
///
/// Same as [`generate_layout`].
pub fn generate_layout_traced(
    spec: &PlaSpec,
    lib: &mut Library,
    name: &str,
    tracer: &silc_trace::Tracer,
) -> Result<CellId, PlaError> {
    let mut s = silc_trace::span!(tracer, "pla.layout");
    s.attr("terms", spec.num_terms() as u64);
    tracer.add(
        "pla.devices",
        (spec.and_plane_devices() + spec.or_plane_devices()) as u64,
    );
    if spec.num_terms() == 0 || spec.num_inputs() == 0 || spec.num_outputs() == 0 {
        return Err(PlaError::EmptyPla);
    }
    let plan = Plan::of(spec);

    // --- Leaf cells (local coordinates centred on the crosspoint). ---

    // AND-plane crosspoint: poly column runs vertically through (0,0);
    // the cell adds the pulldown diffusion and its contact to the metal
    // row.
    let mut and_cell = Cell::new(format!("{name}_and"));
    and_cell.push_element(Element::rect(Layer::Diffusion, rect(-3, -2, 6, 2)));
    and_cell.push_element(Element::rect(Layer::Contact, rect(3, -1, 5, 1)));
    let and_id = lib.add_cell(and_cell)?;

    // OR-plane crosspoint: poly row runs horizontally through (0,0); the
    // diffusion hangs below with its contact to the metal output column.
    let mut or_cell = Cell::new(format!("{name}_or"));
    or_cell.push_element(Element::rect(Layer::Diffusion, rect(-2, -6, 2, 3)));
    or_cell.push_element(Element::rect(Layer::Contact, rect(-1, -5, 1, -3)));
    let or_id = lib.add_cell(or_cell)?;

    // Row pullup: depletion transistor at the left end of the row.
    let mut pullup = Cell::new(format!("{name}_pullup"));
    pullup.push_element(Element::rect(Layer::Implant, rect(-4, -4, 8, 4)));
    pullup.push_element(Element::rect(Layer::Diffusion, rect(-3, -2, 6, 2)));
    pullup.push_element(Element::rect(Layer::Poly, rect(-1, -4, 1, 4)));
    pullup.push_element(Element::rect(Layer::Contact, rect(3, -1, 5, 1)));
    let pullup_id = lib.add_cell(pullup)?;

    // Seam: butting contact joining the metal product row (AND side) to
    // the poly product row (OR side).
    let mut seam = Cell::new(format!("{name}_seam"));
    seam.push_element(Element::rect(Layer::Poly, rect(-2, -2, 2, 2)));
    seam.push_element(Element::rect(Layer::Contact, rect(-1, -1, 1, 1)));
    let seam_id = lib.add_cell(seam)?;

    // --- Top cell. ---
    let mut top = Cell::new(name);

    // Input poly columns (true and complement per input).
    for &x in &plan.col_x {
        top.push_element(Element::rect(
            Layer::Poly,
            rect(x - 1, plan.y_bot, x + 1, plan.y_top),
        ));
    }
    // Product rows: metal across the AND plane (covering the pullup
    // contact on the left and the seam contact on the right).
    for &y in &plan.row_y {
        top.push_element(Element::rect(
            Layer::Metal,
            rect(plan.pullup_x + 2, y - 2, plan.seam_x + 2, y + 2),
        ));
        // Poly row across the OR plane, from the seam pad to 2 lambda
        // beyond the last output column's gate (gate overhang rule).
        let or_right = plan.out_x.last().expect("outputs checked") + 4;
        top.push_element(Element::rect(
            Layer::Poly,
            rect(plan.seam_x + 2, y - 1, or_right, y + 1),
        ));
        top.push_instance(Instance::place(
            pullup_id,
            Transform::translate(Point::new(plan.pullup_x, y)),
        ));
        top.push_instance(Instance::place(
            seam_id,
            Transform::translate(Point::new(plan.seam_x, y)),
        ));
    }
    // Output metal columns.
    for &x in &plan.out_x {
        top.push_element(Element::rect(
            Layer::Metal,
            rect(x - 2, plan.y_bot, x + 2, plan.y_top),
        ));
    }

    // Programmed crosspoints.
    for (r, (cube, taps)) in spec.terms().iter().enumerate() {
        let y = plan.row_y[r];
        for i in 0..plan.n_in {
            let col = match cube.lit(i) {
                Lit::One => Some(plan.col_x[2 * i]),
                Lit::Zero => Some(plan.col_x[2 * i + 1]),
                Lit::DontCare => None,
            };
            if let Some(x) = col {
                top.push_instance(Instance::place(
                    and_id,
                    Transform::translate(Point::new(x, y)),
                ));
            }
        }
        for (j, &tap) in taps.iter().enumerate() {
            if tap {
                top.push_instance(Instance::place(
                    or_id,
                    Transform::translate(Point::new(plan.out_x[j], y)),
                ));
            }
        }
    }

    // Ports: inputs on the true columns, outputs on the metal columns.
    for (i, input) in spec.input_names().iter().enumerate() {
        top.push_port(Port::new(
            input.clone(),
            Layer::Poly,
            Point::new(plan.col_x[2 * i], plan.y_bot),
        ));
    }
    for (j, output) in spec.output_names().iter().enumerate() {
        top.push_port(Port::new(
            output.clone(),
            Layer::Metal,
            Point::new(plan.out_x[j], plan.y_bot),
        ));
    }

    Ok(lib.add_cell(top)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Minimize, PlaSpec};
    use silc_drc::{check, RuleSet};
    use silc_layout::CellStats;
    use silc_logic::functions::{benchmark_suite, majority, traffic_light};

    fn spec(table: &silc_logic::TruthTable) -> PlaSpec {
        PlaSpec::from_truth_table(table, Minimize::Exact).unwrap()
    }

    #[test]
    fn majority_layout_is_drc_clean() {
        let mut lib = Library::new();
        let id = generate_layout(&spec(&majority(3)), &mut lib, "maj3").unwrap();
        let report = check(&lib, id, &RuleSet::mead_conway_nmos()).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn whole_benchmark_suite_is_drc_clean() {
        for (name, table) in benchmark_suite() {
            let mut lib = Library::new();
            let s = PlaSpec::from_truth_table(&table, Minimize::Heuristic).unwrap();
            let id = generate_layout(&s, &mut lib, name).unwrap();
            let report = check(&lib, id, &RuleSet::mead_conway_nmos()).unwrap();
            assert!(report.is_clean(), "{name}: {report}");
        }
    }

    #[test]
    fn dimensions_match_bbox() {
        let s = spec(&traffic_light());
        let mut lib = Library::new();
        let id = generate_layout(&s, &mut lib, "traffic").unwrap();
        let stats = CellStats::compute(&lib, id).unwrap();
        let bbox = stats.bbox.unwrap();
        let (w, h) = s.area_estimate();
        assert_eq!(bbox.width(), w, "width");
        assert_eq!(bbox.height(), h, "height");
    }

    #[test]
    fn device_counts_match_instances() {
        let s = spec(&traffic_light());
        let mut lib = Library::new();
        let id = generate_layout(&s, &mut lib, "traffic").unwrap();
        let top = lib.cell(id).unwrap();
        let and_id = lib.cell_by_name("traffic_and").unwrap();
        let or_id = lib.cell_by_name("traffic_or").unwrap();
        let and_count: usize = top.instances().iter().filter(|i| i.cell == and_id).count();
        let or_count: usize = top.instances().iter().filter(|i| i.cell == or_id).count();
        assert_eq!(and_count, s.and_plane_devices());
        assert_eq!(or_count, s.or_plane_devices());
    }

    #[test]
    fn ports_present_for_every_signal() {
        let s = spec(&traffic_light());
        let mut lib = Library::new();
        let id = generate_layout(&s, &mut lib, "traffic").unwrap();
        let top = lib.cell(id).unwrap();
        for name in s.input_names().iter().chain(s.output_names()) {
            assert!(top.port(name).is_some(), "missing port {name}");
        }
    }

    #[test]
    fn minimization_shrinks_layout() {
        let t = majority(4);
        let raw = PlaSpec::from_truth_table(&t, Minimize::None).unwrap();
        let min = PlaSpec::from_truth_table(&t, Minimize::Exact).unwrap();
        let (_, raw_h) = raw.area_estimate();
        let (_, min_h) = min.area_estimate();
        assert!(min_h < raw_h);
    }

    #[test]
    fn empty_pla_rejected() {
        let t = silc_logic::TruthTable::new(2, 1);
        let s = PlaSpec::from_truth_table(&t, Minimize::None).unwrap();
        let mut lib = Library::new();
        assert!(matches!(
            generate_layout(&s, &mut lib, "void"),
            Err(PlaError::EmptyPla)
        ));
    }

    #[test]
    fn name_collision_diagnosed() {
        let s = spec(&majority(3));
        let mut lib = Library::new();
        generate_layout(&s, &mut lib, "m").unwrap();
        assert!(matches!(
            generate_layout(&s, &mut lib, "m"),
            Err(PlaError::Layout(_))
        ));
    }
}
