use silc_geom::Coord;
use silc_logic::{minimize_exact, minimize_heuristic, Cover, Cube, LogicError, TruthTable};
use std::fmt;

/// Which minimizer to run on each output before building the personality
/// matrix. `None` programs the table verbatim — the ablation baseline of
/// experiment E4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Minimize {
    /// Program the rows exactly as given.
    None,
    /// Quine–McCluskey + branch-and-bound (minimum terms, small inputs).
    #[default]
    Exact,
    /// Espresso-style expand/irredundant (scales to wide functions).
    Heuristic,
}

/// A PLA personality: the programming document turned into product terms.
///
/// Terms are shared across outputs: two outputs needing the same product
/// term drive it from one AND-plane row — the economy that makes
/// multi-output PLAs attractive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaSpec {
    input_names: Vec<String>,
    output_names: Vec<String>,
    /// `(cube, taps)`: which outputs (by index) this term feeds.
    terms: Vec<(Cube, Vec<bool>)>,
}

impl PlaSpec {
    /// Builds a personality from a truth table, minimizing each output's
    /// ON-cover (with its don't-care set) and sharing identical terms.
    ///
    /// # Errors
    ///
    /// Propagates [`LogicError`] from the minimizers (e.g. exact
    /// minimization beyond 14 inputs).
    pub fn from_truth_table(table: &TruthTable, minimize: Minimize) -> Result<PlaSpec, LogicError> {
        Self::from_truth_table_traced(table, minimize, &silc_trace::Tracer::disabled())
    }

    /// [`from_truth_table`](PlaSpec::from_truth_table) with a
    /// [`silc_trace::Tracer`]: records a `pla.minimize` span and a
    /// `pla.terms` counter.
    ///
    /// # Errors
    ///
    /// Same as [`from_truth_table`](PlaSpec::from_truth_table).
    pub fn from_truth_table_traced(
        table: &TruthTable,
        minimize: Minimize,
        tracer: &silc_trace::Tracer,
    ) -> Result<PlaSpec, LogicError> {
        let _s = silc_trace::span!(tracer, "pla.minimize");
        let spec = Self::from_truth_table_impl(table, minimize)?;
        tracer.add("pla.terms", spec.num_terms() as u64);
        Ok(spec)
    }

    fn from_truth_table_impl(
        table: &TruthTable,
        minimize: Minimize,
    ) -> Result<PlaSpec, LogicError> {
        let n_out = table.num_outputs();
        let mut terms: Vec<(Cube, Vec<bool>)> = Vec::new();
        for o in 0..n_out {
            let on = table.on_cover(o)?;
            let dc = table.dc_cover(o)?;
            let cover = match minimize {
                Minimize::None => on,
                Minimize::Exact => minimize_exact(&on, &dc)?,
                Minimize::Heuristic => minimize_heuristic(&on, &dc)?,
            };
            for cube in cover.cubes() {
                match terms.iter_mut().find(|(c, _)| c == cube) {
                    Some((_, taps)) => taps[o] = true,
                    None => {
                        let mut taps = vec![false; n_out];
                        taps[o] = true;
                        terms.push((cube.clone(), taps));
                    }
                }
            }
        }
        Ok(PlaSpec {
            input_names: table.input_names().to_vec(),
            output_names: table.output_names().to_vec(),
            terms,
        })
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.output_names.len()
    }

    /// Number of product terms (AND-plane rows).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Input signal names.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output signal names.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// The personality rows.
    pub fn terms(&self) -> &[(Cube, Vec<bool>)] {
        &self.terms
    }

    /// Number of programmed crosspoints (transistors) in the AND plane.
    pub fn and_plane_devices(&self) -> usize {
        self.terms.iter().map(|(c, _)| c.literal_count()).sum()
    }

    /// Number of programmed crosspoints in the OR plane.
    pub fn or_plane_devices(&self) -> usize {
        self.terms
            .iter()
            .map(|(_, taps)| taps.iter().filter(|&&t| t).count())
            .sum()
    }

    /// Evaluates every output on a minterm — used to verify that
    /// minimization and sharing preserved the function.
    pub fn eval(&self, minterm: u64) -> Vec<bool> {
        let mut out = vec![false; self.num_outputs()];
        for (cube, taps) in &self.terms {
            if cube.covers_minterm(minterm) {
                for (o, &t) in taps.iter().enumerate() {
                    if t {
                        out[o] = true;
                    }
                }
            }
        }
        out
    }

    /// The ON-cover this personality realises for output `o`.
    ///
    /// # Panics
    ///
    /// Panics when `o` is out of range.
    pub fn output_cover(&self, o: usize) -> Cover {
        assert!(o < self.num_outputs());
        self.terms
            .iter()
            .filter(|(_, taps)| taps[o])
            .map(|(c, _)| c.clone())
            .collect::<Cover>()
    }

    /// Area estimate (width, height) in lambda of the generated layout,
    /// matching [`crate::generate_layout`]'s actual dimensions.
    pub fn area_estimate(&self) -> (Coord, Coord) {
        crate::layout_gen::dimensions(self)
    }
}

impl fmt::Display for PlaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pla {}x{} with {} terms",
            self.num_inputs(),
            self.num_outputs(),
            self.num_terms()
        )?;
        for (cube, taps) in &self.terms {
            let taps: String = taps.iter().map(|&t| if t { '1' } else { '0' }).collect();
            writeln!(f, "  {cube} {taps}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_logic::functions::{bcd_to_seven_segment, majority, traffic_light};
    use silc_logic::{OutBit, TruthTable};

    #[test]
    fn majority_spec() {
        let spec = PlaSpec::from_truth_table(&majority(3), Minimize::Exact).unwrap();
        assert_eq!(spec.num_inputs(), 3);
        assert_eq!(spec.num_outputs(), 1);
        assert_eq!(spec.num_terms(), 3); // ab + ac + bc
        assert_eq!(spec.and_plane_devices(), 6);
        assert_eq!(spec.or_plane_devices(), 3);
    }

    #[test]
    fn unminimized_keeps_rows() {
        let t = majority(3);
        let raw = PlaSpec::from_truth_table(&t, Minimize::None).unwrap();
        let min = PlaSpec::from_truth_table(&t, Minimize::Exact).unwrap();
        assert_eq!(raw.num_terms(), 4); // the four ON minterms
        assert!(min.num_terms() < raw.num_terms());
    }

    #[test]
    fn function_preserved_for_all_modes() {
        for table in [majority(4), bcd_to_seven_segment(), traffic_light()] {
            for mode in [Minimize::None, Minimize::Exact, Minimize::Heuristic] {
                let spec = PlaSpec::from_truth_table(&table, mode).unwrap();
                for m in 0..(1u64 << table.num_inputs()) {
                    let got = spec.eval(m);
                    for (o, &g) in got.iter().enumerate() {
                        // A don't-care output accepts anything.
                        if let Some(expected) = table.eval(o, m).unwrap() {
                            assert_eq!(g, expected, "{mode:?} output {o} minterm {m} diverged");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn terms_shared_across_outputs() {
        // Two outputs with an identical ON-cover must share all rows.
        let mut t = TruthTable::new(2, 2);
        t.push_row(Cube::parse("11").unwrap(), vec![OutBit::On, OutBit::On])
            .unwrap();
        t.push_row(Cube::parse("10").unwrap(), vec![OutBit::On, OutBit::On])
            .unwrap();
        let spec = PlaSpec::from_truth_table(&t, Minimize::Exact).unwrap();
        assert_eq!(spec.num_terms(), 1); // both outputs = a
        assert_eq!(spec.or_plane_devices(), 2);
    }

    #[test]
    fn output_cover_is_equivalent() {
        let t = traffic_light();
        let spec = PlaSpec::from_truth_table(&t, Minimize::Exact).unwrap();
        for o in 0..t.num_outputs() {
            let realised = spec.output_cover(o);
            let on = t.on_cover(o).unwrap();
            // Realised may use don't-cares, so check on covers only.
            assert!(realised.covers(&on), "output {o} lost minterms");
        }
    }

    #[test]
    fn display_shows_personality() {
        let spec = PlaSpec::from_truth_table(&majority(3), Minimize::Exact).unwrap();
        let s = spec.to_string();
        assert!(s.contains("3x1"));
        assert!(s.contains("3 terms"));
    }
}
