//! # silc-extract — circuit extraction from mask geometry
//!
//! The inverse of layout generation: recover the structural description
//! (a transistor [`silc_netlist::Netlist`]) from the physical one. This
//! closes the loop between the paper's three descriptions — a compiled
//! layout can be extracted and compared against the intended structure
//! (layout-versus-schematic), which is how experiment E7 verifies the
//! generators.
//!
//! Extraction model (Mead–Conway nMOS):
//!
//! * conducting regions are connected geometry on diffusion, poly and
//!   metal — with diffusion **split at transistor channels** (poly over
//!   diffusion interrupts the diffusion wire);
//! * contact cuts join the metal region above them to the poly or
//!   diffusion region below; buried contacts join poly to diffusion;
//! * every poly∩diffusion crossing is a transistor: gate = the poly
//!   region, source/drain = the diffusion regions abutting the channel;
//!   an implant over the channel makes it a depletion device
//!   (`"dep"`), otherwise enhancement (`"enh"`);
//! * nets covering a cell [`silc_layout::Port`] inherit the port's name.
//!
//! All geometric resolution (which region does this cut/port/channel
//! touch?) runs through [`silc_geom::RectIndex`] lookups rather than
//! layer-wide scans, and per-gate precomputation parallelises behind the
//! `parallel` feature; results are identical either way. The all-pairs
//! reference implementation survives as [`extract_brute`] (tests and the
//! `oracle` feature) and anchors the equivalence proptests.
//!
//! # Example
//!
//! ```
//! use silc_extract::extract;
//! use silc_layout::{Cell, Element, Layer, Library};
//! use silc_geom::{Point, Rect};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lib = Library::new();
//! let mut c = Cell::new("t");
//! // A poly line crossing a diffusion line: one transistor.
//! c.push_element(Element::rect(Layer::Diffusion, Rect::new(Point::new(0, 4), Point::new(12, 8))?));
//! c.push_element(Element::rect(Layer::Poly, Rect::new(Point::new(5, 0), Point::new(7, 12))?));
//! let id = lib.add_cell(c)?;
//! let extracted = extract(&lib, id)?;
//! assert_eq!(extracted.transistor_count(), 1);
//! # Ok(())
//! # }
//! ```

mod switch;

pub use switch::{switch_level_eval, Level, SwitchError};

use silc_drc::{merge_rects, Region};
use silc_geom::{Fingerprint, FpHasher, Point, Rect, RectIndex};
use silc_layout::{CellId, Layer, LayoutError, Library};
use silc_netlist::{Netlist, NetlistError};
use silc_trace::{span, Tracer};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced by extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExtractError {
    /// The root cell is not in the library.
    Layout(String),
    /// A gate had fewer or more than two adjacent diffusion regions —
    /// malformed transistor geometry.
    MalformedTransistor {
        /// Where the gate is.
        at: Rect,
        /// Number of adjacent diffusion regions found.
        diffusions: usize,
    },
    /// Netlist construction failed (duplicate names).
    Netlist(String),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Layout(m) => write!(f, "layout access failed: {m}"),
            ExtractError::MalformedTransistor { at, diffusions } => write!(
                f,
                "gate at {at} touches {diffusions} diffusion region(s), expected 2"
            ),
            ExtractError::Netlist(m) => write!(f, "netlist construction failed: {m}"),
        }
    }
}

impl Error for ExtractError {}

impl From<LayoutError> for ExtractError {
    fn from(e: LayoutError) -> ExtractError {
        ExtractError::Layout(e.to_string())
    }
}

impl From<NetlistError> for ExtractError {
    fn from(e: NetlistError) -> ExtractError {
        ExtractError::Netlist(e.to_string())
    }
}

/// The result of extraction.
#[derive(Debug)]
pub struct Extracted {
    /// The recovered transistor-level netlist.
    pub netlist: Netlist,
    /// One entry per transistor: (kind, gate rect).
    pub transistors: Vec<(String, Rect)>,
    /// Number of electrically distinct nets found.
    pub nets: usize,
}

impl Extracted {
    /// Number of recovered transistors.
    pub fn transistor_count(&self) -> usize {
        self.transistors.len()
    }
}

impl Fingerprint for Extracted {
    fn fp_hash(&self, h: &mut FpHasher) {
        self.netlist.fp_hash(h);
        h.write_len(self.transistors.len());
        for (kind, at) in &self.transistors {
            h.write_str(kind);
            at.fp_hash(h);
        }
        h.write_len(self.nets);
    }
}

/// Applies `f` to every item, in parallel when the `parallel` feature is
/// on, always in input order (results are identical to the serial path).
fn map_maybe_par<T, R>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    #[cfg(feature = "parallel")]
    if items.len() > 1 {
        use rayon::prelude::*;
        return items.par_iter().map(f).collect();
    }
    items.iter().map(f).collect()
}

/// Spatially indexed membership lookup over a list of [`Region`]s.
///
/// Region rects are concatenated in region order, so indexed rect ids are
/// non-decreasing in region id — the first (lowest-id) candidate a query
/// returns belongs to the first region a linear
/// `regions.iter().position(..)` scan would find, which keeps every
/// lookup equivalent to the brute-force scan it replaces.
struct RegionLookup {
    index: RectIndex,
    /// Indexed rect id → region id (non-decreasing).
    owner: Vec<u32>,
}

impl RegionLookup {
    fn build(regions: &[Region]) -> RegionLookup {
        let mut rects = Vec::new();
        let mut owner = Vec::new();
        for (i, region) in regions.iter().enumerate() {
            for &r in region.rects() {
                rects.push(r);
                owner.push(i as u32);
            }
        }
        RegionLookup {
            index: RectIndex::build(&rects),
            owner,
        }
    }

    /// Index of the first region touching `probe` — equivalent to
    /// `regions.iter().position(|r| r.touches_rect(probe))`.
    fn first_touching(&self, probe: Rect) -> Option<usize> {
        self.index
            .query(probe, 0)
            .first()
            .map(|&id| self.owner[id as usize] as usize)
    }

    /// Index of the first region containing point `p` — equivalent to a
    /// linear scan with `contains_point`.
    fn first_containing(&self, p: Point) -> Option<usize> {
        self.index
            .query_point(p)
            .first()
            .map(|&id| self.owner[id as usize] as usize)
    }

    /// Sorted, deduplicated indices of every region touching any of
    /// `probes`.
    fn touching_any(&self, probes: &[Rect]) -> Vec<usize> {
        let mut out: Vec<usize> = probes
            .iter()
            .flat_map(|&p| self.index.query(p, 0))
            .map(|id| self.owner[id as usize] as usize)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Extracts the transistor netlist of the flattened hierarchy under
/// `root`.
///
/// Net naming: a net whose geometry covers a port *of the root cell*
/// takes that port's name; other nets are named `n0`, `n1`, ... in a
/// deterministic (geometry-sorted) order.
///
/// # Errors
///
/// * [`ExtractError::Layout`] — unknown root;
/// * [`ExtractError::MalformedTransistor`] — a channel without exactly
///   two source/drain regions.
pub fn extract(lib: &Library, root: CellId) -> Result<Extracted, ExtractError> {
    extract_traced(lib, root, &Tracer::disabled())
}

/// [`extract`] with a [`Tracer`]: records `extract.{flatten,channels,
/// regions,netlist}` spans plus `extract.transistors` / `extract.nets`
/// counters. With a disabled tracer this is exactly [`extract`].
///
/// # Errors
///
/// Same as [`extract`].
pub fn extract_traced(
    lib: &Library,
    root: CellId,
    tracer: &Tracer,
) -> Result<Extracted, ExtractError> {
    let layers = {
        let _s = span!(tracer, "extract.flatten");
        silc_layout::flatten_to_rects(lib, root)?
    };
    let poly_rects = &layers[Layer::Poly.index()];
    let diff_rects = &layers[Layer::Diffusion.index()];
    let metal_rects = &layers[Layer::Metal.index()];
    let cut_rects = &layers[Layer::Contact.index()];
    let buried_rects = &layers[Layer::Buried.index()];
    let implant_rects = &layers[Layer::Implant.index()];

    // Channels: connected components of poly ∩ diff. A crossing fully
    // covered by a contact cut is a butting contact — a shorted junction,
    // not a transistor. Candidate diffusion and covering cuts both come
    // from index queries around each poly rect.
    let channel_span = span!(tracer, "extract.channels");
    let diff_index = RectIndex::build(diff_rects);
    let cut_index = RectIndex::build(cut_rects);
    let mut crossings: Vec<Rect> = Vec::new();
    for p in poly_rects {
        for j in diff_index.query(*p, 0) {
            if let Some(g) = p.intersection(diff_index.rect(j)) {
                let cuts_near: Vec<Rect> = cut_index
                    .query(g, 0)
                    .into_iter()
                    .map(|c| cut_index.rect(c))
                    .collect();
                if !region_covered(&cuts_near, g) {
                    crossings.push(g);
                }
            }
        }
    }
    let gates: Vec<Region> = merge_rects(&crossings);
    drop(channel_span);

    let region_span = span!(tracer, "extract.regions");
    // Source/drain diffusion: diffusion minus channels.
    let gate_rects: Vec<Rect> = gates.iter().flat_map(|g| g.rects().to_vec()).collect();
    let sd_rects = subtract_rects(diff_rects, &gate_rects);

    // Conducting regions.
    let diff_regions = merge_rects(&sd_rects);
    let poly_regions = merge_rects(poly_rects);
    let metal_regions = merge_rects(metal_rects);
    let diff_lookup = RegionLookup::build(&diff_regions);
    let poly_lookup = RegionLookup::build(&poly_regions);
    let metal_lookup = RegionLookup::build(&metal_regions);
    tracer.add(
        "extract.regions",
        (diff_regions.len() + poly_regions.len() + metal_regions.len()) as u64,
    );
    drop(region_span);

    // Node indexing: diff | poly | metal.
    let nd = diff_regions.len();
    let np = poly_regions.len();
    let total = nd + np + metal_regions.len();
    let mut uf = UnionFind::new(total);
    let diff_node = |i: usize| i;
    let poly_node = |i: usize| nd + i;
    let metal_node = |i: usize| nd + np + i;

    // Contacts join metal to poly/diffusion; buried joins poly to
    // diffusion. Each cut resolves its regions by index lookup.
    for cut in cut_rects {
        let m = metal_lookup.first_touching(*cut);
        let p = poly_lookup.first_touching(*cut);
        let d = diff_lookup.first_touching(*cut);
        if let (Some(m), Some(p)) = (m, p) {
            uf.union(metal_node(m), poly_node(p));
        }
        if let (Some(m), Some(d)) = (m, d) {
            uf.union(metal_node(m), diff_node(d));
        }
        // A cut with both poly and diffusion under it is a butting
        // contact joining all three.
        if let (Some(p), Some(d)) = (p, d) {
            uf.union(poly_node(p), diff_node(d));
        }
    }
    for buried in buried_rects {
        let p = poly_lookup.first_touching(*buried);
        let d = diff_lookup.first_touching(*buried);
        if let (Some(p), Some(d)) = (p, d) {
            uf.union(poly_node(p), diff_node(d));
        }
    }

    // Net naming: root ports claim their nets.
    let root_cell = lib
        .cell(root)
        .ok_or_else(|| ExtractError::Layout("no root".into()))?;
    let mut net_names: HashMap<usize, String> = HashMap::new();
    for port in root_cell.ports() {
        let region_node = match port.layer {
            Layer::Diffusion => diff_lookup.first_containing(port.at).map(diff_node),
            Layer::Poly => poly_lookup.first_containing(port.at).map(poly_node),
            Layer::Metal => metal_lookup.first_containing(port.at).map(metal_node),
            _ => None,
        };
        if let Some(node) = region_node {
            net_names.entry(uf.find(node)).or_insert(port.name.clone());
        }
    }

    // Per-gate geometry resolution is independent per gate → parallel
    // units; the netlist itself is then built serially in gate order so
    // anonymous net numbering (and the first error reported) is
    // deterministic.
    let netlist_span = span!(tracer, "extract.netlist");
    let implant_index = RectIndex::build(implant_rects);
    let resolved = map_maybe_par(&gates, |gate| {
        let gbox = gate.bbox();
        let gp = poly_lookup
            .touching_any(gate.rects())
            .first()
            .copied()
            .ok_or(ExtractError::MalformedTransistor {
                at: gbox,
                diffusions: 0,
            })?;
        let sd = diff_lookup.touching_any(gate.rects());
        if sd.len() != 2 {
            return Err(ExtractError::MalformedTransistor {
                at: gbox,
                diffusions: sd.len(),
            });
        }
        let kind = if implant_index
            .query(gbox, 0)
            .into_iter()
            .any(|i| implant_index.rect(i).contains_rect(gbox))
        {
            "dep"
        } else {
            "enh"
        };
        Ok((gbox, gp, [sd[0], sd[1]], kind))
    });

    // Build the netlist.
    let mut netlist = Netlist::new(root_cell.name().to_string());
    let mut net_of_node: HashMap<usize, silc_netlist::NetId> = HashMap::new();
    let mut next_anon = 0usize;
    let mut net_id = |node: usize,
                      uf: &mut UnionFind,
                      netlist: &mut Netlist,
                      net_names: &HashMap<usize, String>|
     -> silc_netlist::NetId {
        let rep = uf.find(node);
        if let Some(&id) = net_of_node.get(&rep) {
            return id;
        }
        let name = net_names.get(&rep).cloned().unwrap_or_else(|| {
            let n = format!("n{next_anon}");
            next_anon += 1;
            n
        });
        let id = netlist.add_net(name);
        net_of_node.insert(rep, id);
        id
    };

    let mut transistors: Vec<(String, Rect)> = Vec::new();
    for (t, resolved) in resolved.into_iter().enumerate() {
        let (gbox, gp, sd, kind) = resolved?;
        let g_net = net_id(poly_node(gp), &mut uf, &mut netlist, &net_names);
        let mut s_net = net_id(diff_node(sd[0]), &mut uf, &mut netlist, &net_names);
        let mut d_net = net_id(diff_node(sd[1]), &mut uf, &mut netlist, &net_names);
        // Canonical source/drain order so signatures are stable.
        if netlist.net_name(s_net) > netlist.net_name(d_net) {
            std::mem::swap(&mut s_net, &mut d_net);
        }
        netlist.add_instance(
            format!("m{t}"),
            kind,
            &[("gate", g_net), ("src", s_net), ("drn", d_net)],
        )?;
        transistors.push((kind.to_string(), gbox));
    }

    // Count all electrically distinct regions, including floating ones
    // that no transistor touches.
    let mut reps: Vec<usize> = (0..total).map(|i| uf.find(i)).collect();
    reps.sort_unstable();
    reps.dedup();
    let nets = reps.len();
    drop(netlist_span);
    tracer.add("extract.transistors", transistors.len() as u64);
    tracer.add("extract.nets", nets as u64);
    Ok(Extracted {
        netlist,
        transistors,
        nets,
    })
}

/// True when the union of `rects` fully covers `r`.
pub(crate) fn region_covered(rects: &[Rect], r: Rect) -> bool {
    silc_drc::region_contains_rect(rects, r)
}

/// Subtracts `cuts` from `base`, returning disjoint rectangles covering
/// `base − cuts` exactly.
///
/// Each base rectangle is carved independently against only the cuts that
/// touch it (an index query); cuts are applied in input order, so the
/// output is identical — rect for rect — to the all-pairs sweep that
/// applied every cut to every evolving slab.
fn subtract_rects(base: &[Rect], cuts: &[Rect]) -> Vec<Rect> {
    let cut_index = RectIndex::build(cuts);
    let mut out: Vec<Rect> = Vec::with_capacity(base.len());
    for &b in base {
        let mut slabs = vec![b];
        // Ascending ids = original cut order; cuts missing the base rect
        // cannot intersect any slab carved from it.
        for c in cut_index.query(b, 0) {
            let cut = cut_index.rect(c);
            let mut next: Vec<Rect> = Vec::with_capacity(slabs.len());
            for r in slabs {
                if let Some(overlap) = r.intersection(cut) {
                    // Up to four slabs around the overlap.
                    if overlap.top() < r.top() {
                        next.push(
                            Rect::new(
                                Point::new(r.left(), overlap.top()),
                                Point::new(r.right(), r.top()),
                            )
                            .expect("non-empty slab"),
                        );
                    }
                    if r.bottom() < overlap.bottom() {
                        next.push(
                            Rect::new(
                                Point::new(r.left(), r.bottom()),
                                Point::new(r.right(), overlap.bottom()),
                            )
                            .expect("non-empty slab"),
                        );
                    }
                    if r.left() < overlap.left() {
                        next.push(
                            Rect::new(
                                Point::new(r.left(), overlap.bottom()),
                                Point::new(overlap.left(), overlap.top()),
                            )
                            .expect("non-empty slab"),
                        );
                    }
                    if overlap.right() < r.right() {
                        next.push(
                            Rect::new(
                                Point::new(overlap.right(), overlap.bottom()),
                                Point::new(r.right(), overlap.top()),
                            )
                            .expect("non-empty slab"),
                        );
                    }
                } else {
                    next.push(r);
                }
            }
            slabs = next;
        }
        out.extend(slabs);
    }
    out
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The all-pairs reference extractor: every geometric resolution is a
/// linear scan, exactly as the pre-index implementation did it. Kept as
/// the equivalence oracle for the proptests and the benchmark baseline.
/// O(n²) — do not use on large layouts.
#[cfg(any(test, feature = "oracle"))]
pub fn extract_brute(lib: &Library, root: CellId) -> Result<Extracted, ExtractError> {
    let layers = silc_layout::flatten_to_rects(lib, root)?;
    let poly_rects = &layers[Layer::Poly.index()];
    let diff_rects = &layers[Layer::Diffusion.index()];
    let metal_rects = &layers[Layer::Metal.index()];
    let cut_rects = &layers[Layer::Contact.index()];
    let buried_rects = &layers[Layer::Buried.index()];
    let implant_rects = &layers[Layer::Implant.index()];

    let mut crossings: Vec<Rect> = Vec::new();
    for p in poly_rects {
        for d in diff_rects {
            if let Some(g) = p.intersection(*d) {
                if !region_covered(cut_rects, g) {
                    crossings.push(g);
                }
            }
        }
    }
    let gates: Vec<Region> = merge_rects(&crossings);

    let gate_rects: Vec<Rect> = gates.iter().flat_map(|g| g.rects().to_vec()).collect();
    let sd_rects = brute_subtract_rects(diff_rects, &gate_rects);

    let diff_regions = merge_rects(&sd_rects);
    let poly_regions = merge_rects(poly_rects);
    let metal_regions = merge_rects(metal_rects);

    let nd = diff_regions.len();
    let np = poly_regions.len();
    let total = nd + np + metal_regions.len();
    let mut uf = UnionFind::new(total);
    let diff_node = |i: usize| i;
    let poly_node = |i: usize| nd + i;
    let metal_node = |i: usize| nd + np + i;

    for cut in cut_rects {
        let m = metal_regions.iter().position(|r| r.touches_rect(*cut));
        let p = poly_regions.iter().position(|r| r.touches_rect(*cut));
        let d = diff_regions.iter().position(|r| r.touches_rect(*cut));
        if let (Some(m), Some(p)) = (m, p) {
            uf.union(metal_node(m), poly_node(p));
        }
        if let (Some(m), Some(d)) = (m, d) {
            uf.union(metal_node(m), diff_node(d));
        }
        if let (Some(p), Some(d)) = (p, d) {
            uf.union(poly_node(p), diff_node(d));
        }
    }
    for buried in buried_rects {
        let p = poly_regions.iter().position(|r| r.touches_rect(*buried));
        let d = diff_regions.iter().position(|r| r.touches_rect(*buried));
        if let (Some(p), Some(d)) = (p, d) {
            uf.union(poly_node(p), diff_node(d));
        }
    }

    let root_cell = lib
        .cell(root)
        .ok_or_else(|| ExtractError::Layout("no root".into()))?;
    let mut net_names: HashMap<usize, String> = HashMap::new();
    for port in root_cell.ports() {
        let covers = |r: &&Region| r.contains_point(port.at);
        let region_node = match port.layer {
            Layer::Diffusion => diff_regions.iter().position(|r| covers(&r)).map(diff_node),
            Layer::Poly => poly_regions.iter().position(|r| covers(&r)).map(poly_node),
            Layer::Metal => metal_regions
                .iter()
                .position(|r| covers(&r))
                .map(metal_node),
            _ => None,
        };
        if let Some(node) = region_node {
            net_names.entry(uf.find(node)).or_insert(port.name.clone());
        }
    }

    let mut netlist = Netlist::new(root_cell.name().to_string());
    let mut net_of_node: HashMap<usize, silc_netlist::NetId> = HashMap::new();
    let mut next_anon = 0usize;
    let mut net_id = |node: usize,
                      uf: &mut UnionFind,
                      netlist: &mut Netlist,
                      net_names: &HashMap<usize, String>|
     -> silc_netlist::NetId {
        let rep = uf.find(node);
        if let Some(&id) = net_of_node.get(&rep) {
            return id;
        }
        let name = net_names.get(&rep).cloned().unwrap_or_else(|| {
            let n = format!("n{next_anon}");
            next_anon += 1;
            n
        });
        let id = netlist.add_net(name);
        net_of_node.insert(rep, id);
        id
    };

    let mut transistors: Vec<(String, Rect)> = Vec::new();
    for (t, gate) in gates.iter().enumerate() {
        let gbox = gate.bbox();
        let gp = poly_regions
            .iter()
            .position(|r| gate.rects().iter().any(|g| r.touches_rect(*g)))
            .ok_or(ExtractError::MalformedTransistor {
                at: gbox,
                diffusions: 0,
            })?;
        let mut sd: Vec<usize> = diff_regions
            .iter()
            .enumerate()
            .filter(|(_, r)| gate.rects().iter().any(|g| r.touches_rect(*g)))
            .map(|(i, _)| i)
            .collect();
        sd.sort_unstable();
        sd.dedup();
        if sd.len() != 2 {
            return Err(ExtractError::MalformedTransistor {
                at: gbox,
                diffusions: sd.len(),
            });
        }
        let kind = if implant_rects.iter().any(|imp| imp.contains_rect(gbox)) {
            "dep"
        } else {
            "enh"
        };
        let g_net = net_id(poly_node(gp), &mut uf, &mut netlist, &net_names);
        let mut s_net = net_id(diff_node(sd[0]), &mut uf, &mut netlist, &net_names);
        let mut d_net = net_id(diff_node(sd[1]), &mut uf, &mut netlist, &net_names);
        if netlist.net_name(s_net) > netlist.net_name(d_net) {
            std::mem::swap(&mut s_net, &mut d_net);
        }
        netlist.add_instance(
            format!("m{t}"),
            kind,
            &[("gate", g_net), ("src", s_net), ("drn", d_net)],
        )?;
        transistors.push((kind.to_string(), gbox));
    }

    let mut reps: Vec<usize> = (0..total).map(|i| uf.find(i)).collect();
    reps.sort_unstable();
    reps.dedup();
    let nets = reps.len();
    Ok(Extracted {
        netlist,
        transistors,
        nets,
    })
}

/// The original all-cuts-over-all-slabs subtraction, kept for the oracle.
#[cfg(any(test, feature = "oracle"))]
fn brute_subtract_rects(base: &[Rect], cuts: &[Rect]) -> Vec<Rect> {
    let mut result: Vec<Rect> = base.to_vec();
    for cut in cuts {
        let mut next: Vec<Rect> = Vec::with_capacity(result.len());
        for r in result {
            if let Some(overlap) = r.intersection(*cut) {
                if overlap.top() < r.top() {
                    next.push(
                        Rect::new(
                            Point::new(r.left(), overlap.top()),
                            Point::new(r.right(), r.top()),
                        )
                        .expect("non-empty slab"),
                    );
                }
                if r.bottom() < overlap.bottom() {
                    next.push(
                        Rect::new(
                            Point::new(r.left(), r.bottom()),
                            Point::new(r.right(), overlap.bottom()),
                        )
                        .expect("non-empty slab"),
                    );
                }
                if r.left() < overlap.left() {
                    next.push(
                        Rect::new(
                            Point::new(r.left(), overlap.bottom()),
                            Point::new(overlap.left(), overlap.top()),
                        )
                        .expect("non-empty slab"),
                    );
                }
                if overlap.right() < r.right() {
                    next.push(
                        Rect::new(
                            Point::new(overlap.right(), overlap.bottom()),
                            Point::new(r.right(), overlap.top()),
                        )
                        .expect("non-empty slab"),
                    );
                }
            } else {
                next.push(r);
            }
        }
        result = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use silc_layout::{Cell, Element, Port};

    fn rect(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    /// A complete nMOS inverter: depletion pullup + enhancement pulldown.
    fn inverter(lib: &mut Library) -> CellId {
        let mut c = Cell::new("inv");
        // Vertical diffusion strip from gnd to vdd.
        c.push_element(Element::rect(Layer::Diffusion, rect(0, 0, 4, 30)));
        // Pulldown gate: input poly crossing at y 8..10.
        c.push_element(Element::rect(Layer::Poly, rect(-4, 8, 8, 10)));
        // Pullup gate at y 20..22, with implant making it depletion.
        c.push_element(Element::rect(Layer::Poly, rect(-4, 20, 8, 22)));
        c.push_element(Element::rect(Layer::Implant, rect(-2, 18, 6, 24)));
        // Output contact on the middle diffusion island, metal out.
        c.push_element(Element::rect(Layer::Contact, rect(1, 14, 3, 16)));
        c.push_element(Element::rect(Layer::Metal, rect(0, 13, 12, 17)));
        // Buried contact tying the pullup gate to the output (standard
        // depletion-load connection).
        c.push_element(Element::rect(Layer::Buried, rect(-4, 14, 0, 21)));
        // Ports.
        c.push_port(Port::new("in", Layer::Poly, Point::new(-4, 9)));
        c.push_port(Port::new("out", Layer::Metal, Point::new(12, 15)));
        c.push_port(Port::new("gnd", Layer::Diffusion, Point::new(2, 0)));
        c.push_port(Port::new("vdd", Layer::Diffusion, Point::new(2, 30)));
        lib.add_cell(c).unwrap()
    }

    #[test]
    fn single_transistor() {
        let mut lib = Library::new();
        let mut c = Cell::new("t");
        c.push_element(Element::rect(Layer::Diffusion, rect(0, 4, 12, 8)));
        c.push_element(Element::rect(Layer::Poly, rect(5, 0, 7, 12)));
        let id = lib.add_cell(c).unwrap();
        let x = extract(&lib, id).unwrap();
        assert_eq!(x.transistor_count(), 1);
        assert_eq!(x.transistors[0].0, "enh");
        // Three nets: gate poly, two diffusion islands.
        assert_eq!(x.nets, 3);
    }

    #[test]
    fn implant_makes_depletion() {
        let mut lib = Library::new();
        let mut c = Cell::new("t");
        c.push_element(Element::rect(Layer::Diffusion, rect(0, 4, 12, 8)));
        c.push_element(Element::rect(Layer::Poly, rect(5, 0, 7, 12)));
        c.push_element(Element::rect(Layer::Implant, rect(3, 2, 9, 10)));
        let id = lib.add_cell(c).unwrap();
        let x = extract(&lib, id).unwrap();
        assert_eq!(x.transistors[0].0, "dep");
    }

    #[test]
    fn inverter_extracts_fully() {
        let mut lib = Library::new();
        let id = inverter(&mut lib);
        let x = extract(&lib, id).unwrap();
        assert_eq!(x.transistor_count(), 2);
        let kinds: Vec<&str> = x.transistors.iter().map(|(k, _)| k.as_str()).collect();
        assert!(kinds.contains(&"enh"));
        assert!(kinds.contains(&"dep"));
        // Named nets: in, out, gnd, vdd.
        let names: Vec<&str> = x.netlist.nets().iter().map(|n| n.name.as_str()).collect();
        for expected in ["in", "out", "gnd", "vdd"] {
            assert!(
                names.contains(&expected),
                "missing net {expected}: {names:?}"
            );
        }
    }

    #[test]
    fn inverter_matches_intended_netlist() {
        let mut lib = Library::new();
        let id = inverter(&mut lib);
        let x = extract(&lib, id).unwrap();

        // The schematic we meant to draw.
        let mut intended = Netlist::new("inv");
        let inn = intended.add_net("in");
        let out = intended.add_net("out");
        let gnd = intended.add_net("gnd");
        let vdd = intended.add_net("vdd");
        intended
            .add_instance("m0", "enh", &[("gate", inn), ("src", gnd), ("drn", out)])
            .unwrap();
        intended
            .add_instance("m1", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();

        assert!(
            x.netlist.structurally_matches(&intended),
            "extracted:\n{}\nintended:\n{intended}",
            x.netlist
        );
    }

    #[test]
    fn metal_over_diffusion_does_not_connect() {
        let mut lib = Library::new();
        let mut c = Cell::new("t");
        c.push_element(Element::rect(Layer::Diffusion, rect(0, 0, 10, 4)));
        c.push_element(Element::rect(Layer::Metal, rect(0, 0, 10, 4)));
        // A transistor so the netlist is non-trivial.
        c.push_element(Element::rect(Layer::Poly, rect(4, -4, 6, 8)));
        let id = lib.add_cell(c).unwrap();
        let x = extract(&lib, id).unwrap();
        // Metal and diffusion are separate nets (no contact): the two
        // diffusion islands plus poly plus metal.
        assert_eq!(x.nets, 4);
    }

    #[test]
    fn contact_connects_layers() {
        let mut lib = Library::new();
        let mut c = Cell::new("t");
        c.push_element(Element::rect(Layer::Diffusion, rect(0, 0, 10, 4)));
        c.push_element(Element::rect(Layer::Metal, rect(0, 0, 10, 4)));
        c.push_element(Element::rect(Layer::Contact, rect(1, 1, 3, 3)));
        c.push_element(Element::rect(Layer::Poly, rect(4, -4, 6, 8)));
        let id = lib.add_cell(c).unwrap();
        let x = extract(&lib, id).unwrap();
        // Metal joined to the left island: 3 nets now.
        assert_eq!(x.nets, 3);
    }

    #[test]
    fn dangling_gate_is_malformed() {
        let mut lib = Library::new();
        let mut c = Cell::new("t");
        // Poly completely covers the diffusion: no source/drain islands.
        c.push_element(Element::rect(Layer::Diffusion, rect(2, 2, 6, 6)));
        c.push_element(Element::rect(Layer::Poly, rect(0, 0, 8, 8)));
        let id = lib.add_cell(c).unwrap();
        assert!(matches!(
            extract(&lib, id),
            Err(ExtractError::MalformedTransistor { diffusions: 0, .. })
        ));
    }

    #[test]
    fn subtract_rects_carves_holes() {
        let base = vec![rect(0, 0, 10, 10)];
        let out = subtract_rects(&base, &[rect(4, 4, 6, 6)]);
        let area: i64 = out.iter().map(Rect::area).sum();
        assert_eq!(area, 100 - 4);
        // Disjoint.
        for (i, a) in out.iter().enumerate() {
            for b in &out[i + 1..] {
                assert!(!a.overlaps(*b));
            }
        }
        // Subtracting everything leaves nothing.
        assert!(subtract_rects(&base, &[rect(-1, -1, 11, 11)]).is_empty());
        // Disjoint cut leaves base intact.
        assert_eq!(subtract_rects(&base, &[rect(20, 20, 30, 30)]), base);
    }

    #[test]
    fn hierarchical_layout_extracts() {
        // The same transistor placed twice via hierarchy.
        let mut lib = Library::new();
        let mut leaf = Cell::new("leaf");
        leaf.push_element(Element::rect(Layer::Diffusion, rect(0, 4, 12, 8)));
        leaf.push_element(Element::rect(Layer::Poly, rect(5, 0, 7, 12)));
        let leaf_id = lib.add_cell(leaf).unwrap();
        let mut top = Cell::new("top");
        top.push_instance(
            silc_layout::Instance::array(leaf_id, silc_geom::Transform::IDENTITY, 2, 1, 40, 0)
                .unwrap(),
        );
        let top_id = lib.add_cell(top).unwrap();
        let x = extract(&lib, top_id).unwrap();
        assert_eq!(x.transistor_count(), 2);
        assert_eq!(x.nets, 6);
    }

    /// Random multi-layer layout builder for the equivalence proptests.
    /// Layers are restricted to the electrically meaningful set; a port
    /// is pinned at the first diffusion rect's corner to exercise naming.
    fn random_cell(specs: &[(usize, i64, i64, i64, i64)]) -> (Library, CellId) {
        const LAYERS: [Layer; 6] = [
            Layer::Diffusion,
            Layer::Poly,
            Layer::Metal,
            Layer::Contact,
            Layer::Buried,
            Layer::Implant,
        ];
        let mut lib = Library::new();
        let mut c = Cell::new("rand");
        let mut first_diff: Option<Point> = None;
        for &(l, x, y, w, h) in specs {
            let layer = LAYERS[l % LAYERS.len()];
            let r = rect(x, y, x + w, y + h);
            if layer == Layer::Diffusion && first_diff.is_none() {
                first_diff = Some(Point::new(x, y));
            }
            c.push_element(Element::rect(layer, r));
        }
        if let Some(p) = first_diff {
            c.push_port(Port::new("a", Layer::Diffusion, p));
        }
        let id = lib.add_cell(c).unwrap();
        (lib, id)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The tentpole guarantee for extraction: the indexed extractor
        /// recovers exactly the netlist of the all-pairs oracle — same
        /// nets, same names, same transistors — or fails with exactly the
        /// same error.
        #[test]
        fn indexed_extractor_matches_brute_force(
            specs in prop::collection::vec(
                (0usize..6, 0i64..60, 0i64..60, 2i64..10, 2i64..10), 1..50),
        ) {
            let (lib, id) = random_cell(&specs);
            let fast = extract(&lib, id);
            let brute = extract_brute(&lib, id);
            match (fast, brute) {
                (Ok(f), Ok(b)) => {
                    prop_assert_eq!(f.netlist.to_string(), b.netlist.to_string());
                    prop_assert_eq!(f.transistors, b.transistors);
                    prop_assert_eq!(f.nets, b.nets);
                }
                (Err(f), Err(b)) => prop_assert_eq!(f, b),
                (f, b) => prop_assert!(
                    false,
                    "indexed and brute disagree: {f:?} vs {b:?}"
                ),
            }
        }

        /// Subtraction equivalence in isolation (it backs source/drain
        /// splitting): identical output rects, order included.
        #[test]
        fn subtract_matches_brute_force(
            base in prop::collection::vec((0i64..40, 0i64..40, 1i64..12, 1i64..12), 1..25),
            cuts in prop::collection::vec((0i64..40, 0i64..40, 1i64..12, 1i64..12), 0..25),
        ) {
            let base: Vec<Rect> = base.iter().map(|&(x, y, w, h)| rect(x, y, x + w, y + h)).collect();
            let cuts: Vec<Rect> = cuts.iter().map(|&(x, y, w, h)| rect(x, y, x + w, y + h)).collect();
            prop_assert_eq!(subtract_rects(&base, &cuts), brute_subtract_rects(&base, &cuts));
        }
    }
}
