//! Switch-level simulation of extracted nMOS netlists.
//!
//! The final verification arrow: after [`crate::extract`] recovers
//! transistors from mask geometry, this module computes the logic values
//! the ratioed nMOS circuit actually produces, so a generated layout can
//! be checked *functionally*, not just topologically.
//!
//! Model (classic ratioed nMOS):
//!
//! * an enhancement transistor conducts when its gate is high;
//! * a depletion transistor always conducts (it is the pullup load);
//! * a net with a conducting path to ground is **0** (pulldowns are
//!   sized to win), otherwise a conducting path to VDD makes it **1**,
//!   otherwise it is unknown/floating;
//! * evaluation iterates to a fixed point; circuits that fail to settle
//!   (unstable feedback) are reported rather than mis-simulated.

use silc_netlist::Netlist;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A switch-level signal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Pulled to ground.
    Zero,
    /// Pulled up to VDD.
    One,
    /// Floating or not yet determined.
    Unknown,
}

impl Level {
    /// Converts to a bool where determined.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Level::Zero => Some(false),
            Level::One => Some(true),
            Level::Unknown => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Zero => "0",
            Level::One => "1",
            Level::Unknown => "X",
        })
    }
}

/// Error produced by switch-level evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SwitchError {
    /// A named net (input, vdd, gnd) does not exist in the netlist.
    UnknownNet {
        /// The missing name.
        name: String,
    },
    /// An instance was not a recognised transistor kind (`enh`/`dep`)
    /// or lacked gate/src/drn pins.
    NotATransistor {
        /// The offending instance.
        instance: String,
    },
    /// The circuit did not settle (combinational oscillation).
    Unstable,
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::UnknownNet { name } => write!(f, "net `{name}` not in the netlist"),
            SwitchError::NotATransistor { instance } => {
                write!(f, "instance `{instance}` is not an enh/dep transistor")
            }
            SwitchError::Unstable => write!(f, "circuit did not reach a stable state"),
        }
    }
}

impl Error for SwitchError {}

/// Evaluates an extracted transistor netlist at switch level.
///
/// `inputs` force the named nets to fixed values; `vdd` and `gnd` name
/// the rails. Returns the settled level of every net.
///
/// # Errors
///
/// * [`SwitchError::UnknownNet`] — a named net is absent;
/// * [`SwitchError::NotATransistor`] — the netlist contains a non-`enh`/
///   `dep` instance (switch-level simulation only models transistors);
/// * [`SwitchError::Unstable`] — no fixed point within the iteration
///   bound.
///
/// # Example
///
/// ```
/// use silc_netlist::Netlist;
/// use silc_extract::{switch_level_eval, Level};
///
/// // An inverter: depletion pullup + enhancement pulldown.
/// let mut n = Netlist::new("inv");
/// let (inn, out) = (n.add_net("in"), n.add_net("out"));
/// let (vdd, gnd) = (n.add_net("vdd"), n.add_net("gnd"));
/// n.add_instance("pu", "dep", &[("gate", out), ("src", out), ("drn", vdd)])?;
/// n.add_instance("pd", "enh", &[("gate", inn), ("src", gnd), ("drn", out)])?;
///
/// let levels = switch_level_eval(&n, &[("in", true)], "vdd", "gnd")?;
/// assert_eq!(levels["out"], Level::Zero);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn switch_level_eval(
    netlist: &Netlist,
    inputs: &[(&str, bool)],
    vdd: &str,
    gnd: &str,
) -> Result<BTreeMap<String, Level>, SwitchError> {
    let n_nets = netlist.nets().len();
    let need = |name: &str| {
        netlist
            .net_by_name(name)
            .ok_or_else(|| SwitchError::UnknownNet {
                name: name.to_string(),
            })
    };
    let vdd_id = need(vdd)?.raw() as usize;
    let gnd_id = need(gnd)?.raw() as usize;
    let mut forced: Vec<Option<Level>> = vec![None; n_nets];
    forced[vdd_id] = Some(Level::One);
    forced[gnd_id] = Some(Level::Zero);
    for &(name, value) in inputs {
        let id = need(name)?.raw() as usize;
        forced[id] = Some(if value { Level::One } else { Level::Zero });
    }

    // Gather transistors.
    struct Fet {
        depletion: bool,
        gate: usize,
        src: usize,
        drn: usize,
    }
    let mut fets = Vec::with_capacity(netlist.instances().len());
    for inst in netlist.instances() {
        let depletion = match inst.kind.as_str() {
            "enh" => false,
            "dep" => true,
            _ => {
                return Err(SwitchError::NotATransistor {
                    instance: inst.name.clone(),
                })
            }
        };
        let pin = |p: &str| {
            inst.connections
                .iter()
                .find(|(n, _)| n == p)
                .map(|(_, id)| id.raw() as usize)
                .ok_or_else(|| SwitchError::NotATransistor {
                    instance: inst.name.clone(),
                })
        };
        fets.push(Fet {
            depletion,
            gate: pin("gate")?,
            src: pin("src")?,
            drn: pin("drn")?,
        });
    }

    // Iterate to a fixed point.
    let mut levels: Vec<Level> = (0..n_nets)
        .map(|i| forced[i].unwrap_or(Level::Unknown))
        .collect();
    let bound = 2 * n_nets + 8;
    for _ in 0..bound {
        // Conducting channel edges under the current gate values.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_nets];
        for f in &fets {
            let on = f.depletion || levels[f.gate] == Level::One;
            if on {
                adj[f.src].push(f.drn);
                adj[f.drn].push(f.src);
            }
        }
        // Every forced net is a driver of its polarity; drivers forward
        // their value through conducting channels but other values never
        // pass *through* a driver (it is low-impedance).
        let reach = |want: Level| -> Vec<bool> {
            let mut seen = vec![false; n_nets];
            let mut stack: Vec<usize> = (0..n_nets).filter(|&i| forced[i] == Some(want)).collect();
            for &s in &stack {
                seen[s] = true;
            }
            while let Some(i) = stack.pop() {
                for &j in &adj[i] {
                    if !seen[j] {
                        seen[j] = true;
                        if forced[j].is_none() {
                            stack.push(j);
                        }
                    }
                }
            }
            seen
        };
        let down = reach(Level::Zero);
        let up = reach(Level::One);

        let mut next: Vec<Level> = Vec::with_capacity(n_nets);
        for i in 0..n_nets {
            let level = if let Some(f) = forced[i] {
                f
            } else if down[i] {
                Level::Zero // ratioed: pulldown wins
            } else if up[i] {
                Level::One
            } else {
                Level::Unknown
            };
            next.push(level);
        }
        if next == levels {
            let mut out = BTreeMap::new();
            for (i, net) in netlist.nets().iter().enumerate() {
                out.insert(net.name.clone(), levels[i]);
            }
            return Ok(out);
        }
        levels = next;
    }
    Err(SwitchError::Unstable)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter() -> Netlist {
        let mut n = Netlist::new("inv");
        let inn = n.add_net("in");
        let out = n.add_net("out");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("pu", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();
        n.add_instance("pd", "enh", &[("gate", inn), ("src", gnd), ("drn", out)])
            .unwrap();
        n
    }

    #[test]
    fn inverter_inverts() {
        let n = inverter();
        let low = switch_level_eval(&n, &[("in", false)], "vdd", "gnd").unwrap();
        assert_eq!(low["out"], Level::One);
        let high = switch_level_eval(&n, &[("in", true)], "vdd", "gnd").unwrap();
        assert_eq!(high["out"], Level::Zero);
    }

    #[test]
    fn nand_gate() {
        // Two enhancement pulldowns in series.
        let mut n = Netlist::new("nand");
        let a = n.add_net("a");
        let b = n.add_net("b");
        let out = n.add_net("out");
        let mid = n.add_net("mid");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("pu", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();
        n.add_instance("p1", "enh", &[("gate", a), ("src", mid), ("drn", out)])
            .unwrap();
        n.add_instance("p2", "enh", &[("gate", b), ("src", gnd), ("drn", mid)])
            .unwrap();
        for (av, bv, expect) in [
            (false, false, Level::One),
            (false, true, Level::One),
            (true, false, Level::One),
            (true, true, Level::Zero),
        ] {
            let r = switch_level_eval(&n, &[("a", av), ("b", bv)], "vdd", "gnd").unwrap();
            assert_eq!(r["out"], expect, "a={av} b={bv}");
        }
    }

    #[test]
    fn nor_gate() {
        // Two parallel pulldowns.
        let mut n = Netlist::new("nor");
        let a = n.add_net("a");
        let b = n.add_net("b");
        let out = n.add_net("out");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("pu", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();
        n.add_instance("p1", "enh", &[("gate", a), ("src", gnd), ("drn", out)])
            .unwrap();
        n.add_instance("p2", "enh", &[("gate", b), ("src", gnd), ("drn", out)])
            .unwrap();
        for (av, bv, expect) in [
            (false, false, Level::One),
            (false, true, Level::Zero),
            (true, false, Level::Zero),
            (true, true, Level::Zero),
        ] {
            let r = switch_level_eval(&n, &[("a", av), ("b", bv)], "vdd", "gnd").unwrap();
            assert_eq!(r["out"], expect, "a={av} b={bv}");
        }
    }

    #[test]
    fn two_stage_buffer() {
        // Two chained inverters: out follows in after two stages.
        let mut n = Netlist::new("buf");
        let inn = n.add_net("in");
        let mid = n.add_net("mid");
        let out = n.add_net("out");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("pu1", "dep", &[("gate", mid), ("src", mid), ("drn", vdd)])
            .unwrap();
        n.add_instance("pd1", "enh", &[("gate", inn), ("src", gnd), ("drn", mid)])
            .unwrap();
        n.add_instance("pu2", "dep", &[("gate", out), ("src", out), ("drn", vdd)])
            .unwrap();
        n.add_instance("pd2", "enh", &[("gate", mid), ("src", gnd), ("drn", out)])
            .unwrap();
        let r = switch_level_eval(&n, &[("in", true)], "vdd", "gnd").unwrap();
        assert_eq!(r["mid"], Level::Zero);
        assert_eq!(r["out"], Level::One);
        let r = switch_level_eval(&n, &[("in", false)], "vdd", "gnd").unwrap();
        assert_eq!(r["out"], Level::Zero);
    }

    #[test]
    fn pass_transistor_isolates() {
        // A pass transistor with its gate low leaves the output floating.
        let mut n = Netlist::new("pass");
        let g = n.add_net("g");
        let d = n.add_net("d");
        let q = n.add_net("q");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        // Keep the rails referenced.
        n.add_instance("pd", "enh", &[("gate", d), ("src", gnd), ("drn", vdd)])
            .unwrap();
        n.add_instance("t", "enh", &[("gate", g), ("src", d), ("drn", q)])
            .unwrap();
        let r = switch_level_eval(&n, &[("g", false), ("d", true)], "vdd", "gnd").unwrap();
        assert_eq!(r["q"], Level::Unknown);
        let r = switch_level_eval(&n, &[("g", true), ("d", true)], "vdd", "gnd").unwrap();
        assert_eq!(r["q"], Level::One);
    }

    #[test]
    fn inputs_block_propagation_through_them() {
        // Driving `d` high must not leak VDD through the input onto the
        // other side of an off transistor network.
        let mut n = Netlist::new("block");
        let d = n.add_net("d");
        let other = n.add_net("other");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("t", "dep", &[("gate", d), ("src", d), ("drn", other)])
            .unwrap();
        n.add_instance("k", "enh", &[("gate", gnd), ("src", gnd), ("drn", vdd)])
            .unwrap();
        let r = switch_level_eval(&n, &[("d", false)], "vdd", "gnd").unwrap();
        // `other` connects to forced-low `d` through an always-on dep
        // channel: the input drives it low.
        assert_eq!(r["other"], Level::Zero);
        let r = switch_level_eval(&n, &[("d", true)], "vdd", "gnd").unwrap();
        assert_eq!(r["other"], Level::One);
    }

    #[test]
    fn unknown_names_rejected() {
        let n = inverter();
        assert!(matches!(
            switch_level_eval(&n, &[("nope", true)], "vdd", "gnd"),
            Err(SwitchError::UnknownNet { .. })
        ));
        assert!(matches!(
            switch_level_eval(&n, &[], "vcc", "gnd"),
            Err(SwitchError::UnknownNet { .. })
        ));
    }

    #[test]
    fn foreign_kinds_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_net("a");
        let vdd = n.add_net("vdd");
        let gnd = n.add_net("gnd");
        n.add_instance("r", "resistor", &[("a", a), ("b", vdd)])
            .unwrap();
        let _ = gnd;
        assert!(matches!(
            switch_level_eval(&n, &[], "vdd", "gnd"),
            Err(SwitchError::NotATransistor { .. })
        ));
    }
}
