//! The compiler pipeline expressed as incremental queries.
//!
//! Each function keys one stage by the fingerprint of its *inputs* and
//! answers through [`Engine::query`]. Keys chain through intermediate
//! **outputs**, not sources, which yields early cutoff:
//!
//! ```text
//! source ──elaborate──▶ Design ──flatten──▶ FlatSnapshot ──drc──▶ Report
//!                         │  └──────────────extract──▶ ExtractSnapshot
//!                         └──cif──▶ String
//! ISL source ─parse─▶ Machine ──sim──▶ SimSnapshot
//!                        └──synth──▶ SynthSnapshot
//! PLA table ──pla──▶ PlaSnapshot
//! ```
//!
//! A comment-only SIL edit re-elaborates (cheap), finds the design
//! fingerprint unchanged, and serves flatten/DRC/CIF/extract from cache.
//! Parsing ISL is likewise always live, so simulation results are keyed
//! by the *machine*, making them immune to formatting edits.

use crate::codec::{Dec, DecodeError, Enc, Persist};
use crate::engine::{Engine, JobStats, Stage};
use silc_cif::CifWriter;
use silc_drc::{check_flat_traced, Report, RuleSet};
use silc_exec::{CompiledSim, SimEngine};
use silc_geom::{Fingerprint, Rect};
use silc_lang::{Compiler, Design, PRELUDE};
use silc_layout::CellStats;
use silc_logic::TruthTable;
use silc_netlist::Netlist;
use silc_pla::{generate_layout_traced, Minimize, PlaSpec};
use silc_pnr::{place_and_route_traced, Floorplan, RouteStack};
use silc_rtl::{Machine, RunReport, Simulator};
use silc_synth::{synthesize_traced, Sharing, SynthOptions};
use silc_trace::span;
use silc_verify::{
    check_against_table_traced, check_equivalence_traced, network_from_netlist, Network,
    Options as VerifyOptions,
};
use std::sync::Arc;

/// Flattened geometry plus the die statistics the CLI summarises —
/// cached together so a warm run reproduces the summary byte-for-byte
/// without flattening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatSnapshot {
    /// Merged per-layer rectangles, indexed by [`silc_layout::Layer::index`].
    pub layers: Vec<Vec<Rect>>,
    /// Flattened element count ([`CellStats::flat_elements`]).
    pub flat_elements: u64,
    /// Die bounding box ([`CellStats::bbox`]).
    pub bbox: Option<Rect>,
}

impl Persist for FlatSnapshot {
    fn encode(&self, e: &mut Enc) {
        self.layers.encode(e);
        e.u64(self.flat_elements);
        self.bbox.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(FlatSnapshot {
            layers: Vec::<Vec<Rect>>::decode(d)?,
            flat_elements: d.u64()?,
            bbox: Option::<Rect>::decode(d)?,
        })
    }
}

/// Extraction summary: everything LVS needs, without the full netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractSnapshot {
    /// Canonical netlist signature ([`silc_netlist::Netlist::isomorphic_signature`]).
    pub signature: Vec<String>,
    /// Recovered transistor count.
    pub transistors: u64,
    /// Electrically distinct nets.
    pub nets: u64,
}

impl Persist for ExtractSnapshot {
    fn encode(&self, e: &mut Enc) {
        self.signature.encode(e);
        e.u64(self.transistors);
        e.u64(self.nets);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(ExtractSnapshot {
            signature: Vec::<String>::decode(d)?,
            transistors: d.u64()?,
            nets: d.u64()?,
        })
    }
}

/// Simulation results: the final machine state the CLI prints, in
/// declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSnapshot {
    /// Cycles actually executed.
    pub cycles: u64,
    /// True when the machine hit `halt` (vs. exhausting the budget).
    pub halted: bool,
    /// Final control state name.
    pub state: String,
    /// Final register values, in declaration order.
    pub regs: Vec<(String, u64)>,
    /// Final output port values, in declaration order.
    pub outputs: Vec<(String, u64)>,
}

impl Persist for SimSnapshot {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.cycles);
        self.halted.encode(e);
        e.str(&self.state);
        self.regs.encode(e);
        self.outputs.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(SimSnapshot {
            cycles: d.u64()?,
            halted: bool::decode(d)?,
            state: d.str()?,
            regs: Vec::<(String, u64)>::decode(d)?,
            outputs: Vec::<(String, u64)>::decode(d)?,
        })
    }
}

/// Synthesis results: the rendered allocation plus the control-PLA
/// dimensions the CLI prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthSnapshot {
    /// The allocation's `Display` rendering.
    pub display: String,
    /// `(state bits, PLA inputs, PLA outputs, PLA terms)`.
    pub control: (u32, u32, u32, u32),
}

impl Persist for SynthSnapshot {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.display);
        e.u32(self.control.0);
        e.u32(self.control.1);
        e.u32(self.control.2);
        e.u32(self.control.3);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(SynthSnapshot {
            display: d.str()?,
            control: (d.u32()?, d.u32()?, d.u32()?, d.u32()?),
        })
    }
}

/// PLA products: personality summary, DRC report and CIF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaSnapshot {
    /// The personality line the CLI prints to stderr.
    pub personality: String,
    /// DRC report over the generated layout.
    pub report: Report,
    /// The layout as CIF text.
    pub cif: String,
}

impl Persist for PlaSnapshot {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.personality);
        self.report.encode(e);
        e.str(&self.cif);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(PlaSnapshot {
            personality: d.str()?,
            report: Report::decode(d)?,
            cif: d.str()?,
        })
    }
}

/// Place-and-route products: run counters, the DRC report over the
/// routed geometry, the extract-back verdict and the CIF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PnrSnapshot {
    /// Cells placed.
    pub cells: u64,
    /// Multi-pin nets needing routing.
    pub nets: u64,
    /// Nets successfully routed (equals `nets`; a shortfall is an error).
    pub routed: u64,
    /// Total routed wirelength in lambda.
    pub wirelength: u64,
    /// Vias dropped.
    pub vias: u64,
    /// Routing rounds executed.
    pub rounds: u64,
    /// Rounds that performed rip-up-and-reroute.
    pub ripup_rounds: u64,
    /// DRC report over the routed layout.
    pub drc: Report,
    /// True when the routed layout extracts back to a netlist that
    /// structurally matches the source.
    pub lvs_ok: bool,
    /// The routed layout as CIF text.
    pub cif: String,
}

impl Persist for PnrSnapshot {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.cells);
        e.u64(self.nets);
        e.u64(self.routed);
        e.u64(self.wirelength);
        e.u64(self.vias);
        e.u64(self.rounds);
        e.u64(self.ripup_rounds);
        self.drc.encode(e);
        self.lvs_ok.encode(e);
        e.str(&self.cif);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(PnrSnapshot {
            cells: d.u64()?,
            nets: d.u64()?,
            routed: d.u64()?,
            wirelength: d.u64()?,
            vias: d.u64()?,
            rounds: d.u64()?,
            ripup_rounds: d.u64()?,
            drc: Report::decode(d)?,
            lvs_ok: bool::decode(d)?,
            cif: d.str()?,
        })
    }
}

/// SIL source → elaborated design, keyed by the source *and* the
/// standard-cell prelude (a prelude change must invalidate).
///
/// # Errors
///
/// SIL syntax or elaboration errors, rendered to strings.
pub fn elaborate(
    engine: &Engine,
    source: &str,
    stats: &mut JobStats,
) -> Result<Arc<Design>, String> {
    let key = (source, PRELUDE).fingerprint();
    engine.query(Stage::ELABORATE, key, stats, || {
        Compiler::new()
            .with_tracer(engine.tracer().clone())
            .compile(source)
            .map_err(|e| e.to_string())
    })
}

/// Design → flattened per-layer geometry and die statistics.
///
/// # Errors
///
/// Layout errors (unknown root cell), rendered to strings.
pub fn flat_regions(
    engine: &Engine,
    design: &Design,
    stats: &mut JobStats,
) -> Result<Arc<FlatSnapshot>, String> {
    let key = design.fingerprint();
    engine.query(Stage::FLATTEN, key, stats, || {
        let tracer = engine.tracer();
        let layers = {
            let mut s = span!(tracer, "layout.flatten");
            let layers = silc_layout::flatten_to_rects(&design.library, design.top)
                .map_err(|e| e.to_string())?;
            s.attr("rects", layers.iter().map(Vec::len).sum::<usize>() as u64);
            layers
        };
        let cell_stats =
            CellStats::compute(&design.library, design.top).map_err(|e| e.to_string())?;
        Ok(FlatSnapshot {
            layers,
            flat_elements: cell_stats.flat_elements as u64,
            bbox: cell_stats.bbox,
        })
    })
}

/// Flattened geometry + rule set → DRC report. Keyed by the *geometry*,
/// so a hierarchy refactor that flattens identically reuses the report.
///
/// # Errors
///
/// Never fails today; the `Result` mirrors the other stages.
pub fn drc_report(
    engine: &Engine,
    flat: &FlatSnapshot,
    rules: &RuleSet,
    stats: &mut JobStats,
) -> Result<Arc<Report>, String> {
    let key = (&flat.layers, rules).fingerprint();
    engine.query(Stage::DRC, key, stats, || {
        Ok(check_flat_traced(&flat.layers, rules, engine.tracer()))
    })
}

/// Design → CIF text.
///
/// # Errors
///
/// CIF writer errors (e.g. unnameable cells), rendered to strings.
pub fn cif_text(
    engine: &Engine,
    design: &Design,
    stats: &mut JobStats,
) -> Result<Arc<String>, String> {
    let key = design.fingerprint();
    engine.query(Stage::CIF, key, stats, || {
        CifWriter::new()
            .with_tracer(engine.tracer().clone())
            .write_to_string(&design.library, design.top)
            .map_err(|e| e.to_string())
    })
}

/// Design → extracted netlist summary.
///
/// # Errors
///
/// Extraction errors (malformed transistors), rendered to strings.
pub fn extract_signature(
    engine: &Engine,
    design: &Design,
    stats: &mut JobStats,
) -> Result<Arc<ExtractSnapshot>, String> {
    let key = design.fingerprint();
    engine.query(Stage::EXTRACT, key, stats, || {
        let extracted = silc_extract::extract_traced(&design.library, design.top, engine.tracer())
            .map_err(|e| e.to_string())?;
        Ok(ExtractSnapshot {
            signature: extracted.netlist.isomorphic_signature(),
            transistors: extracted.transistor_count() as u64,
            nets: extracted.nets as u64,
        })
    })
}

/// Reads the final architectural state out of whichever engine ran.
fn sim_snapshot(
    machine: &Machine,
    report: RunReport,
    state: &str,
    reg: impl Fn(&str) -> Option<u64>,
    output: impl Fn(&str) -> Option<u64>,
) -> Result<SimSnapshot, String> {
    let mut regs = Vec::with_capacity(machine.regs.len());
    for r in &machine.regs {
        let value =
            reg(&r.name).ok_or_else(|| format!("simulator has no register `{}`", r.name))?;
        regs.push((r.name.clone(), value));
    }
    let mut outputs = Vec::with_capacity(machine.outputs.len());
    for p in &machine.outputs {
        let value =
            output(&p.name).ok_or_else(|| format!("simulator has no output `{}`", p.name))?;
        outputs.push((p.name.clone(), value));
    }
    Ok(SimSnapshot {
        cycles: report.cycles,
        halted: report.halted,
        state: state.to_string(),
        regs,
        outputs,
    })
}

/// Machine + cycle budget + engine choice → simulation results. Keyed by
/// the parsed machine, so formatting-only ISL edits hit the cache; the
/// engine tag joins the key so a warm `compiled` entry is never served to
/// an `interp` query (even though both produce byte-identical snapshots —
/// that identity is what the exec proptests enforce).
///
/// # Errors
///
/// Runtime simulation errors, rendered to strings.
pub fn sim_results(
    engine: &Engine,
    machine: &Machine,
    cycles: u64,
    sim_engine: SimEngine,
    stats: &mut JobStats,
) -> Result<Arc<SimSnapshot>, String> {
    let key = (machine, cycles, sim_engine.tag()).fingerprint();
    engine.query(Stage::SIM, key, stats, || {
        let tracer = engine.tracer();
        match sim_engine {
            SimEngine::Interp => {
                let mut sim = Simulator::new(machine);
                let report = {
                    let _s = span!(tracer, "sim.run");
                    sim.run(cycles).map_err(|e| e.to_string())?
                };
                tracer.add("sim.cycles", report.cycles);
                sim_snapshot(
                    machine,
                    report,
                    sim.state_name(),
                    |n| sim.reg(n),
                    |n| sim.output(n),
                )
            }
            SimEngine::Compiled => {
                let compiled = {
                    let mut s = span!(tracer, "exec.compile");
                    let compiled = silc_exec::compile(machine);
                    s.attr("ops", compiled.stats().ops);
                    compiled
                };
                let st = compiled.stats();
                tracer.add("exec.states", st.states);
                tracer.add("exec.ops", st.ops);
                tracer.add("exec.folded", st.folded);
                tracer.add("exec.cse", st.cse);
                tracer.add("exec.dead", st.dead);
                let mut sim = CompiledSim::new(&compiled);
                let report = {
                    let _s = span!(tracer, "sim.run");
                    sim.run(cycles).map_err(|e| e.to_string())?
                };
                tracer.add("sim.cycles", report.cycles);
                tracer.add("exec.fast_forward", sim.fast_forwarded());
                sim_snapshot(
                    machine,
                    report,
                    sim.state_name(),
                    |n| sim.reg(n),
                    |n| sim.output(n),
                )
            }
        }
    })
}

/// Machine → shared-module allocation.
///
/// # Errors
///
/// Never fails today; the `Result` mirrors the other stages.
pub fn synth_allocation(
    engine: &Engine,
    machine: &Machine,
    stats: &mut JobStats,
) -> Result<Arc<SynthSnapshot>, String> {
    let key = machine.fingerprint();
    engine.query(Stage::SYNTH, key, stats, || {
        let allocation = synthesize_traced(
            machine,
            &SynthOptions {
                sharing: Sharing::Shared,
            },
            engine.tracer(),
        );
        Ok(SynthSnapshot {
            display: allocation.to_string(),
            control: allocation.control,
        })
    })
}

/// PLA table text + minimization choice → personality, DRC report and
/// CIF.
///
/// # Errors
///
/// Table parse, layout generation or CIF errors, rendered to strings.
pub fn pla_products(
    engine: &Engine,
    source: &str,
    raw: bool,
    stats: &mut JobStats,
) -> Result<Arc<PlaSnapshot>, String> {
    let key = (source, raw).fingerprint();
    engine.query(Stage::PLA, key, stats, || {
        let tracer = engine.tracer();
        let table = TruthTable::parse_pla(source).map_err(|e| e.to_string())?;
        let mode = if raw {
            Minimize::None
        } else {
            Minimize::Heuristic
        };
        let spec =
            PlaSpec::from_truth_table_traced(&table, mode, tracer).map_err(|e| e.to_string())?;
        let (w, h) = spec.area_estimate();
        let personality = format!(
            "personality: {} terms ({} AND + {} OR devices), {}x{} lambda",
            spec.num_terms(),
            spec.and_plane_devices(),
            spec.or_plane_devices(),
            w,
            h
        );
        let mut lib = silc_layout::Library::new();
        let id =
            generate_layout_traced(&spec, &mut lib, "pla", tracer).map_err(|e| e.to_string())?;
        let report = silc_drc::check_traced(&lib, id, &RuleSet::mead_conway_nmos(), tracer)
            .map_err(|e| e.to_string())?;
        let cif = CifWriter::new()
            .with_tracer(tracer.clone())
            .write_to_string(&lib, id)
            .map_err(|e| e.to_string())?;
        Ok(PlaSnapshot {
            personality,
            report,
            cif,
        })
    })
}

/// Netlist + routing stack + floorplan → routed layout products. The
/// key is exactly those three fingerprints: the `parallel` flag stays
/// out because serial and parallel runs are byte-identical by
/// construction (proptest-enforced in `silc-pnr`), so either build may
/// serve the other's cache entry.
///
/// # Errors
///
/// Placement or routing failures ([`silc_pnr::PnrError`] rendered to
/// strings, every variant naming the net, track or stack context), or
/// extraction/CIF errors over the routed geometry.
pub fn pnr_products(
    engine: &Engine,
    netlist: &Netlist,
    stack: &RouteStack,
    floorplan: &Floorplan,
    parallel: bool,
    stats: &mut JobStats,
) -> Result<Arc<PnrSnapshot>, String> {
    let key = (netlist, stack, floorplan).fingerprint();
    engine.query(Stage::PNR, key, stats, || {
        let tracer = engine.tracer();
        let out = place_and_route_traced(netlist, stack, floorplan, parallel, tracer)
            .map_err(|e| e.to_string())?;
        let drc =
            silc_drc::check_traced(&out.library, out.root, &RuleSet::mead_conway_nmos(), tracer)
                .map_err(|e| e.to_string())?;
        let extracted = silc_extract::extract_traced(&out.library, out.root, tracer)
            .map_err(|e| e.to_string())?;
        let lvs_ok = extracted.netlist.structurally_matches(netlist);
        let cif = CifWriter::new()
            .with_tracer(tracer.clone())
            .write_to_string(&out.library, out.root)
            .map_err(|e| e.to_string())?;
        Ok(PnrSnapshot {
            cells: out.report.cells,
            nets: out.report.nets,
            routed: out.report.routed,
            wirelength: out.report.wirelength,
            vias: out.report.vias,
            rounds: out.report.rounds,
            ripup_rounds: out.report.ripup_rounds,
            drc,
            lvs_ok,
            cif,
        })
    })
}

/// The full `silc pnr` pipeline over SIL source: elaborate, extract the
/// transistor netlist, place it into a [`Floorplan::squarish`]
/// floorplan on the named stack, and route — every front-end (CLI,
/// batch `pnr` jobs, serve `pnr` requests) runs through here, so they
/// share cache entries. Elaboration and extraction are themselves
/// queries; the routed products come from [`pnr_products`].
///
/// # Errors
///
/// The first failing stage's error. A DRC-dirty routed layout or an
/// extract-back mismatch IS an error here — unlike compile, pnr
/// *generated* the geometry, so either means the router is wrong.
pub fn pnr_sil(
    engine: &Engine,
    source: &str,
    stack_name: &str,
    parallel: bool,
    stats: &mut JobStats,
) -> Result<Arc<PnrSnapshot>, String> {
    let stack = RouteStack::by_name(stack_name).map_err(|e| format!("pnr: {e}"))?;
    let design = elaborate(engine, source, stats)?;
    let extracted = silc_extract::extract_traced(&design.library, design.top, engine.tracer())
        .map_err(|e| format!("extract: {e}"))?;
    let floorplan = Floorplan::squarish(extracted.netlist.instances().len());
    let out = pnr_products(
        engine,
        &extracted.netlist,
        &stack,
        &floorplan,
        parallel,
        stats,
    )?;
    if !out.drc.is_clean() {
        return Err(format!(
            "drc: routed layout has {} violation(s)",
            out.drc.violations.len()
        ));
    }
    if !out.lvs_ok {
        return Err("pnr: extract-back does not match the source netlist".into());
    }
    Ok(out)
}

/// An equivalence-check verdict, memoized as [`Stage::VERIFY`]. *Both*
/// verdicts cache — a failing check is exactly as expensive to recompute
/// as a passing one, and every key pins both sides, so a cached failure
/// can never mask a later fix (the fix changes the key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifySnapshot {
    /// Which check ran: `pla`, `isl`, `sil` or `against`.
    pub check: String,
    /// True when every output pair was proven equivalent.
    pub equivalent: bool,
    /// Output pairs examined.
    pub outputs: u64,
    /// Nodes merged by structural hashing.
    pub strash_merged: u64,
    /// Simulation rounds run.
    pub sim_rounds: u64,
    /// Output pairs refuted by simulation.
    pub sim_refuted: u64,
    /// Output pairs decided by the exact cover-containment tier.
    pub exact_decided: u64,
    /// Mismatch descriptions, sorted; empty iff `equivalent`.
    pub mismatches: Vec<String>,
}

impl VerifySnapshot {
    /// The one-line verdict every front-end prints.
    pub fn summary(&self) -> String {
        let verdict = if self.equivalent {
            "equivalent"
        } else {
            "NOT equivalent"
        };
        format!(
            "verify({}): {verdict}: {} outputs ({} strash-merged, {} sim-refuted, {} exact, {} rounds)",
            self.check,
            self.outputs,
            self.strash_merged,
            self.sim_refuted,
            self.exact_decided,
            self.sim_rounds
        )
    }
}

impl Persist for VerifySnapshot {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.check);
        self.equivalent.encode(e);
        e.u64(self.outputs);
        e.u64(self.strash_merged);
        e.u64(self.sim_rounds);
        e.u64(self.sim_refuted);
        e.u64(self.exact_decided);
        self.mismatches.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(VerifySnapshot {
            check: d.str()?,
            equivalent: bool::decode(d)?,
            outputs: d.u64()?,
            strash_merged: d.u64()?,
            sim_rounds: d.u64()?,
            sim_refuted: d.u64()?,
            exact_decided: d.u64()?,
            mismatches: Vec::<String>::decode(d)?,
        })
    }
}

fn verify_snapshot(check: &str, report: silc_verify::Report) -> VerifySnapshot {
    VerifySnapshot {
        check: check.to_string(),
        equivalent: report.equivalent,
        outputs: report.outputs as u64,
        strash_merged: report.strash_merged as u64,
        sim_rounds: report.sim_rounds as u64,
        sim_refuted: report.sim_refuted as u64,
        exact_decided: report.exact_decided as u64,
        mismatches: report.mismatches,
    }
}

/// The single-level network realizing `spec`'s output covers.
fn realized_network(spec: &PlaSpec) -> Result<Network, String> {
    let outputs: Vec<(String, silc_logic::Cover)> = spec
        .output_names()
        .iter()
        .enumerate()
        .map(|(o, n)| (n.clone(), spec.output_cover(o)))
        .collect();
    Network::from_covers(spec.input_names(), &outputs).map_err(|e| e.to_string())
}

/// Check 2: minimized PLA vs. its own truth table. The implementation
/// side (the heuristically minimized personality) is a deterministic
/// function of the specification side, so the source text plus the
/// check tag pins both sides' fingerprints.
///
/// # Errors
///
/// Table parse or minimization errors, rendered to strings. An
/// *inequivalent* pair is NOT an error: the verdict comes back in the
/// snapshot.
pub fn verify_pla(
    engine: &Engine,
    source: &str,
    stats: &mut JobStats,
) -> Result<Arc<VerifySnapshot>, String> {
    let key = ("verify-pla", source).fingerprint();
    engine.query(Stage::VERIFY, key, stats, || {
        let tracer = engine.tracer();
        let table = TruthTable::parse_pla(source).map_err(|e| e.to_string())?;
        let spec = PlaSpec::from_truth_table_traced(&table, Minimize::Heuristic, tracer)
            .map_err(|e| e.to_string())?;
        let net = realized_network(&spec)?;
        let report = check_against_table_traced(&net, &table, &VerifyOptions::default(), tracer)
            .map_err(|e| e.to_string())?;
        Ok(verify_snapshot("pla", report))
    })
}

/// Check 1: synthesized control store vs. its RTL source. Sequential
/// equivalence under the state-register correspondence reduces to a
/// combinational check of the minimized control PLA against the exact
/// next-state/control table derived from the machine. Keyed by the
/// parsed machine, so formatting-only ISL edits hit the cache.
///
/// # Errors
///
/// ISL parse or minimization errors, rendered to strings. An
/// inequivalent pair is NOT an error: the verdict comes back in the
/// snapshot.
pub fn verify_isl(
    engine: &Engine,
    source: &str,
    stats: &mut JobStats,
) -> Result<Arc<VerifySnapshot>, String> {
    let machine = silc_rtl::parse(source).map_err(|e| e.to_string())?;
    let key = ("verify-isl", &machine).fingerprint();
    engine.query(Stage::VERIFY, key, stats, || {
        let tracer = engine.tracer();
        let control = silc_synth::control_table(&machine);
        let spec = PlaSpec::from_truth_table_traced(&control.table, Minimize::Heuristic, tracer)
            .map_err(|e| e.to_string())?;
        let net = realized_network(&spec)?;
        let report =
            check_against_table_traced(&net, &control.table, &VerifyOptions::default(), tracer)
                .map_err(|e| e.to_string())?;
        Ok(verify_snapshot("isl", report))
    })
}

/// Check 3: pnr extract-back netlist vs. the input netlist — the
/// functional upgrade of `structurally_matches` LVS. The key is the
/// same `(netlist, stack, floorplan)` triple as [`pnr_products`], so a
/// warm verify is a pure [`Stage::VERIFY`] hit; a cold one re-runs
/// place-and-route inside the closure (the routed geometry is
/// deterministic in the key, so this stays correct).
///
/// # Errors
///
/// Elaboration, extraction, placement or routing failures, rendered to
/// strings. An inequivalent pair is NOT an error: the verdict comes
/// back in the snapshot.
pub fn verify_sil(
    engine: &Engine,
    source: &str,
    stack_name: &str,
    stats: &mut JobStats,
) -> Result<Arc<VerifySnapshot>, String> {
    let stack = RouteStack::by_name(stack_name).map_err(|e| format!("verify: {e}"))?;
    let design = elaborate(engine, source, stats)?;
    let extracted = silc_extract::extract_traced(&design.library, design.top, engine.tracer())
        .map_err(|e| format!("extract: {e}"))?;
    let floorplan = Floorplan::squarish(extracted.netlist.instances().len());
    let key = (("verify-sil", &extracted.netlist), (&stack, &floorplan)).fingerprint();
    engine.query(Stage::VERIFY, key, stats, || {
        let tracer = engine.tracer();
        let out = place_and_route_traced(&extracted.netlist, &stack, &floorplan, false, tracer)
            .map_err(|e| e.to_string())?;
        let back = silc_extract::extract_traced(&out.library, out.root, tracer)
            .map_err(|e| e.to_string())?;
        let impl_net = network_from_netlist(&back.netlist).map_err(|e| e.to_string())?;
        let spec_net = network_from_netlist(&extracted.netlist).map_err(|e| e.to_string())?;
        let report =
            check_equivalence_traced(&impl_net, &spec_net, &VerifyOptions::default(), tracer)
                .map_err(|e| e.to_string())?;
        Ok(verify_snapshot("sil", report))
    })
}

/// `silc verify A --against B`: two PLA tables checked against each
/// other — A's *raw* (unminimized) realized covers against B's table.
/// Keyed by both sources' fingerprints.
///
/// # Errors
///
/// Parse errors on either side, rendered to strings. An inequivalent
/// pair is NOT an error: the verdict comes back in the snapshot.
pub fn verify_against(
    engine: &Engine,
    impl_source: &str,
    spec_source: &str,
    stats: &mut JobStats,
) -> Result<Arc<VerifySnapshot>, String> {
    let key = ("verify-against", impl_source, spec_source).fingerprint();
    engine.query(Stage::VERIFY, key, stats, || {
        let tracer = engine.tracer();
        let impl_table = TruthTable::parse_pla(impl_source).map_err(|e| format!("impl: {e}"))?;
        let spec_table = TruthTable::parse_pla(spec_source).map_err(|e| format!("spec: {e}"))?;
        let spec = PlaSpec::from_truth_table_traced(&impl_table, Minimize::None, tracer)
            .map_err(|e| e.to_string())?;
        let net = realized_network(&spec)?;
        let report =
            check_against_table_traced(&net, &spec_table, &VerifyOptions::default(), tracer)
                .map_err(|e| e.to_string())?;
        Ok(verify_snapshot("against", report))
    })
}

/// Options for the one-call compile pipeline.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Run DRC (and withhold CIF when violations are found).
    pub check_drc: bool,
    /// Rule set for DRC.
    pub rules: RuleSet,
    /// Produce CIF text.
    pub emit_cif: bool,
    /// Produce the extracted netlist summary.
    pub extract: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            check_drc: true,
            rules: RuleSet::mead_conway_nmos(),
            emit_cif: true,
            extract: false,
        }
    }
}

/// Everything a compile run produced. Fields the options disabled (or
/// that DRC violations withheld) are `None`.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The elaborated design.
    pub design: Arc<Design>,
    /// Flattened geometry and die statistics.
    pub flat: Arc<FlatSnapshot>,
    /// DRC report, when requested.
    pub drc: Option<Arc<Report>>,
    /// CIF text, when requested and the layout is clean (or unchecked).
    pub cif: Option<Arc<String>>,
    /// Extraction summary, when requested.
    pub extract: Option<Arc<ExtractSnapshot>>,
}

impl CompileOutput {
    /// True when DRC either ran clean or was skipped.
    pub fn is_clean(&self) -> bool {
        self.drc.as_ref().is_none_or(|r| r.is_clean())
    }
}

/// The full SIL compile pipeline as chained queries — the CLI's
/// `compile` subcommand and every batch compile job run through here.
///
/// # Errors
///
/// The first failing stage's error. DRC *violations* are not an error:
/// they come back in [`CompileOutput::drc`] with `cif` withheld.
pub fn compile_sil(
    engine: &Engine,
    source: &str,
    options: &CompileOptions,
    stats: &mut JobStats,
) -> Result<CompileOutput, String> {
    let design = elaborate(engine, source, stats)?;
    let flat = flat_regions(engine, &design, stats)?;
    let drc = if options.check_drc {
        Some(drc_report(engine, &flat, &options.rules, stats)?)
    } else {
        None
    };
    let clean = drc.as_ref().is_none_or(|r| r.is_clean());
    let cif = if options.emit_cif && clean {
        Some(cif_text(engine, &design, stats)?)
    } else {
        None
    };
    let extract = if options.extract {
        Some(extract_signature(engine, &design, stats)?)
    } else {
        None
    };
    Ok(CompileOutput {
        design,
        flat,
        drc,
        cif,
        extract,
    })
}
