//! [`Persist`] implementations for pipeline types owned by other crates.
//!
//! The layout [`Library`] is the only subtle case: `CellId`s are opaque
//! handles minted by [`Library::add_cell`], so entries are written in
//! insertion order together with their original raw ids, and decoding
//! rebuilds the library through the public API while remapping instance
//! targets old-id → new-id. Because a library is a DAG and insertion
//! order respects definition order, every target has already been
//! remapped when its instance is read back.

use crate::codec::{Dec, DecodeError, Enc, Persist};
use silc_drc::{Report, RuleKind, Violation};
use silc_geom::{Path, Polygon, Rect, Transform};
use silc_lang::Design;
use silc_layout::{Cell, CellId, Element, Instance, Layer, Library, Port, Shape};
use std::collections::HashMap;

impl Persist for Layer {
    fn encode(&self, e: &mut Enc) {
        e.u8(self.index() as u8);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let idx = d.u8()? as usize;
        Layer::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| format!("invalid layer index {idx}"))
    }
}

impl Persist for Shape {
    fn encode(&self, e: &mut Enc) {
        match self {
            Shape::Rect(r) => {
                e.u8(0);
                r.encode(e);
            }
            Shape::Polygon(p) => {
                e.u8(1);
                p.encode(e);
            }
            Shape::Wire(w) => {
                e.u8(2);
                w.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(Shape::Rect(Rect::decode(d)?)),
            1 => Ok(Shape::Polygon(Polygon::decode(d)?)),
            2 => Ok(Shape::Wire(Path::decode(d)?)),
            t => Err(format!("invalid shape tag {t}")),
        }
    }
}

impl Persist for Element {
    fn encode(&self, e: &mut Enc) {
        self.layer.encode(e);
        self.shape.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(Element {
            layer: Layer::decode(d)?,
            shape: Shape::decode(d)?,
        })
    }
}

fn encode_cell(cell: &Cell, e: &mut Enc) {
    e.str(cell.name());
    cell.elements().to_vec().encode(e);
    e.len(cell.instances().len());
    for inst in cell.instances() {
        e.u32(inst.cell.raw());
        inst.transform.encode(e);
        e.u32(inst.cols);
        e.u32(inst.rows);
        e.i64(inst.dx);
        e.i64(inst.dy);
    }
    e.len(cell.ports().len());
    for port in cell.ports() {
        e.str(&port.name);
        port.layer.encode(e);
        port.at.encode(e);
    }
}

fn decode_cell(d: &mut Dec<'_>, map: &HashMap<u32, CellId>) -> Result<Cell, DecodeError> {
    let name = d.str()?;
    let mut cell = Cell::new(name);
    for element in Vec::<Element>::decode(d)? {
        cell.push_element(element);
    }
    let n_inst = d.len()?;
    for _ in 0..n_inst {
        let target_raw = d.u32()?;
        let transform = Transform::decode(d)?;
        let cols = d.u32()?;
        let rows = d.u32()?;
        let dx = d.i64()?;
        let dy = d.i64()?;
        let target = map
            .get(&target_raw)
            .copied()
            .ok_or_else(|| format!("instance references unknown cell id {target_raw}"))?;
        let instance = Instance::array(target, transform, cols, rows, dx, dy)
            .map_err(|err| format!("invalid instance: {err}"))?;
        cell.push_instance(instance);
    }
    let n_ports = d.len()?;
    for _ in 0..n_ports {
        let name = d.str()?;
        let layer = Layer::decode(d)?;
        let at = silc_geom::Point::decode(d)?;
        cell.push_port(Port::new(name, layer, at));
    }
    Ok(cell)
}

impl Persist for Design {
    fn encode(&self, e: &mut Enc) {
        e.len(self.library.len());
        for (id, cell) in self.library.iter() {
            e.u32(id.raw());
            encode_cell(cell, e);
        }
        e.u32(self.top.raw());
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let n = d.len()?;
        let mut library = Library::new();
        let mut map: HashMap<u32, CellId> = HashMap::new();
        for _ in 0..n {
            let old_raw = d.u32()?;
            let cell = decode_cell(d, &map)?;
            let new_id = library
                .add_cell(cell)
                .map_err(|err| format!("cannot rebuild library: {err}"))?;
            map.insert(old_raw, new_id);
        }
        let top_raw = d.u32()?;
        let top = map
            .get(&top_raw)
            .copied()
            .ok_or_else(|| format!("top cell id {top_raw} not in library"))?;
        Ok(Design { library, top })
    }
}

impl Persist for RuleKind {
    fn encode(&self, e: &mut Enc) {
        match *self {
            RuleKind::MinWidth { layer, required } => {
                e.u8(0);
                layer.encode(e);
                e.i64(required);
            }
            RuleKind::MinSpacing { a, b, required } => {
                e.u8(1);
                a.encode(e);
                b.encode(e);
                e.i64(required);
            }
            RuleKind::ContactMetalSurround { required } => {
                e.u8(2);
                e.i64(required);
            }
            RuleKind::ContactLowerSurround { required } => {
                e.u8(3);
                e.i64(required);
            }
            RuleKind::GateOverhang { poly, diff } => {
                e.u8(4);
                e.i64(poly);
                e.i64(diff);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => RuleKind::MinWidth {
                layer: Layer::decode(d)?,
                required: d.i64()?,
            },
            1 => RuleKind::MinSpacing {
                a: Layer::decode(d)?,
                b: Layer::decode(d)?,
                required: d.i64()?,
            },
            2 => RuleKind::ContactMetalSurround { required: d.i64()? },
            3 => RuleKind::ContactLowerSurround { required: d.i64()? },
            4 => RuleKind::GateOverhang {
                poly: d.i64()?,
                diff: d.i64()?,
            },
            t => return Err(format!("invalid rule kind tag {t}")),
        })
    }
}

impl Persist for Violation {
    fn encode(&self, e: &mut Enc) {
        self.rule.encode(e);
        self.at.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(Violation {
            rule: RuleKind::decode(d)?,
            at: Rect::decode(d)?,
        })
    }
}

impl Persist for Report {
    fn encode(&self, e: &mut Enc) {
        e.str(&self.rules);
        self.violations.encode(e);
        e.u64(self.rects_checked as u64);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(Report {
            rules: d.str()?,
            violations: Vec::<Violation>::decode(d)?,
            rects_checked: d.u64()? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::{Fingerprint, Point};
    use silc_lang::Compiler;

    fn round_trip<T: Persist>(v: &T) -> T {
        let mut e = Enc::new();
        v.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = T::decode(&mut d).unwrap();
        assert!(d.is_done());
        back
    }

    #[test]
    fn design_round_trips_by_fingerprint() {
        let design = Compiler::new()
            .compile(
                "cell pair() {
                     box metal (0,0) (8,4);
                     wire poly 2 (0,0) (10,0) (10,6);
                     port a metal (1,1);
                 }
                 cell top2() { place pair() at (0,0); place pair() at (30,0) rot 90; }
                 array top2() at (0,0) step (80, 0) count 2;",
            )
            .unwrap();
        let back = round_trip(&design);
        assert_eq!(back.fingerprint(), design.fingerprint());
        assert_eq!(back.library.len(), design.library.len());
    }

    #[test]
    fn report_round_trips() {
        let report = Report {
            rules: "mead-conway-nmos".into(),
            violations: vec![
                Violation {
                    rule: RuleKind::MinWidth {
                        layer: Layer::Poly,
                        required: 2,
                    },
                    at: Rect::new(Point::new(0, 0), Point::new(1, 4)).unwrap(),
                },
                Violation {
                    rule: RuleKind::GateOverhang { poly: 2, diff: 2 },
                    at: Rect::new(Point::new(5, 5), Point::new(9, 9)).unwrap(),
                },
            ],
            rects_checked: 123,
        };
        let back = round_trip(&report);
        assert_eq!(back, report);
    }

    #[test]
    fn dangling_instance_target_is_an_error_not_a_panic() {
        // A cell with an instance pointing at a not-yet-seen id.
        let design = Compiler::new()
            .compile("cell a() { box metal (0,0) (4,4); } place a() at (0,0);")
            .unwrap();
        let mut e = Enc::new();
        design.encode(&mut e);
        let mut bytes = e.into_bytes();
        // Corrupt every u32 that could be a cell id reference; decode must
        // either succeed or error cleanly, never panic.
        for i in 0..bytes.len() {
            let saved = bytes[i];
            bytes[i] = bytes[i].wrapping_add(1);
            let _ = Design::decode(&mut Dec::new(&bytes));
            bytes[i] = saved;
        }
    }
}
