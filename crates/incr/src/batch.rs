//! The concurrent batch front-end.
//!
//! A *manifest* is a text file with one job per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! compile counter.sil -o counter.cif
//! compile alu.sil --no-drc
//! sim traffic.isl --cycles 500
//! sim cpu.isl --cycles 100000 --engine interp
//! pnr adder.sil -o adder_routed.cif --stack mead-conway-nmos
//! verify control.pla
//! verify decoder.pla --against decoder_golden.pla
//! ```
//!
//! [`run_batch`] executes the jobs on a small thread pool against one
//! shared [`Engine`], so jobs that elaborate the same cells — or repeat
//! runs against a persistent cache — share every stage result. Workers
//! pull jobs from an atomic cursor; results land in manifest order.

use crate::engine::{Engine, JobStats};
use crate::pipeline::{
    compile_sil, pnr_sil, sim_results, verify_against, verify_isl, verify_pla, verify_sil,
    CompileOptions,
};
use silc_exec::SimEngine;
use silc_rtl::parse as parse_isl;
use silc_trace::span;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// What one manifest line asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Compile a SIL design: DRC + CIF (and nothing else).
    Compile {
        /// Write CIF here; `None` = discard (compile for the check).
        output: Option<PathBuf>,
        /// Skip design-rule checking.
        no_drc: bool,
    },
    /// Simulate an ISL machine.
    Sim {
        /// Cycle budget.
        cycles: u64,
        /// Per-job engine override; `None` defers to the batch default.
        engine: Option<SimEngine>,
    },
    /// Place and route a SIL design's extracted netlist.
    Pnr {
        /// Write the routed CIF here; `None` = discard (route for the
        /// DRC + extract-back check).
        output: Option<PathBuf>,
        /// Routing stack name; `None` = the default stack.
        stack: Option<String>,
    },
    /// Equivalence-check an artifact against its specification.
    Verify {
        /// Check against this PLA table instead of the input's own spec.
        against: Option<PathBuf>,
        /// Routing stack for `.sil` inputs; `None` = the default stack.
        stack: Option<String>,
    },
}

/// One parsed manifest line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Input file, resolved relative to the manifest's directory.
    pub input: PathBuf,
    /// 1-based manifest line number (for error messages).
    pub line: usize,
    /// What to do with the input.
    pub kind: JobKind,
}

impl JobSpec {
    /// The label shown in the summary table.
    pub fn label(&self) -> String {
        let verb = match self.kind {
            JobKind::Compile { .. } => "compile",
            JobKind::Sim { .. } => "sim",
            JobKind::Pnr { .. } => "pnr",
            JobKind::Verify { .. } => "verify",
        };
        format!("{verb} {}", self.input.display())
    }
}

/// The outcome of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's summary-table label.
    pub label: String,
    /// `Ok(summary)` or `Err(message)`.
    pub outcome: Result<String, String>,
    /// Cache hits/misses attributable to this job.
    pub stats: JobStats,
    /// Wall time, in milliseconds.
    pub millis: u128,
}

/// Parses a manifest. Paths are resolved relative to `base` (normally
/// the manifest's own directory).
///
/// # Errors
///
/// A message naming the offending line for any unknown verb, flag, or
/// malformed argument.
pub fn parse_manifest(text: &str, base: &Path) -> Result<Vec<JobSpec>, String> {
    let mut jobs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut words = trimmed.split_whitespace();
        let verb = words.next().expect("non-empty line has a first word");
        let rest: Vec<&str> = words.collect();
        let err = |msg: String| format!("manifest line {line}: {msg}");
        match verb {
            "compile" => {
                let mut output = None;
                let mut no_drc = false;
                let mut input = None;
                let mut it = rest.iter();
                while let Some(&word) = it.next() {
                    match word {
                        "-o" | "--output" => {
                            let path = it
                                .next()
                                .ok_or_else(|| err(format!("`{word}` needs a path")))?;
                            if output.replace(base.join(path)).is_some() {
                                return Err(err(format!("duplicate `{word}`")));
                            }
                        }
                        "--no-drc" => {
                            if no_drc {
                                return Err(err("duplicate `--no-drc`".into()));
                            }
                            no_drc = true;
                        }
                        w if w.starts_with('-') => {
                            return Err(err(format!("unknown compile flag `{w}`")));
                        }
                        w => {
                            if input.replace(w).is_some() {
                                return Err(err(format!("unexpected extra argument `{w}`")));
                            }
                        }
                    }
                }
                let input = input.ok_or_else(|| err("compile needs an input file".into()))?;
                jobs.push(JobSpec {
                    input: base.join(input),
                    line,
                    kind: JobKind::Compile { output, no_drc },
                });
                continue;
            }
            "sim" => {
                let mut cycles = 10_000u64;
                let mut engine = None;
                let mut input = None;
                let mut it = rest.iter();
                while let Some(&word) = it.next() {
                    match word {
                        "--cycles" => {
                            let n = it
                                .next()
                                .ok_or_else(|| err("`--cycles` needs a count".into()))?;
                            cycles = n
                                .parse()
                                .map_err(|_| err(format!("invalid cycle count `{n}`")))?;
                        }
                        "--engine" => {
                            let name = it
                                .next()
                                .ok_or_else(|| err("`--engine` needs a name".into()))?;
                            engine = Some(name.parse().map_err(|e: String| err(e))?);
                        }
                        w if w.starts_with('-') => {
                            return Err(err(format!("unknown sim flag `{w}`")));
                        }
                        w => {
                            if input.replace(w).is_some() {
                                return Err(err(format!("unexpected extra argument `{w}`")));
                            }
                        }
                    }
                }
                let input = input.ok_or_else(|| err("sim needs an input file".into()))?;
                jobs.push(JobSpec {
                    input: base.join(input),
                    line,
                    kind: JobKind::Sim { cycles, engine },
                });
                continue;
            }
            "pnr" => {
                let mut output = None;
                let mut stack: Option<String> = None;
                let mut input = None;
                let mut it = rest.iter();
                while let Some(&word) = it.next() {
                    match word {
                        "-o" | "--output" => {
                            let path = it
                                .next()
                                .ok_or_else(|| err(format!("`{word}` needs a path")))?;
                            if output.replace(base.join(path)).is_some() {
                                return Err(err(format!("duplicate `{word}`")));
                            }
                        }
                        "--stack" => {
                            let name = it
                                .next()
                                .ok_or_else(|| err("`--stack` needs a name".into()))?;
                            if stack.replace(name.to_string()).is_some() {
                                return Err(err("duplicate `--stack`".into()));
                            }
                        }
                        w if w.starts_with('-') => {
                            return Err(err(format!("unknown pnr flag `{w}`")));
                        }
                        w => {
                            if input.replace(w).is_some() {
                                return Err(err(format!("unexpected extra argument `{w}`")));
                            }
                        }
                    }
                }
                let input = input.ok_or_else(|| err("pnr needs an input file".into()))?;
                jobs.push(JobSpec {
                    input: base.join(input),
                    line,
                    kind: JobKind::Pnr { output, stack },
                });
                continue;
            }
            "verify" => {
                let mut against = None;
                let mut stack: Option<String> = None;
                let mut input = None;
                let mut it = rest.iter();
                while let Some(&word) = it.next() {
                    match word {
                        "--against" => {
                            let path = it
                                .next()
                                .ok_or_else(|| err("`--against` needs a path".into()))?;
                            if against.replace(base.join(path)).is_some() {
                                return Err(err("duplicate `--against`".into()));
                            }
                        }
                        "--stack" => {
                            let name = it
                                .next()
                                .ok_or_else(|| err("`--stack` needs a name".into()))?;
                            if stack.replace(name.to_string()).is_some() {
                                return Err(err("duplicate `--stack`".into()));
                            }
                        }
                        w if w.starts_with('-') => {
                            return Err(err(format!("unknown verify flag `{w}`")));
                        }
                        w => {
                            if input.replace(w).is_some() {
                                return Err(err(format!("unexpected extra argument `{w}`")));
                            }
                        }
                    }
                }
                let input = input.ok_or_else(|| err("verify needs an input file".into()))?;
                jobs.push(JobSpec {
                    input: base.join(input),
                    line,
                    kind: JobKind::Verify { against, stack },
                });
                continue;
            }
            other => {
                return Err(err(format!(
                    "unknown verb `{other}` (expected `compile`, `sim`, `pnr` or `verify`)"
                )))
            }
        }
    }
    Ok(jobs)
}

fn run_one(
    engine: &Engine,
    job: &JobSpec,
    default_engine: SimEngine,
) -> (Result<String, String>, JobStats) {
    let mut stats = JobStats::default();
    let outcome = (|| -> Result<String, String> {
        let source = fs::read_to_string(&job.input)
            .map_err(|e| format!("cannot read `{}`: {e}", job.input.display()))?;
        match &job.kind {
            JobKind::Compile { output, no_drc } => {
                let options = CompileOptions {
                    check_drc: !no_drc,
                    ..CompileOptions::default()
                };
                let out = compile_sil(engine, &source, &options, &mut stats)?;
                if let Some(report) = &out.drc {
                    if !report.is_clean() {
                        // Name the stage like engine errors do, so every
                        // FAIL row reads `<stage>: <detail>`.
                        return Err(format!("drc: {} violation(s)", report.violations.len()));
                    }
                }
                if let (Some(path), Some(cif)) = (output, &out.cif) {
                    fs::write(path, cif.as_bytes())
                        .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
                }
                let (w, h) = out.flat.bbox.map_or((0, 0), |b| (b.width(), b.height()));
                Ok(format!(
                    "{} cells, {} elements, die {w}x{h}",
                    out.design.library.len(),
                    out.flat.flat_elements
                ))
            }
            JobKind::Sim {
                cycles,
                engine: sim_engine,
            } => {
                let machine = {
                    let _s = span!(engine.tracer(), "isl.parse");
                    parse_isl(&source).map_err(|e| format!("isl.parse: {e}"))?
                };
                let sim_engine = sim_engine.unwrap_or(default_engine);
                let sim = sim_results(engine, &machine, *cycles, sim_engine, &mut stats)?;
                Ok(format!(
                    "{} cycle(s), {}",
                    sim.cycles,
                    if sim.halted {
                        "halted"
                    } else {
                        "budget exhausted"
                    }
                ))
            }
            JobKind::Pnr { output, stack } => {
                let stack = stack.as_deref().unwrap_or(silc_pnr::RouteStack::KNOWN[0]);
                let out = pnr_sil(engine, &source, stack, true, &mut stats)?;
                if let Some(path) = output {
                    fs::write(path, out.cif.as_bytes())
                        .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
                }
                Ok(format!(
                    "{} cells, {}/{} nets, wirelength {}, {} via(s)",
                    out.cells, out.routed, out.nets, out.wirelength, out.vias
                ))
            }
            JobKind::Verify { against, stack } => {
                let ext = job.input.extension().and_then(|e| e.to_str()).unwrap_or("");
                let snap = match (against, ext) {
                    (Some(spec_path), "pla") => {
                        let spec = fs::read_to_string(spec_path)
                            .map_err(|e| format!("cannot read `{}`: {e}", spec_path.display()))?;
                        verify_against(engine, &source, &spec, &mut stats)?
                    }
                    (Some(_), _) => {
                        return Err(format!(
                            "`--against` checks one PLA table against another; got `{}`",
                            job.input.display()
                        ))
                    }
                    (None, "pla") => verify_pla(engine, &source, &mut stats)?,
                    (None, "isl") => verify_isl(engine, &source, &mut stats)?,
                    (None, "sil") => {
                        let stack = stack.as_deref().unwrap_or(silc_pnr::RouteStack::KNOWN[0]);
                        verify_sil(engine, &source, stack, &mut stats)?
                    }
                    (None, _) => {
                        return Err(format!(
                            "verify needs a `.pla`, `.isl` or `.sil` input, got `{}`",
                            job.input.display()
                        ))
                    }
                };
                if !snap.equivalent {
                    return Err(format!(
                        "verify: NOT equivalent ({})",
                        snap.mismatches.join("; ")
                    ));
                }
                Ok(snap.summary())
            }
        }
    })();
    (outcome, stats)
}

/// Runs every job against the shared engine on up to `workers` threads,
/// returning results in manifest order. Sim jobs that name no engine in
/// the manifest run on `default_engine` (the CLI's `--engine` flag).
pub fn run_batch(
    engine: &Engine,
    jobs: &[JobSpec],
    workers: usize,
    default_engine: SimEngine,
) -> Vec<JobResult> {
    let workers = workers.clamp(1, jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<JobResult>> = vec![None; jobs.len()];
    let slots: Vec<std::sync::Mutex<&mut Option<JobResult>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(idx) else { break };
                let started = Instant::now();
                let (outcome, stats) = run_one(engine, job, default_engine);
                let result = JobResult {
                    label: job.label(),
                    outcome,
                    stats,
                    millis: started.elapsed().as_millis(),
                };
                **slots[idx].lock().expect("result slot") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn manifest_parses_verbs_flags_and_comments() {
        let base = Path::new("/designs");
        let jobs = parse_manifest(
            "# header\n\ncompile a.sil -o a.cif\ncompile b.sil --no-drc\nsim m.isl --cycles 42\n\
             pnr c.sil -o c.cif --stack nmos\nverify d.pla --against gold.pla\n\
             verify e.sil --stack nmos\n",
            base,
        )
        .unwrap();
        assert_eq!(jobs.len(), 6);
        assert_eq!(jobs[0].input, base.join("a.sil"));
        assert_eq!(
            jobs[0].kind,
            JobKind::Compile {
                output: Some(base.join("a.cif")),
                no_drc: false
            }
        );
        assert_eq!(
            jobs[1].kind,
            JobKind::Compile {
                output: None,
                no_drc: true
            }
        );
        assert_eq!(
            jobs[2].kind,
            JobKind::Sim {
                cycles: 42,
                engine: None
            }
        );
        assert_eq!(jobs[2].line, 5);
        assert_eq!(
            jobs[3].kind,
            JobKind::Pnr {
                output: Some(base.join("c.cif")),
                stack: Some("nmos".into())
            }
        );
        assert_eq!(jobs[3].label(), "pnr /designs/c.sil");
        assert_eq!(
            jobs[4].kind,
            JobKind::Verify {
                against: Some(base.join("gold.pla")),
                stack: None
            }
        );
        assert_eq!(jobs[4].label(), "verify /designs/d.pla");
        assert_eq!(
            jobs[5].kind,
            JobKind::Verify {
                against: None,
                stack: Some("nmos".into())
            }
        );
    }

    #[test]
    fn manifest_rejects_bad_lines() {
        let base = Path::new(".");
        for (text, needle) in [
            ("route x.sil", "unknown verb"),
            ("compile", "needs an input"),
            ("compile a.sil -o", "needs a path"),
            ("compile a.sil -o x -o y", "duplicate"),
            ("compile a.sil --fast", "unknown compile flag"),
            ("compile a.sil b.sil", "extra argument"),
            ("sim m.isl --cycles many", "invalid cycle count"),
            ("sim m.isl --engine", "needs a name"),
            ("sim m.isl --engine turbo", "unknown engine `turbo`"),
            ("pnr", "needs an input"),
            ("pnr a.sil --stack", "needs a name"),
            ("pnr a.sil --stack x --stack y", "duplicate `--stack`"),
            ("pnr a.sil --fast", "unknown pnr flag"),
            ("pnr a.sil b.sil", "extra argument"),
            ("verify", "needs an input"),
            ("verify a.pla --against", "needs a path"),
            (
                "verify a.pla --against x --against y",
                "duplicate `--against`",
            ),
            ("verify a.sil --stack x --stack y", "duplicate `--stack`"),
            ("verify a.pla --fast", "unknown verify flag"),
            ("verify a.pla b.pla", "extra argument"),
        ] {
            let e = parse_manifest(text, base).unwrap_err();
            assert!(e.contains(needle), "{text:?} -> {e}");
            assert!(e.contains("line 1"), "{text:?} -> {e}");
        }
    }

    #[test]
    fn batch_shares_the_cache_across_identical_jobs() {
        let dir = std::env::temp_dir().join(format!("silc-incr-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let sil = dir.join("cell.sil");
        fs::write(
            &sil,
            "cell a() { box metal (0,0) (8,4); } place a() at (0,0);",
        )
        .unwrap();
        let manifest = format!("compile {p}\ncompile {p}\ncompile {p}\n", p = sil.display());
        let jobs = parse_manifest(&manifest, &dir).unwrap();
        // One worker makes the hit/miss split deterministic (concurrent
        // workers may race identical jobs into duplicate computes).
        let engine = Engine::in_memory();
        let results = run_batch(&engine, &jobs, 1, SimEngine::default());
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.outcome.is_ok(), "{:?}", r.outcome);
        }
        let total_hits: u64 = results.iter().map(|r| r.stats.hits).sum();
        let total_misses: u64 = results.iter().map(|r| r.stats.misses).sum();
        // Three identical jobs, four stages each (elaborate, flatten,
        // drc, cif): each stage computes once, every other query hits.
        assert_eq!(total_hits + total_misses, 12);
        assert_eq!(total_misses, 4);

        // A concurrent re-run against the already-warm engine is all hits.
        let warm = run_batch(&engine, &jobs, 4, SimEngine::default());
        assert!(warm.iter().all(|r| r.outcome.is_ok()));
        assert_eq!(warm.iter().map(|r| r.stats.misses).sum::<u64>(), 0);
        assert_eq!(warm.iter().map(|r| r.stats.hits).sum::<u64>(), 12);
    }

    #[test]
    fn verify_jobs_pass_and_fail_in_one_batch() {
        let dir = std::env::temp_dir().join(format!("silc-incr-verify-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let table = ".i 2\n.o 1\n.ilb a b\n.ob y\n10 1\n01 1\n";
        fs::write(dir.join("good.pla"), table).unwrap();
        fs::write(dir.join("bad.pla"), table.replace("01 1", "01 0")).unwrap();
        let manifest = "verify good.pla\nverify bad.pla --against good.pla\n";
        let jobs = parse_manifest(manifest, &dir).unwrap();
        let results = run_batch(&Engine::in_memory(), &jobs, 2, SimEngine::default());
        assert!(
            results[0].outcome.as_ref().unwrap().contains("equivalent"),
            "{:?}",
            results[0].outcome
        );
        assert!(
            results[1]
                .outcome
                .as_ref()
                .unwrap_err()
                .contains("NOT equivalent"),
            "{:?}",
            results[1].outcome
        );
    }

    #[test]
    fn failing_job_reports_without_sinking_the_batch() {
        let engine = Engine::in_memory();
        let jobs = vec![JobSpec {
            input: PathBuf::from("/nonexistent/q.sil"),
            line: 1,
            kind: JobKind::Compile {
                output: None,
                no_drc: false,
            },
        }];
        let results = run_batch(&engine, &jobs, 4, SimEngine::default());
        assert!(results[0]
            .outcome
            .as_ref()
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn failing_job_names_the_failing_stage() {
        // One syntactically bad design among good ones: its FAIL row must
        // carry the failing stage name from the engine (`elaborate: ...`),
        // and the good jobs must still complete.
        let dir = std::env::temp_dir().join(format!("silc-incr-stage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("good.sil"),
            "cell a() { box metal (0,0) (8,4); } place a() at (0,0);",
        )
        .unwrap();
        fs::write(dir.join("bad.sil"), "cell broken( {").unwrap();
        fs::write(dir.join("bad.isl"), "machine oops { state").unwrap();
        let manifest = "compile good.sil\ncompile bad.sil\nsim bad.isl\ncompile good.sil\n";
        let jobs = parse_manifest(manifest, &dir).unwrap();
        let results = run_batch(&Engine::in_memory(), &jobs, 2, SimEngine::default());
        assert!(results[0].outcome.is_ok(), "{:?}", results[0].outcome);
        assert!(results[3].outcome.is_ok(), "{:?}", results[3].outcome);
        let compile_err = results[1].outcome.as_ref().unwrap_err();
        assert!(
            compile_err.starts_with("elaborate: "),
            "stage name missing: {compile_err}"
        );
        let sim_err = results[2].outcome.as_ref().unwrap_err();
        assert!(
            sim_err.starts_with("isl.parse: "),
            "stage name missing: {sim_err}"
        );
    }
}
