//! A small hand-rolled binary codec for cache payloads.
//!
//! The workspace has no serialization dependency, and the cache format
//! must stay stable across builds anyway, so every persisted type spells
//! out its layout explicitly through [`Persist`]. All integers are
//! little-endian; variable-length data carries a length prefix. Decoding
//! is **total**: any malformed input yields `Err`, never a panic, so a
//! corrupted cache entry degrades to a recompute.

use silc_geom::{Orientation, Path, Point, Polygon, Rect, Transform};

/// Encoder: appends fields to a byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to 64 bits.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Decoder: reads fields back in the order they were encoded.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

/// Decoding failure — the entry is malformed or truncated.
pub type DecodeError = String;

impl<'a> Dec<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| format!("truncated: need {n} bytes at offset {}", self.pos))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length, bounds-checked against the remaining input so a
    /// corrupted prefix cannot trigger a huge allocation.
    #[allow(clippy::len_without_is_empty)] // reads a length field; not a container
    pub fn len(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        if v > self.data.len() as u64 {
            return Err(format!("length {v} exceeds entry size"));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8".to_string())
    }
}

/// Types that can round-trip through the persistent cache.
///
/// `decode(encode(x)) == x` must hold for every value the pipeline
/// produces, and `decode` must reject (not panic on) arbitrary bytes.
pub trait Persist: Sized {
    /// Appends this value to `e`.
    fn encode(&self, e: &mut Enc);
    /// Reads a value back.
    ///
    /// # Errors
    ///
    /// Any malformed or truncated input.
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError>;
}

impl Persist for u64 {
    fn encode(&self, e: &mut Enc) {
        e.u64(*self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        d.u64()
    }
}

impl Persist for bool {
    fn encode(&self, e: &mut Enc) {
        e.u8(u8::from(*self));
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("invalid bool tag {v}")),
        }
    }
}

impl Persist for String {
    fn encode(&self, e: &mut Enc) {
        e.str(self);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        d.str()
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, e: &mut Enc) {
        e.len(self.len());
        for item in self {
            item.encode(e);
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let n = d.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, e: &mut Enc) {
        match self {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            v => Err(format!("invalid option tag {v}")),
        }
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, e: &mut Enc) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

impl Persist for Point {
    fn encode(&self, e: &mut Enc) {
        e.i64(self.x);
        e.i64(self.y);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(Point::new(d.i64()?, d.i64()?))
    }
}

impl Persist for Rect {
    fn encode(&self, e: &mut Enc) {
        self.min().encode(e);
        self.max().encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let min = Point::decode(d)?;
        let max = Point::decode(d)?;
        Rect::new(min, max).map_err(|err| format!("invalid rect: {err}"))
    }
}

impl Persist for Orientation {
    fn encode(&self, e: &mut Enc) {
        let idx = Orientation::ALL
            .iter()
            .position(|o| o == self)
            .expect("ALL lists every orientation") as u8;
        e.u8(idx);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let idx = d.u8()? as usize;
        Orientation::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| format!("invalid orientation index {idx}"))
    }
}

impl Persist for Transform {
    fn encode(&self, e: &mut Enc) {
        self.orientation.encode(e);
        self.offset.encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(Transform {
            orientation: Orientation::decode(d)?,
            offset: Point::decode(d)?,
        })
    }
}

impl Persist for Polygon {
    fn encode(&self, e: &mut Enc) {
        self.vertices().to_vec().encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let vertices = Vec::<Point>::decode(d)?;
        Polygon::new(vertices).map_err(|err| format!("invalid polygon: {err}"))
    }
}

impl Persist for Path {
    fn encode(&self, e: &mut Enc) {
        e.i64(self.width());
        self.points().to_vec().encode(e);
    }
    fn decode(d: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let width = d.i64()?;
        let points = Vec::<Point>::decode(d)?;
        Path::new(width, points).map_err(|err| format!("invalid path: {err}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let mut e = Enc::new();
        v.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(&T::decode(&mut d).unwrap(), v);
        assert!(d.is_done());
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&42u64);
        round_trip(&true);
        round_trip(&"héllo".to_string());
        round_trip(&vec!["a".to_string(), String::new()]);
        round_trip(&Some(7u64));
        round_trip(&Option::<u64>::None);
        round_trip(&("k".to_string(), 9u64));
    }

    #[test]
    fn geometry_round_trips() {
        round_trip(&Point::new(-5, 9));
        round_trip(&Rect::new(Point::new(-1, -2), Point::new(3, 4)).unwrap());
        for o in Orientation::ALL {
            round_trip(&o);
        }
        round_trip(&Transform::new(Orientation::R90, Point::new(10, -10)));
        round_trip(
            &Polygon::new(vec![Point::new(0, 0), Point::new(4, 0), Point::new(4, 4)]).unwrap(),
        );
        round_trip(&Path::new(2, vec![Point::new(0, 0), Point::new(8, 0)]).unwrap());
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Enc::new();
        "hello".to_string().encode(&mut e);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            assert!(String::decode(&mut Dec::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn absurd_length_rejected_without_allocating() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        assert!(Vec::<u64>::decode(&mut Dec::new(&bytes)).is_err());
        assert!(String::decode(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(bool::decode(&mut Dec::new(&[7])).is_err());
        assert!(Option::<u64>::decode(&mut Dec::new(&[9])).is_err());
        assert!(Orientation::decode(&mut Dec::new(&[200])).is_err());
    }
}
